#!/usr/bin/env python3
"""Stock-quote multicast authenticated with TESLA.

The paper's opening example: "a user does not want to receive stock
quotes altered by some malicious parties."  A ticker multicasts one
quote per 50 ms interval; receivers verify with TESLA — MAC per
packet, keys disclosed 5 intervals later, one signed bootstrap packet.

The example runs three receivers on the same stream:

* a well-synchronized receiver on a quiet network,
* a receiver behind a jittery network path (Gaussian delay near the
  disclosure delay — the paper's Fig. 3/4 regime),
* a receiver whose clock drifted beyond the bootstrap bound, plus an
  attacker injecting a forged quote.

Run:  python examples/stock_ticker_tesla.py
"""

from dataclasses import replace

from repro import TeslaParameters, TeslaReceiver, TeslaSender
from repro.analysis import tesla as tesla_analysis
from repro.crypto.signatures import RsaSigner
from repro.network import Channel, GaussianDelay, BernoulliLoss


QUOTES = 100
INTERVAL = 0.05
LAG = 5


def make_stream(signer):
    """One ticker session: bootstrap + quotes + trailing key flush."""
    parameters = TeslaParameters(interval=INTERVAL, lag=LAG,
                                 chain_length=QUOTES,
                                 max_clock_offset=0.005)
    sender = TeslaSender(parameters, signer, seed=b"ticker-demo-seed")
    bootstrap = sender.bootstrap_packet().with_send_time(0.0)
    quotes = []
    for i in range(QUOTES):
        payload = b"TICK %03d price=%06d" % (i, 10_000 + 7 * i)
        quotes.append(sender.send(payload, i * INTERVAL))
    return parameters, bootstrap, quotes, sender.flush_keys(QUOTES)


def run_receiver(label, bootstrap, packets, signer, channel,
                 clock_offset=0.0, tamper=False):
    deliveries = channel.transmit(packets)
    receiver = TeslaReceiver(bootstrap, signer, clock_offset=clock_offset)
    for delivery in deliveries:
        packet = delivery.packet
        if tamper and packet.seq == 30:
            packet = replace(packet, payload=b"TICK 028 price=999999")
        receiver.receive(packet, delivery.arrival_time + clock_offset)
    counts = receiver.counts()
    total = max(sum(counts.values()), 1)
    print(f"{label}")
    for status in ("verified", "pending", "unsafe", "bad-mac"):
        if counts.get(status):
            print(f"    {status:9s}: {counts[status]:3d} "
                  f"({100 * counts[status] / total:.0f}%)")
    return counts


def main() -> None:
    signer = RsaSigner.generate(1024)
    parameters, bootstrap, quotes, flush = make_stream(signer)
    stream = quotes + flush
    t_disclose = parameters.disclosure_delay
    print(f"TESLA ticker: {QUOTES} quotes, interval {INTERVAL * 1000:.0f} ms,"
          f" T_disclose {t_disclose * 1000:.0f} ms\n")

    # Receiver 1: quiet network, synchronized clock.
    run_receiver(
        "receiver A - synchronized, 10 ms +- 3 ms network, 10% loss",
        bootstrap, stream, signer,
        Channel(loss=BernoulliLoss(0.1, seed=1),
                delay=GaussianDelay(mean=0.010, std=0.003, seed=2)),
    )
    predicted = tesla_analysis.q_min(QUOTES, 0.1, t_disclose, 0.010, 0.003)
    print(f"    Eq. 7 predicts q_min = {predicted:.3f}\n")

    # Receiver 2: jitter comparable to the disclosure delay.
    mu, sigma = 0.20, 0.05
    run_receiver(
        "receiver B - jittery path (mu 200 ms, sigma 50 ms), no loss",
        bootstrap, stream, signer,
        Channel(delay=GaussianDelay(mean=mu, std=sigma, seed=3)),
    )
    predicted = tesla_analysis.q_min(QUOTES, 0.0, t_disclose, mu, sigma)
    print(f"    Eq. 7 predicts q_min = {predicted:.3f} — the security "
          "condition drops late quotes\n")

    # Receiver 3: drifted clock + active forgery.
    counts = run_receiver(
        "receiver C - clock 150 ms fast, attacker forges quote #30",
        bootstrap, stream, signer,
        Channel(delay=GaussianDelay(mean=0.010, std=0.003, seed=4)),
        clock_offset=0.150, tamper=True,
    )
    assert counts.get("bad-mac", 0) >= 1 or counts.get("unsafe", 0) >= 1
    print("    the forged quote never verifies; a fast clock only makes "
          "the receiver *more* conservative")


if __name__ == "__main__":
    main()
