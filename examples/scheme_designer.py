#!/usr/bin/env python3
"""Designing a hash-chaining topology for a target network (Sec. 5).

The paper's complaint: parameters for EMSS/AC were picked by
trial-and-error, with "no effective way of choosing these parameters".
This example is the remedy — given a channel loss rate and a
``q_min`` target, it runs all of Section 5's construction methods and
prints what each costs:

* optimizer over EMSS ``(m, d)`` and AC ``(a, b)`` parameter spaces,
* the dynamic-programming offset-policy search (min edges/packet),
* greedy tree-plus-edges construction under an out-degree cap,
* probabilistic edge placement tuned by bisection.

Run:  python examples/scheme_designer.py
"""

from repro.design import (
    DesignConstraints,
    greedy_design,
    optimize_ac,
    optimize_emss,
    search_offset_policy,
    tune_edge_probability,
)

BLOCK = 120
LOSS = 0.25
TARGET = 0.9


def main() -> None:
    print(f"designing for: block={BLOCK}, channel loss p={LOSS}, "
          f"q_min target {TARGET}\n")
    rows = []

    choice = optimize_emss(BLOCK, LOSS, TARGET)
    rows.append((f"EMSS (m,d)={choice.parameters}", choice.cost,
                 choice.q_min, "Eq. 9"))

    choice = optimize_ac(BLOCK, LOSS, TARGET)
    rows.append((f"AC (a,b)={choice.parameters}", choice.cost,
                 choice.q_min, "Eq. 10"))

    policy = search_offset_policy(BLOCK, LOSS, TARGET, max_offset=24,
                                  max_edges=5)
    rows.append((f"DP offset policy A={policy.offsets}",
                 float(policy.edges_per_packet), policy.q_min, "Eq. 9"))

    constraints = DesignConstraints(loss_rate=LOSS, q_min_target=TARGET,
                                    max_out_degree=6, mc_trials=4000)
    greedy = greedy_design(BLOCK, constraints, max_extra_edges=8 * BLOCK)
    rows.append(("greedy tree+edges",
                 greedy.graph.edge_count / BLOCK, greedy.q_min,
                 "exact MC"))

    tuned = tune_edge_probability(BLOCK, LOSS, TARGET, trials=4000, seed=3)
    rows.append((f"probabilistic p_x={tuned.edge_probability:.4f}",
                 tuned.mean_hashes, tuned.q_min, "exact MC"))

    print(f"{'construction':38s} {'hashes/pkt':>10s} {'q_min':>8s}  evaluator")
    print("-" * 72)
    for name, cost, q_min, evaluator in rows:
        print(f"{name:38s} {cost:10.2f} {q_min:8.3f}  {evaluator}")
    print()
    print("note the evaluator column: 'exact MC' designs meet the target")
    print("under the true joint loss distribution; 'Eq. 9/10' designs meet")
    print("it under the paper's independence approximation, which is an")
    print("upper bound (run the ext-gap experiment for the difference).")

    # Delay-constrained variant: a live stream that can buffer 10 packets.
    policy = search_offset_policy(BLOCK, LOSS, TARGET, max_offset=24,
                                  max_edges=5, max_delay_slots=10)
    print()
    print(f"with a 10-slot buffer budget the DP search picks "
          f"A={policy.offsets} (q_min {policy.q_min:.3f})")


if __name__ == "__main__":
    main()
