#!/usr/bin/env python3
"""Quickstart: analyze and simulate a hash-chained authentication scheme.

Covers the library's core loop in ~60 lines:

1. pick a scheme (EMSS ``E_{2,1}``),
2. inspect its dependence-graph and the Sec. 3 metrics,
3. evaluate the paper's analytic ``q_min`` (Eq. 9 recurrence),
4. validate it against exact Monte Carlo on the graph,
5. run real authenticated packets through a lossy channel.

Run:  python examples/quickstart.py
"""

from repro import EmssScheme, analytic_q_min, compute_metrics, graph_monte_carlo
from repro.core.render import to_ascii
from repro.crypto.signatures import default_signer
from repro.network import BernoulliLoss, Channel
from repro.simulation import run_chain_session


def main() -> None:
    block_size = 64
    loss_rate = 0.15
    scheme = EmssScheme(m=2, d=1)

    # --- 1-2: the dependence-graph and its metrics ---------------------
    graph = scheme.build_graph(block_size)
    graph.validate()
    metrics = compute_metrics(graph, l_sign=128, l_hash=16)
    print(f"scheme: {scheme.name}, block of {block_size} packets")
    print(f"  edges (carried hashes): {graph.edge_count}")
    print(f"  mean hashes/packet:     {metrics.mean_hashes:.2f}")
    print(f"  overhead bytes/packet:  {metrics.overhead_bytes:.1f}")
    print(f"  receiver delay (slots): {metrics.delay_slots}")
    print(f"  message buffer (pkts):  {metrics.message_buffer}")
    print()
    print("graph of a tiny 8-packet block, for intuition:")
    print(to_ascii(scheme.build_graph(8)))
    print()

    # --- 3: the paper's analytic q_min ---------------------------------
    analytic = analytic_q_min(scheme, block_size, loss_rate)
    print(f"Eq. 9 recurrence q_min at p={loss_rate}: {analytic:.4f}")

    # --- 4: exact Monte Carlo on the same graph ------------------------
    mc = graph_monte_carlo(graph, loss_rate, trials=20000, seed=1)
    print(f"exact Monte Carlo q_min:              {mc.q_min:.4f}")
    print("(the recurrence assumes independent paths, so it upper-bounds"
          " the exact value)")
    print()

    # --- 5: real packets over a lossy channel --------------------------
    channel = Channel(loss=BernoulliLoss(loss_rate, seed=42))
    stats = run_chain_session(scheme, block_size, blocks=20, channel=channel,
                              signer=default_signer())
    print(f"wire-level session over 20 blocks at p={loss_rate}:")
    print(f"  observed loss rate: {stats.observed_loss_rate:.3f}")
    print(f"  empirical q_min:    {stats.q_min:.4f}")
    print(f"  mean verify delay:  {stats.mean_delay * 1000:.1f} ms")
    print(f"  peak message buffer:{stats.message_buffer_peak:5d} packets")
    print(f"  forged packets:     {stats.forged}")


if __name__ == "__main__":
    main()
