#!/usr/bin/env python3
"""The paper's Figure 8 comparison, rebuilt from live packet streams.

Where the paper computes its comparison analytically, this example
*transmits*: every scheme authenticates the same payload stream with
real hashes and signatures, the packets cross the same lossy channel
realizations, and receivers verify incrementally.  Analytic
predictions are printed alongside for each loss rate.

Run:  python examples/lossy_network_comparison.py
"""

from repro.analysis.compare import TeslaEnvironment, analytic_q_min
from repro.crypto.signatures import default_signer
from repro.network import BernoulliLoss, Channel, GaussianDelay
from repro.schemes import (
    AugmentedChainScheme,
    EmssScheme,
    RohatgiScheme,
    TeslaParameters,
    WongLamScheme,
)
from repro.simulation import (
    run_chain_session,
    run_individual_session,
    run_tesla_session,
)

BLOCK = 64
BLOCKS = 20
LOSS_RATES = (0.05, 0.2, 0.4)

# TESLA rides the same channel with a generous disclosure delay,
# matching the regime where the paper says it shines.
TESLA = TeslaParameters(interval=0.02, lag=25, chain_length=BLOCK * BLOCKS)
TESLA_ENV = TeslaEnvironment(t_disclose=TESLA.disclosure_delay,
                             mu=0.05, sigma=0.02)


def measure(scheme, p, seed):
    signer = default_signer()
    channel = Channel(loss=BernoulliLoss(p, seed=seed),
                      delay=GaussianDelay(mean=0.05, std=0.02,
                                          seed=seed + 1))
    if scheme == "tesla":
        stats = run_tesla_session(TESLA, BLOCK * BLOCKS, channel,
                                  signer=signer)
    elif scheme.individually_verifiable:
        stats = run_individual_session(scheme, BLOCK, BLOCKS, channel,
                                       signer=signer)
    else:
        stats = run_chain_session(scheme, BLOCK, BLOCKS, channel,
                                  signer=signer)
    return stats


def main() -> None:
    contenders = [
        ("rohatgi", RohatgiScheme()),
        ("wong-lam", WongLamScheme()),
        ("emss(2,1)", EmssScheme(2, 1)),
        ("ac(3,3)", AugmentedChainScheme(3, 3)),
        ("tesla", "tesla"),
    ]
    print(f"live comparison: {BLOCKS} blocks x {BLOCK} packets per scheme, "
          f"Gaussian delay 50 +- 20 ms\n")
    header = ("scheme".ljust(12)
              + "".join(f"p={p} sim/analytic".rjust(22) for p in LOSS_RATES))
    print(header)
    print("-" * len(header))
    for name, scheme in contenders:
        cells = []
        for index, p in enumerate(LOSS_RATES):
            stats = measure(scheme, p, seed=17 + index * 31)
            simulated = stats.overall_q
            if scheme == "tesla":
                from repro.analysis import tesla as tesla_analysis
                analytic = tesla_analysis.q_min(
                    BLOCK * BLOCKS, p, TESLA_ENV.t_disclose,
                    TESLA_ENV.mu, TESLA_ENV.sigma)
            else:
                analytic = analytic_q_min(scheme, BLOCK, p, TESLA_ENV)
            cells.append(f"{simulated:.3f}/{analytic:.3f}".rjust(22))
        print(name.ljust(12) + "".join(cells))
    print()
    print("sim = overall verified/received from live packets;")
    print("analytic = the paper's q_min formula (a per-worst-packet bound,")
    print("and for EMSS/AC an independence-approximation upper bound —")
    print("so sim and analytic bracket each other rather than coincide).")
    print("Shapes match Fig. 8: Rohatgi collapses, Wong-Lam is loss-proof,")
    print("EMSS tracks AC, and generously-provisioned TESLA wins at high p.")


if __name__ == "__main__":
    main()
