#!/usr/bin/env python3
"""One multicast stream, a heterogeneous audience.

The paper's setting is a single source and "a large number of
recipients" who join from wildly different network positions.  The
sender authenticates each block exactly once; every receiver verifies
independently against its own loss and delay.  This example fans one
EMSS stream out to five receiver profiles and reports what each
experiences — then asks the design question the paper poses: which
parameters serve the *worst* member of the audience?

Run:  python examples/heterogeneous_audience.py
"""

from repro.crypto.signatures import default_signer
from repro.design import optimize_emss
from repro.network import BernoulliLoss, GaussianDelay, GilbertElliottLoss
from repro.schemes import EmssScheme
from repro.simulation import ReceiverSpec, run_multicast_session

BLOCK = 48
BLOCKS = 25

AUDIENCE = [
    ReceiverSpec("campus-lan"),
    ReceiverSpec("home-dsl",
                 loss=BernoulliLoss(0.03, seed=11),
                 delay=GaussianDelay(0.02, 0.005, seed=12)),
    ReceiverSpec("congested-wifi",
                 loss=BernoulliLoss(0.15, seed=21),
                 delay=GaussianDelay(0.05, 0.02, seed=22)),
    ReceiverSpec("mobile-bursty",
                 loss=GilbertElliottLoss.from_rate_and_burst(0.12, 6.0,
                                                             seed=31),
                 delay=GaussianDelay(0.12, 0.04, seed=32)),
    ReceiverSpec("satellite",
                 loss=BernoulliLoss(0.3, seed=41),
                 delay=GaussianDelay(0.3, 0.05, seed=42)),
]


def main() -> None:
    signer = default_signer()
    scheme = EmssScheme(2, 1)
    result = run_multicast_session(scheme, BLOCK, BLOCKS, AUDIENCE,
                                   signer=signer)
    print(f"{scheme.name}: one sender, {len(AUDIENCE)} receivers, "
          f"{result.packets_sent} packets, one signature per block\n")
    header = (f"{'receiver':16s} {'loss seen':>10s} {'q_min':>8s} "
              f"{'overall q':>10s} {'mean delay':>11s}")
    print(header)
    print("-" * len(header))
    for spec in AUDIENCE:
        stats = result.per_receiver[spec.name]
        print(f"{spec.name:16s} {stats.observed_loss_rate:>9.1%} "
              f"{stats.q_min:>8.3f} {stats.overall_q:>10.3f} "
              f"{stats.mean_delay * 1000:>9.0f}ms")
    print(f"\nworst-served receiver: {result.worst_receiver}")

    # Design for the worst path: what would it take to give the
    # satellite receiver q_min >= 0.9?
    choice = optimize_emss(BLOCK, 0.3, 0.9)
    print(f"to give that path q_min >= 0.9 (Eq. 9), EMSS needs "
          f"(m,d) = {choice.parameters} — {choice.cost:.0f} hashes/packet "
          f"for everyone, the multicast tax of the weakest link")


if __name__ == "__main__":
    main()
