#!/usr/bin/env python3
"""Application view: in-order delivery of verified payloads.

Everything else in ``examples/`` measures probabilities; this shows
what an *application* on top of the library sees.  A sender streams
numbered messages in EMSS blocks; the channel drops and reorders; a
:class:`~repro.simulation.StreamReceiver` hands the application only
verified payloads, strictly in order, skipping declared-dead gaps at
block boundaries.

Run:  python examples/ordered_delivery.py
"""

from repro.crypto.signatures import default_signer
from repro.network import BernoulliLoss, Channel, GaussianDelay
from repro.schemes import EmssScheme
from repro.simulation import StreamReceiver, StreamSender, make_payloads

BLOCK = 16
BLOCKS = 6
LOSS = 0.15


def main() -> None:
    signer = default_signer()
    sender = StreamSender(EmssScheme(2, 1), signer, block_size=BLOCK)
    channel = Channel(loss=BernoulliLoss(LOSS, seed=5),
                      delay=GaussianDelay(mean=0.05, std=0.02, seed=6))

    delivered_log = []
    receiver = StreamReceiver(
        signer, on_deliver=lambda d: delivered_log.append(d.seq))

    print(f"streaming {BLOCKS} blocks x {BLOCK} messages at "
          f"{LOSS:.0%} loss with reordering...\n")
    sent = 0
    for block_index in range(BLOCKS):
        packets = sender.send_block(make_payloads(BLOCK, tag=b"msg"))
        sent += len(packets)
        batch_sizes = []
        for delivery in channel.transmit(packets):
            released = receiver.receive(delivery.packet,
                                        delivery.arrival_time)
            if released:
                batch_sizes.append(len(released))
        # Block over: give up on anything that can no longer verify.
        last_seq = packets[-1].seq
        receiver.finish_block(packets[0].block_id, last_seq)
        print(f"block {block_index}: release batches {batch_sizes}, "
              f"delivered so far {len(receiver.delivered)}, "
              f"skipped {receiver.skipped}")

    print()
    print(f"sent {sent} packets; application received "
          f"{len(receiver.delivered)} verified payloads in order, "
          f"{receiver.skipped} skipped as lost/unverifiable")
    assert delivered_log == sorted(delivered_log), "ordering violated!"
    print("delivery order is strictly increasing - no reordering, no "
          "unverified data, ever")
    print(f"effective goodput: {len(receiver.delivered)}/{sent} "
          f"data packets (signature packets carry data too; "
          f"{receiver.skipped} casualties of loss and broken dependence)")


if __name__ == "__main__":
    main()
