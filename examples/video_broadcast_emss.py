#!/usr/bin/env python3
"""Video broadcast over a bursty Internet path: EMSS vs augmented chain.

The paper motivates signature amortization with "news/video
broadcasting over the Internet" and notes that "most of the packet
loss on the Internet is bursty in nature" — the problem the augmented
chain was designed for.  This example streams video-like blocks
through a Gilbert-Elliott channel and compares:

* EMSS ``E_{2,1}`` (hash copies in adjacent packets),
* EMSS with spread offsets (same overhead, copies 1 and 7 apart),
* the augmented chain ``C_{3,3}``,

all at identical mean loss rates but increasing burst lengths.

Run:  python examples/video_broadcast_emss.py
"""

from repro.crypto.signatures import default_signer
from repro.network import Channel, GilbertElliottLoss
from repro.schemes import (
    AugmentedChainScheme,
    EmssScheme,
    GenericOffsetScheme,
    SaidaScheme,
)
from repro.simulation import run_chain_session, run_saida_session


BLOCK = 96          # packets per signed block (~one GOP)
BLOCKS = 30         # blocks per trial
MEAN_LOSS = 0.10


def measure(scheme, burst_length, seed):
    """Empirical q_min of a scheme at the given mean burst length."""
    loss = GilbertElliottLoss.from_rate_and_burst(
        MEAN_LOSS, max(burst_length, 1.0001), seed=seed)
    if isinstance(scheme, SaidaScheme):
        return run_saida_session(scheme, BLOCK, BLOCKS, Channel(loss=loss),
                                 signer=default_signer())
    stats = run_chain_session(scheme, BLOCK, BLOCKS, Channel(loss=loss),
                              signer=default_signer())
    return stats


def main() -> None:
    schemes = [
        EmssScheme(2, 1),
        GenericOffsetScheme((1, 7)),
        AugmentedChainScheme(3, 3),
        SaidaScheme(k_fraction=0.6),
    ]
    bursts = [1, 4, 8, 16]
    print(f"video broadcast: {BLOCKS} blocks x {BLOCK} packets, "
          f"mean loss {MEAN_LOSS:.0%}, Gilbert-Elliott bursts\n")
    header = "scheme".ljust(16) + "".join(
        f"burst={b}".rjust(12) for b in bursts)
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        cells = []
        for index, burst in enumerate(bursts):
            stats = measure(scheme, burst, seed=100 + index)
            cells.append(f"{stats.overall_q:.3f}".rjust(12))
        print(scheme.name.ljust(16) + "".join(cells))
    print()
    print("overall verification ratio (verified/received).  At equal mean")
    print("loss, adjacent-copy EMSS degrades as bursts lengthen — one")
    print("burst severs both hash copies — while spread offsets and the")
    print("augmented chain ride out bursts shorter than their spread;")
    print("the erasure-coded SAIDA block only counts losses and barely")
    print("notices burstiness at all (at ~40% more bytes per packet).")

    # Bonus: what a receiver needs to provision.
    stats = measure(AugmentedChainScheme(3, 3), 8, seed=7)
    print()
    print(f"receiver provisioning for ac(3,3) at burst=8:")
    print(f"  peak message buffer: {stats.message_buffer_peak} packets")
    print(f"  worst verify delay:  {stats.max_delay * 1000:.0f} ms "
          f"(signature at block end)")


if __name__ == "__main__":
    main()
