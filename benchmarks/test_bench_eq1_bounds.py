"""Equation 1 benchmark: topology bounds vs exact path analysis."""

from repro.experiments import eq1_bounds


def test_eq1_bound_containment(benchmark, show):
    result = benchmark(eq1_bounds.run, fast=True)
    show(result)
    for row in result.rows:
        assert row["contained"], row
        assert row["lower"] <= row["upper"] + 1e-12
    # Disjoint topologies sit on the best-case bound.
    disjoint = [r for r in result.rows if r["case"].startswith("disjoint")]
    for row in disjoint:
        assert abs(row["exact"] - row["upper"]) < 1e-9
    # Nested topologies sit on the worst-case bound.
    nested = [r for r in result.rows if r["case"].startswith("nested")]
    for row in nested:
        assert abs(row["exact"] - row["lower"]) < 1e-9
