"""Extension benchmark: byte-level streams vs the graph abstraction."""

import pytest

from repro.experiments import ext_wire_validation


def test_wire_vs_graph(benchmark, show):
    result = benchmark.pedantic(ext_wire_validation.run,
                                kwargs={"fast": True}, rounds=2,
                                iterations=1)
    show(result)
    for row in result.rows:
        assert row["wire q_min"] == pytest.approx(row["graph q_min"],
                                                  abs=0.15)
        assert row["wire forged"] == 0
