"""Figure 8 benchmark: four-scheme q_min comparison over p and n."""

from repro.experiments import fig08_scheme_compare


def test_fig8_comparison(benchmark, show):
    result = benchmark(fig08_scheme_compare.run, fast=True)
    show(result)
    assert not any("WARNING" in note for note in result.notes)
    # Rohatgi collapses with n; EMSS/AC/TESLA are n-robust.
    check_row = result.rows[0]
    assert check_row["rohatgi"] < 1e-3
    assert check_row["emss(2,1)"] > 0.9
    assert check_row["ac(3,3)"] > 0.9
    # Loss sweep: every scheme's q_min is non-increasing in p.
    for label, series in result.series.items():
        if label.startswith("vs p:"):
            assert list(series.y) == sorted(series.y, reverse=True)
    # TESLA (generous T_disclose) leads everyone at the largest p.
    tesla_label = next(l for l in result.series if l.startswith("vs p: tesla"))
    tesla_tail = result.series[tesla_label].y[-1]
    for label in ("vs p: rohatgi", "vs p: emss(2,1)", "vs p: ac(3,3)"):
        assert tesla_tail > result.series[label].y[-1]
