"""Design-service latency: warm table lookup vs inline optimizer.

Not a paper figure — this is the tentpole gate for the precomputed
design-table service: a warm :meth:`~repro.design.service.\
DesignService.lookup` must answer scheme selection at least 100x
faster than running :func:`~repro.design.optimizer.optimize_emss`
inline at a realistic offline design point (n = 120, the ext-design
block size, where the optimizer's (m, d) sweep costs real work while
the lookup stays a dict probe whatever the block size).
"""

import time
import timeit

from repro.design.optimizer import optimize_emss
from repro.design.service import DesignService
from repro.design.table import DesignTable, TableSpec
from repro.experiments.common import ExperimentResult

N = 120
P = 0.2
Q_TARGET = 0.85
DELAY_BUDGET = 16
MIN_LOOKUP_SPEEDUP = 100.0

SPEC = TableSpec(block_sizes=(N,), q_targets=(Q_TARGET,),
                 delay_budgets=(DELAY_BUDGET,), families=("emss",))


def _service():
    return DesignService(DesignTable.build(SPEC, workers=1))


def test_bench_table_build(benchmark, show):
    """Full-lattice table build (10 p-points, one family) offline cost."""
    table = benchmark(DesignTable.build, SPEC, 1)
    assert table.feasible_count() == len(SPEC.p_grid)

    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-design-table-build",
        title=f"design-table build, {len(table.cells)} cells, n={N}",
    )
    result.rows.append({
        "cells": len(table.cells),
        "build s": seconds,
        "cells/sec": len(table.cells) / seconds,
    })
    result.note("serial build; the pooled build is byte-identical")
    show(result)


def test_bench_warm_lookup_vs_inline(benchmark, show):
    """>= 100x: warm O(1) lookup vs inline optimize_emss at n=120.

    Both arms answer the same design question, and must agree exactly
    — the speedup may not change the selected parameters.
    """
    service = _service()
    point = benchmark(service.lookup, P, N, Q_TARGET, "emss", DELAY_BUDGET)
    inline = optimize_emss(N, P, Q_TARGET, max_delay_slots=DELAY_BUDGET)
    assert point.to_parameter_choice() == inline

    # The gate compares best-case against best-case with timeit so
    # pytest-benchmark calibration noise cannot flip it.
    lookup_rounds = 2000
    lookup_s = min(timeit.repeat(
        lambda: service.lookup(P, N, Q_TARGET, "emss", DELAY_BUDGET),
        number=lookup_rounds, repeat=5)) / lookup_rounds
    inline_rounds = 5
    inline_s = min(timeit.repeat(
        lambda: optimize_emss(N, P, Q_TARGET,
                              max_delay_slots=DELAY_BUDGET),
        number=inline_rounds, repeat=3)) / inline_rounds
    speedup = inline_s / lookup_s
    assert speedup >= MIN_LOOKUP_SPEEDUP, (
        f"warm lookup only {speedup:.1f}x over inline optimize_emss "
        f"(need >= {MIN_LOOKUP_SPEEDUP:g}x): {lookup_s * 1e6:.2f}us vs "
        f"{inline_s * 1e6:.2f}us")

    result = ExperimentResult(
        experiment_id="bench-design-lookup",
        title=f"design selection at n={N}, p={P}, q>={Q_TARGET}",
    )
    for arm, seconds in (("warm table lookup", lookup_s),
                         ("inline optimize_emss", inline_s)):
        result.rows.append({
            "path": arm,
            "selection s": seconds,
            "selections/sec": 1.0 / seconds,
        })
    result.note(f"identical answers; speedup {speedup:.0f}x "
                f"(gate >= {MIN_LOOKUP_SPEEDUP:g}x)")
    show(result)


def test_bench_service_load(benchmark, show, tmp_path):
    """Cold start: parse + validate + materialize a saved table."""
    path = str(tmp_path / "table.json")
    table = DesignTable.build(SPEC, workers=1)
    table.save(path)

    service = benchmark(DesignService.load, path)
    assert service.table.content_hash == table.content_hash

    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-design-load",
        title=f"design-service cold load, {len(table.cells)} cells",
    )
    result.rows.append({
        "cells": len(table.cells),
        "load s": seconds,
    })
    result.note("includes schema, lattice and content-hash validation")
    show(result)
