"""Figure 10 benchmark: the overhead-and-delay table."""

from repro.experiments import fig10_overhead_delay


def test_fig10_overhead_delay_table(benchmark, show):
    result = benchmark(fig10_overhead_delay.run, fast=True)
    show(result)
    rows = {row["scheme"]: row for row in result.rows}
    # Hash-chained schemes are an order cheaper than per-packet ones.
    for chained in ("rohatgi", "emss(2,1)", "ac(3,3)"):
        assert rows[chained]["bytes/pkt"] < rows["sign-each"]["bytes/pkt"]
        assert rows[chained]["bytes/pkt"] < rows["wong-lam"]["bytes/pkt"]
    # Delay/buffer profile: Rohatgi and the per-packet schemes verify
    # instantly; EMSS/AC wait for the block signature; TESLA waits for
    # key disclosure.
    assert rows["rohatgi"]["delay (slots)"] == 0
    assert rows["wong-lam"]["delay (slots)"] == 0
    assert rows["sign-each"]["delay (slots)"] == 0
    assert rows["emss(2,1)"]["delay (slots)"] == 127
    assert rows["ac(3,3)"]["delay (slots)"] > 0
    assert rows[[k for k in rows if k.startswith("tesla")][0]][
        "delay (slots)"] > 0
    # Receiver buffering is the price of loss tolerance.
    assert rows["emss(2,1)"]["msg buffer"] > 0
    assert rows["rohatgi"]["msg buffer"] == 0
