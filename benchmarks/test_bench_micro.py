"""Micro-benchmarks of the library's hot paths.

Not a paper figure — these watch the building blocks every experiment
leans on: recurrence solving, vectorized Monte Carlo, graph
construction, block packetization and receiver throughput.
"""

from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.recurrence import solve_recurrence
from repro.crypto.signatures import HmacStubSigner, RsaSigner
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads


def test_recurrence_n1000(benchmark):
    result = benchmark(solve_recurrence, 1000, [1, 2], 0.1)
    assert 0.98 < result.q_min < 1.0


def test_graph_monte_carlo_n500(benchmark):
    graph = EmssScheme(2, 1).build_graph(500)

    result = benchmark(graph_monte_carlo, graph, 0.1, 2000, 7)
    assert 0.0 < result.q_min <= 1.0


def test_ac_graph_construction_n1000(benchmark):
    scheme = AugmentedChainScheme(3, 3)
    graph = benchmark(scheme.build_graph, 1000)
    assert graph.edge_count > 1500


def test_block_packetization_n128(benchmark):
    scheme = EmssScheme(2, 1)
    signer = HmacStubSigner(key=b"bench")
    payloads = make_payloads(128)
    packets = benchmark(scheme.make_block, payloads, signer)
    assert len(packets) == 128


def test_receiver_throughput_n128(benchmark):
    scheme = EmssScheme(2, 1)
    signer = HmacStubSigner(key=b"bench")
    packets = scheme.make_block(make_payloads(128), signer)

    def consume():
        receiver = ChainReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        return receiver.verified_count()

    assert benchmark(consume) == 128


def test_rsa_sign_and_verify(benchmark):
    signer = RsaSigner.generate(1024)
    message = b"benchmark message"

    def roundtrip():
        return signer.verify(message, signer.sign(message))

    assert benchmark(roundtrip)


def test_exact_chain_n1000(benchmark):
    from repro.analysis.exact_chain import exact_q_min

    value = benchmark(exact_q_min, 1000, 3, 0.2)
    assert 0.0 < value < 1.0


def test_exact_periodic_reach12_n400(benchmark):
    from repro.analysis.exact_periodic import exact_periodic_q_min

    value = benchmark(exact_periodic_q_min, 400, [1, 5, 12], 0.2)
    assert 0.0 < value < 1.0


def test_exact_markov_n1000(benchmark):
    from repro.analysis.exact_chain_markov import gilbert_elliott_q_min

    value = benchmark(gilbert_elliott_q_min, 1000, 2, 0.1, 4.0)
    assert 0.0 <= value < 1.0


def test_reed_solomon_block128(benchmark):
    from repro.crypto.reed_solomon import rs_decode, rs_encode

    blob = bytes(range(256)) * 10  # ~2.5 KB auth blob

    def roundtrip():
        shares = rs_encode(blob, 128, 64)
        return rs_decode(list(enumerate(shares))[:64], 64)

    assert benchmark(roundtrip) == blob


def test_diversity_menger_n200(benchmark):
    from repro.core.diversity import disjoint_path_count

    graph = EmssScheme(2, 1).build_graph(200)
    assert benchmark(disjoint_path_count, graph, 1) == 2
