"""Extension benchmark: Gilbert-Elliott burst loss (paper future work)."""

from repro.experiments import ext_burst_loss


def test_burst_loss_vs_iid(benchmark, show):
    result = benchmark.pedantic(ext_burst_loss.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    adjacent = result.series["emss(2,1)"]
    spread = result.series["offsets(1,7)"]
    # Adjacent-copy EMSS suffers under the longest bursts relative to
    # the spread-offset construction at the same mean loss rate.
    assert spread.y[-1] > adjacent.y[-1]
