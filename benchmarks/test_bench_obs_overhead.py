"""Observability overhead: instrumented serve vs the null fast path.

Not a paper figure — this is the guard rail for the lifecycle tracer
and timeseries sampler: the same live session runs (a) uninstrumented
(null tracer, null registry), (b) fully traced (``sample=1``) and
(c) trace-sampled at ``1/16``.  All three land in the bench report so
the regression gate watches the overhead itself, and the test asserts
the instrumented runs stay within a bounded slowdown of the null run
— tracing must never dominate the serving stack it observes.
"""

import pytest

from repro.experiments.common import ExperimentResult
from repro.obs.lifecycle import LifecycleTracer
from repro.obs.timeseries import TimeseriesSampler
from repro.serve.service import ServeConfig, run_live_session

RECEIVERS = 4
BLOCKS = 6
BLOCK_SIZE = 8

#: Instrumented runs must stay within this factor of the null run.
#: Generous on purpose: CI machines are noisy and the point is to
#: catch order-of-magnitude accidents (per-event I/O, quadratic
#: buffering), not a few percent of dict building.
MAX_SLOWDOWN = 5.0

_BASELINE_S = {}


def _config():
    return ServeConfig(receivers=RECEIVERS, blocks=BLOCKS,
                       block_size=BLOCK_SIZE,
                       loss_schedule=((0, 0.1),), seed=23)


def _run_instrumented(sample):
    tracer = LifecycleTracer(23, sample=sample)
    sampler = TimeseriesSampler(interval_s=0.01)
    session = run_live_session(_config(), lifecycle=tracer,
                               timeseries=sampler)
    return session, tracer, sampler


def test_obs_overhead_null(benchmark, show):
    session = benchmark(run_live_session, _config())
    assert session.forged_accepted == 0
    _BASELINE_S["null"] = benchmark.stats.stats.min

    result = ExperimentResult(
        experiment_id="bench-obs-overhead",
        title="serve baseline: null tracer, null registry")
    result.rows.append({"mode": "null", "session s":
                        benchmark.stats.stats.mean})
    show(result)


@pytest.mark.parametrize("sample", (1, 16))
def test_obs_overhead_traced(benchmark, show, sample):
    session, tracer, sampler = benchmark(_run_instrumented, sample)

    assert session.forged_accepted == 0
    assert tracer.events_recorded > 0
    assert sampler.samples
    if sample > 1:
        # Sampling must actually shed events.
        assert tracer.events_dropped > 0

    seconds = benchmark.stats.stats.min
    baseline = _BASELINE_S.get("null")
    if baseline is not None and baseline > 0:
        slowdown = seconds / baseline
        assert slowdown < MAX_SLOWDOWN, (
            f"lifecycle tracing (sample={sample}) slowed serving by "
            f"x{slowdown:.2f} (budget x{MAX_SLOWDOWN})")

    result = ExperimentResult(
        experiment_id="bench-obs-overhead",
        title=f"serve instrumented: trace sample=1/{sample}")
    result.rows.append({
        "mode": f"sample={sample}",
        "session s": benchmark.stats.stats.mean,
        "events": tracer.events_recorded,
        "sampled out": tracer.events_dropped,
    })
    show(result)
