"""Extension benchmark: heterogeneous multicast audience."""

from repro.experiments import ext_audience


def test_heterogeneous_audience(benchmark, show):
    result = benchmark.pedantic(ext_audience.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    rows = {row["scheme"]: row for row in result.rows}
    # Clean paths are fully served by everyone.
    for row in result.rows:
        assert row["lan"] >= 0.999
    # Quality ordering on degraded paths: spread offsets beat adjacent
    # copies; the erasure code (below its cliff) beats both.
    saida = next(v for k, v in rows.items() if k.startswith("saida"))
    assert rows["offsets(1,7)"]["satellite"] >= \
        rows["emss(2,1)"]["satellite"] - 0.02
    assert saida["mobile"] >= rows["emss(2,1)"]["mobile"]
