"""Topology serving benchmarks: tree fan-out cost and the ext run.

Two numbers worth tracking release over release:

* the throughput cost of routing the live serving loop through a
  shared-spine distribution tree (per-edge draws, path ANDing and
  subtree bookkeeping) relative to the flat per-receiver channel —
  measured as one full session at 32 receivers;
* the end-to-end ``ext-topology`` experiment in fast mode, which
  exercises per-subtree adaptation and k-redundant trees — its
  qualitative claims (per-subtree beats global, k=2 beats k=1, zero
  forged acceptances) are re-asserted here so a perf refactor cannot
  silently trade them away.
"""

import pytest

from repro.experiments import ext_topology
from repro.serve.service import ServeConfig, run_live_session

RECEIVERS = 32
BLOCKS = 4
BLOCK_SIZE = 8


def _config(**overrides):
    base = dict(receivers=RECEIVERS, blocks=BLOCKS, block_size=BLOCK_SIZE,
                loss_schedule=((0, 0.1),), seed=17)
    base.update(overrides)
    return ServeConfig(**base)


@pytest.mark.parametrize("topology", [None, "spine:4", "dualspine:4"])
def test_topology_serve_throughput(benchmark, show, topology):
    config = _config(topology=topology,
                     trees=2 if topology == "dualspine:4" else 1)
    session = benchmark(run_live_session, config)
    assert session.forged_accepted == 0
    assert session.delivered > 0
    if topology == "dualspine:4":
        assert session.duplicates_suppressed > 0

    from repro.experiments.common import ExperimentResult
    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-topology",
        title=f"topology serving, {RECEIVERS} receivers, "
              f"{topology or 'flat channels'}",
    )
    result.rows.append({
        "topology": topology or "(none)",
        "delivered pkts": session.delivered,
        "session s": seconds,
        "pkts/sec": session.delivered / seconds,
    })
    show(result)


def test_ext_topology_experiment(benchmark, show):
    result = benchmark.pedantic(ext_topology.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    ratios = {row["arm"]: row["delivered-verified ratio"]
              for row in result.rows}
    assert ratios["per-subtree controller"] > ratios["global controller"]
    assert ratios["k=2 tree(s)"] > ratios["k=1 tree(s)"]
    assert any("forged_accepted totals 0" in note for note in result.notes)
