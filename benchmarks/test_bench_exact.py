"""Exact periodic oracle: vectorized transfer matrix vs the old walk.

The ``test_exact_periodic_reach12_n400`` hot spot (~2.3 s under the
dictionary walk) is the workload benchmarked here under the shipping
``np.bincount`` oracle; the speedup assertion keeps the vectorized
path from silently regressing back to per-state Python, and the
cross-check keeps it honest against the reference it replaced.
"""

import time

import pytest

from repro.analysis.exact_periodic import (
    exact_periodic_q_min,
    exact_periodic_q_profile,
    exact_periodic_q_profile_reference,
)
from repro.experiments.common import ExperimentResult

N = 400
OFFSETS = (1, 5, 12)
LOSS_RATE = 0.2
MIN_SPEEDUP = 5.0


def test_bench_exact_periodic_oracle(benchmark, show):
    q_min = benchmark(exact_periodic_q_min, N, list(OFFSETS), LOSS_RATE)

    assert 0.0 < q_min < 1.0
    oracle_seconds = benchmark.stats.stats.mean

    # Correctness: full-precision agreement with the reference walk on
    # the benchmarked workload itself.
    start = time.perf_counter()
    reference = exact_periodic_q_profile_reference(N, list(OFFSETS),
                                                   LOSS_RATE)
    reference_seconds = time.perf_counter() - start
    oracle = exact_periodic_q_profile(N, list(OFFSETS), LOSS_RATE)
    for got, want in zip(oracle, reference):
        assert got == pytest.approx(want, abs=1e-12)
    assert q_min == pytest.approx(min(reference), abs=1e-12)

    speedup = reference_seconds / oracle_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized oracle only {speedup:.1f}x over the reference walk "
        f"(need >= {MIN_SPEEDUP}x): {oracle_seconds:.4f}s vs "
        f"{reference_seconds:.4f}s")

    result = ExperimentResult(
        experiment_id="bench-exact",
        title="exact periodic oracle, reach 12, n=400",
    )
    result.rows.append({
        "n": N,
        "offsets": str(list(OFFSETS)),
        "p": LOSS_RATE,
        "q_min": q_min,
        "oracle s": oracle_seconds,
        "reference s": reference_seconds,
        "speedup": speedup,
    })
    result.note("np.bincount transfer matrix vs the dictionary walk it "
                "replaced; both exact to 1e-12")
    show(result)
