"""Health-plane overhead: monitored serve vs the null fast path.

The guard rail for the online health monitors: the same live session
runs (a) with no health plane, (b) with the full plane (SLO CUSUM per
receiver, drift detection, sentinels) on a clean stream, and (c) on a
lossy ramp where the detectors actually fire.  The test asserts the
monitored runs stay within a bounded slowdown of the null run — block-
boundary health checks are a handful of integer ops and must never
dominate the serving stack — and all three land in the bench report so
the regression gate watches the overhead itself.
"""

import pytest

from repro.experiments.common import ExperimentResult
from repro.obs.health import HealthMonitor
from repro.serve.service import ServeConfig, run_live_session

RECEIVERS = 4
BLOCKS = 6
BLOCK_SIZE = 8

#: Monitored runs must stay within this factor of the null run.
#: Generous on purpose: CI machines are noisy and the point is to
#: catch order-of-magnitude accidents (per-packet work on the block
#: path, alert storms), not a few percent of integer arithmetic.
MAX_SLOWDOWN = 5.0

_BASELINE_S = {}


def _config(ramp=None):
    schedule = ((0, 0.1),) if ramp is None else ((0, 0.1), ramp)
    return ServeConfig(receivers=RECEIVERS, blocks=BLOCKS,
                       block_size=BLOCK_SIZE,
                       loss_schedule=schedule, seed=23)


def _run_monitored(ramp=None, q_target="3/4"):
    health = HealthMonitor(q_target=q_target, deficit=8)
    session = run_live_session(_config(ramp), health=health)
    return session, health


def test_health_overhead_null(benchmark, show):
    session = benchmark(run_live_session, _config())
    assert session.forged_accepted == 0
    _BASELINE_S["null"] = benchmark.stats.stats.min

    result = ExperimentResult(
        experiment_id="bench-health-overhead",
        title="serve baseline: no health plane")
    result.rows.append({"mode": "null",
                        "session s": benchmark.stats.stats.mean})
    show(result)


@pytest.mark.parametrize("mode", ("clean", "firing"))
def test_health_overhead_monitored(benchmark, show, mode):
    ramp = None if mode == "clean" else (2, 0.6)
    q_target = "3/4" if mode == "clean" else "9/10"
    session, health = benchmark(_run_monitored, ramp, q_target)

    assert session.forged_accepted == 0
    assert health.slo  # the monitors actually ran
    if mode == "firing":
        assert health.alerts  # the lossy ramp must trip detectors
    else:
        assert health.counts()["critical"] == 0

    seconds = benchmark.stats.stats.min
    baseline = _BASELINE_S.get("null")
    if baseline is not None and baseline > 0:
        slowdown = seconds / baseline
        assert slowdown < MAX_SLOWDOWN, (
            f"health plane ({mode}) slowed serving by x{slowdown:.2f} "
            f"(budget x{MAX_SLOWDOWN})")

    result = ExperimentResult(
        experiment_id="bench-health-overhead",
        title=f"serve monitored: {mode} stream")
    result.rows.append({
        "mode": mode,
        "session s": benchmark.stats.stats.mean,
        "alerts": len(health.alerts),
        "slo scopes": len(health.slo),
    })
    show(result)
