"""Parallel-engine benchmark: serial vs sharded Monte Carlo.

Times the graph-level estimator on the paper-scale workload (a
1000-packet EMSS block, 100k trials) through the deterministic
parallel engine at 1 worker (in-process serial fallback) and at
``os.cpu_count()`` workers, records the wall-clock speedup, and — the
determinism half of the contract — asserts the two runs return
*identical* results.

The >= 2x speedup assertion only engages on machines with at least 4
cores (a process pool cannot beat serial on a 1-core runner); the
timings and speedup are recorded either way.  Trials scale down on
small machines so the harness stays snappy.
"""

import os
import time

from repro.experiments.common import ExperimentResult
from repro.parallel import parallel_graph_monte_carlo
from repro.schemes.emss import EmssScheme

BLOCK_SIZE = 1000
CORES = os.cpu_count() or 1
FULL_SCALE = CORES >= 4
TRIALS = 100_000 if FULL_SCALE else 20_000


def test_parallel_speedup_and_determinism(show):
    graph = EmssScheme(2, 1).build_graph(BLOCK_SIZE)

    start = time.perf_counter()
    serial = parallel_graph_monte_carlo(graph, 0.2, trials=TRIALS, seed=99,
                                        workers=1)
    serial_seconds = time.perf_counter() - start

    workers = max(4, CORES) if FULL_SCALE else CORES
    start = time.perf_counter()
    parallel = parallel_graph_monte_carlo(graph, 0.2, trials=TRIALS, seed=99,
                                          workers=workers)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds
    result = ExperimentResult(
        experiment_id="bench-parallel",
        title=f"sharded Monte Carlo, n={BLOCK_SIZE}, {TRIALS} trials",
    )
    result.rows.append({
        "workers (parallel run)": workers,
        "serial s": serial_seconds,
        "parallel s": parallel_seconds,
        "speedup": speedup,
    })
    result.note(f"machine has {CORES} core(s); >=2x assertion "
                f"{'ON' if FULL_SCALE else 'OFF (needs >= 4 cores)'}")
    show(result)

    # Bit-for-bit determinism across worker counts, always.
    assert parallel == serial
    assert parallel.trials == TRIALS

    if FULL_SCALE:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {workers} workers on {CORES} cores, "
            f"got {speedup:.2f}x ({serial_seconds:.2f}s -> "
            f"{parallel_seconds:.2f}s)"
        )
