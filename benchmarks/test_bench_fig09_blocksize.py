"""Figure 9 benchmark: close-up of the robust schemes vs block size."""

from repro.experiments import fig09_blocksize


def test_fig9_blocksize_closeup(benchmark, show):
    result = benchmark(fig09_blocksize.run, fast=True)
    show(result)
    rows = {(row["p"], key): value
            for row in result.rows for key, value in row.items()
            if key != "p"}
    # EMSS tracks AC tightly at p=0.1.
    assert rows[(0.1, "max |EMSS - AC| over n")] < 0.02
    # TESLA's q_min is exactly flat in n.
    assert rows[(0.1, "TESLA spread over n")] == 0.0
    assert rows[(0.5, "TESLA spread over n")] == 0.0
