"""Figure 4 benchmark: TESLA q_min vs T_disclose/sigma and loss."""

import pytest

from repro.experiments import fig04_tesla_disclose_loss


def test_fig4_normalized_curves(benchmark, show):
    result = benchmark(fig04_tesla_disclose_loss.run, fast=True)
    show(result)
    for label, series in result.series.items():
        # q_min rises monotonically with the normalized disclosure delay.
        assert list(series.y) == sorted(series.y)
    # At a generous ratio the curves become loss-limited: q_min ~ 1-p.
    assert result.series["alpha=0.2,p=0.6"].y[-1] == pytest.approx(
        0.4, abs=0.01)
    # Larger alpha (mean delay closer to T_disclose) always hurts.
    for p_text in ("0", "0.3", "0.6", "0.9"):
        low = result.series[f"alpha=0.2,p={p_text}"]
        high = result.series[f"alpha=0.8,p={p_text}"]
        assert all(h <= l + 1e-12 for l, h in zip(low.y, high.y))
