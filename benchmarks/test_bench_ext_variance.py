"""Extension benchmark: q_i dispersion and the tapered-copies remedy."""

from repro.experiments import ext_variance


def test_variance_and_taper(benchmark, show):
    result = benchmark.pedantic(ext_variance.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    rows = {row["construction"]: row for row in result.rows}
    # Rohatgi has (relatively) the widest dispersion and a dead tail.
    assert rows["rohatgi"]["rel. dispersion"] > \
        rows["emss(2,1)"]["rel. dispersion"]
    assert rows["rohatgi"]["q_min"] < 0.01
    # The paper's remedy: far packets with more spread copies beat the
    # uniform scheme on both flatness and the worst packet.
    assert rows["tapered 2->4"]["rel. dispersion"] < \
        rows["emss(2,1)"]["rel. dispersion"]
    assert rows["tapered 2->4"]["q_min"] > rows["emss(2,1)"]["q_min"]
