"""Extension benchmark: Section 5 constructions head-to-head."""

from repro.experiments import ext_design


def test_design_constructions(benchmark, show):
    result = benchmark.pedantic(ext_design.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    rows = {row["method"]: row for row in result.rows}
    assert all(row["satisfied"] for row in result.rows)
    structured = [row for name, row in rows.items()
                  if name.startswith(("DP", "optimized"))]
    probabilistic = next(row for name, row in rows.items()
                         if name.startswith("probabilistic"))
    # Structured policies are at least as cheap as random placement.
    for row in structured:
        assert row["hashes/pkt"] <= probabilistic["hashes/pkt"] + 0.5
