"""Figure 6 benchmark: AC q_min vs b at fixed first-level size."""

from repro.experiments import fig06_ac_fixed_level1


def test_fig6_insensitive_to_b(benchmark, show):
    result = benchmark(fig06_ac_fixed_level1.run, fast=True)
    show(result)
    # Paper: "q_min is relatively insensitive to the variation of b"
    # once the first level is held constant.
    for row in result.rows:
        assert row["tail spread"] <= 0.02
    for series in result.series.values():
        assert max(series.y) - min(series.y) < 0.1
