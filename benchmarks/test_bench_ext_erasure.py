"""Extension benchmark: erasure-coded authentication vs hash chains."""

from repro.experiments import ext_erasure


def test_erasure_vs_chaining(benchmark, show):
    result = benchmark.pedantic(ext_erasure.run, kwargs={"fast": True},
                                rounds=2, iterations=1)
    show(result)
    saida = result.series["saida (exact)"]
    emss = result.series["emss(2,1) (exact)"]
    # Below the cliff SAIDA dominates; above it, it collapses below
    # everything (cliff vs slope).
    assert saida.y[0] > emss.y[0]
    assert saida.y[-1] < 0.2
    # Burst robustness: SAIDA is essentially burst-indifferent while
    # adjacent-copy EMSS is crushed.
    saida_burst = result.series["saida vs burst"]
    emss_burst = result.series["emss(2,1) vs burst"]
    assert min(saida_burst.y) > 0.85
    assert max(emss_burst.y) < min(saida_burst.y)
    # Cost: SAIDA pays more bytes per packet than the hash chains.
    costs = {row["scheme"]: row["bytes/pkt"] for row in result.rows}
    saida_cost = next(v for k, v in costs.items() if k.startswith("saida"))
    assert saida_cost > costs["emss(2,1)"]
