"""Figure 3 benchmark: TESLA q_min surface over (mu, sigma)."""

import pytest

from repro.analysis import tesla as tesla_analysis
from repro.experiments import fig03_tesla_mu_sigma


def test_fig3_surface(benchmark, show):
    result = benchmark(fig03_tesla_mu_sigma.run, fast=True)
    show(result)
    # Paper shape: q_min drops as either mu (alpha) or sigma increases.
    for series in result.series.values():
        assert list(series.y) == sorted(series.y, reverse=True)
    at_alpha0 = [series.y[0] for series in result.series.values()]
    # sigma ordering at alpha=0 (larger sigma, lower q_min).
    assert at_alpha0 == sorted(at_alpha0, reverse=True)


def test_fig3_point_values(benchmark):
    """Eq. 7 point checks at T_disclose=1s, p=0.1."""
    value = benchmark(tesla_analysis.q_min_alpha, 0.1, 1.0, 0.5, 0.25)
    # alpha=0.5, sigma=0.25: Phi(2) = 0.977 -> q_min = 0.9 * 0.977.
    assert value == pytest.approx(0.9 * 0.97725, abs=1e-4)
