"""Extension benchmark: the Eq. 8/10 independence-assumption gap."""

from repro.experiments import ext_independence_gap


def test_independence_gap(benchmark, show):
    result = benchmark.pedantic(ext_independence_gap.run,
                                kwargs={"fast": True}, rounds=2,
                                iterations=1)
    show(result)
    for row in result.rows:
        # Recurrences upper-bound the exact Monte Carlo values.
        assert row["EMSS exact MC"] <= row["EMSS Eq.8"] + 0.03
        assert row["AC exact MC"] <= row["AC Eq.10"] + 0.03
    # The gap widens with block size (geometric decay vs fixed point).
    small, large = result.rows[0], result.rows[-1]
    gap_small = small["EMSS Eq.8"] - small["EMSS exact MC"]
    gap_large = large["EMSS Eq.8"] - large["EMSS exact MC"]
    assert gap_large > gap_small
