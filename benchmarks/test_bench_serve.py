"""Live-serving throughput: packets/sec through the local transport.

Not a paper figure — this watches the asyncio serving stack end to
end: one :func:`~repro.serve.service.run_live_session` per receiver
count (1, 16 and 64 concurrent sessions) on the deterministic local
transport, signing, streaming, verifying and closing every block.
The headline number is authenticated packets delivered per wall-clock
second; the fan-out series shows how the single-sender event loop
amortizes across sessions.
"""

import time

import pytest

from repro.crypto.signatures import RsaSigner
from repro.experiments.common import ExperimentResult
from repro.serve.service import ServeConfig, run_live_session

BLOCKS = 4
BLOCK_SIZE = 8
RECEIVER_COUNTS = (1, 16, 64)

#: Batch-signing comparison: a real (expensive) signature scheme, the
#: fan-out where amortization matters, one batch covering the session.
RSA_BITS = 3072
BATCH_RECEIVERS = 64
BATCH_BLOCKS = 8
BATCH_SIZE = 8
MIN_BATCH_SPEEDUP = 3.0


def _config(receivers):
    return ServeConfig(receivers=receivers, blocks=BLOCKS,
                       block_size=BLOCK_SIZE,
                       loss_schedule=((0, 0.05),), seed=17)


@pytest.mark.parametrize("receivers", RECEIVER_COUNTS)
def test_serve_throughput(benchmark, show, receivers):
    config = _config(receivers)
    session = benchmark(run_live_session, config)

    assert session.forged_accepted == 0
    assert session.delivered > 0
    for transcript in session.transcripts.values():
        assert len(transcript.splitlines()) == BLOCKS

    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-serve",
        title=f"live serving fan-out, {receivers} receiver(s)",
    )
    result.rows.append({
        "receivers": receivers,
        "blocks": BLOCKS,
        "delivered pkts": session.delivered,
        "session s": seconds,
        "pkts/sec": session.delivered / seconds,
    })
    result.note("local transport, virtual time, loss p=0.05, "
                "adaptive controller on")
    show(result)


CHURN_RECEIVERS = 16
CHURN_BLOCKS = 12


def test_bench_churn(benchmark, show):
    """Packets/sec with the seeded membership storm live.

    Same shape as the fan-out series but with the churn machinery on
    the hot path: plan execution at every boundary, mid-block crash
    strikes, barrier reshaping and membership-aware estimator folds.
    The gate work stays the same: zero forged acceptances and a
    transcript for every member that was ever active.
    """
    config = ServeConfig(receivers=CHURN_RECEIVERS, blocks=CHURN_BLOCKS,
                         block_size=BLOCK_SIZE,
                         loss_schedule=((0, 0.05),), churn="storm",
                         seed=17)
    session = benchmark(run_live_session, config)

    assert session.forged_accepted == 0
    assert session.delivered > 0
    membership = session.manifest.parameters["membership"]
    assert sum(membership["counts"].values()) > 0
    # Churned transcripts cover each member's active interval, so the
    # total line count is the sum of those intervals — deterministic
    # at this seed, bounded by the full roster's.
    total_lines = sum(len(t.splitlines())
                      for t in session.transcripts.values())
    assert 0 < total_lines <= 2 * CHURN_RECEIVERS * CHURN_BLOCKS

    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-serve-churn",
        title=f"churned serving, {CHURN_RECEIVERS}+spares, storm plan",
    )
    counts = membership["counts"]
    result.rows.append({
        "receivers": CHURN_RECEIVERS,
        "blocks": CHURN_BLOCKS,
        "joins": counts["join"],
        "departures": counts["leave"] + counts["crash"],
        "delivered pkts": session.delivered,
        "session s": seconds,
        "pkts/sec": session.delivered / seconds,
    })
    result.note("local transport, seeded storm churn, membership-aware "
                "estimator folding")
    show(result)


@pytest.fixture(scope="module")
def rsa_signer():
    """One RSA-2048 key pair shared by both arms of the comparison."""
    return RsaSigner.generate(RSA_BITS)


def _batch_config(batch_size):
    return ServeConfig(receivers=BATCH_RECEIVERS, blocks=BATCH_BLOCKS,
                       block_size=2, payload_size=16,
                       loss_schedule=((0, 0.05),), seed=17,
                       adaptive=False, batch_size=batch_size)


def test_serve_batch_signing_speedup(benchmark, show, rsa_signer):
    """>= 3x pkts/sec at 64 receivers with batch 8 vs per-block RSA.

    Per-block signing pays one RSA signature per block plus one RSA
    verification per (receiver, block); batch signing pays one
    signature per 8 blocks and — through the shared verifier cache —
    one real verification per batch for the whole pool.  Both arms
    must produce byte-identical receiver transcripts: the speedup may
    not change a single verdict.
    """
    per_block_config = _batch_config(1)
    batch_config = _batch_config(BATCH_SIZE)

    per_block_seconds = []
    for _ in range(2):
        start = time.perf_counter()
        per_block_session = run_live_session(per_block_config,
                                             signer=rsa_signer)
        per_block_seconds.append(time.perf_counter() - start)
    per_seconds = min(per_block_seconds)

    batch_session = benchmark(run_live_session, batch_config, rsa_signer)
    # min-of-rounds on both arms: the gate compares best-case against
    # best-case so scheduler noise cannot flip it either way
    batch_seconds = benchmark.stats.stats.min

    assert per_block_session.forged_accepted == 0
    assert batch_session.forged_accepted == 0
    assert batch_session.transcripts == per_block_session.transcripts
    assert batch_session.delivered == per_block_session.delivered
    assert batch_session.delivered > 0

    pkts_per_sec_batch = batch_session.delivered / batch_seconds
    pkts_per_sec_per_block = per_block_session.delivered / per_seconds
    speedup = pkts_per_sec_batch / pkts_per_sec_per_block
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batch signing only {speedup:.2f}x over per-block "
        f"(need >= {MIN_BATCH_SPEEDUP}x): {batch_seconds:.4f}s vs "
        f"{per_seconds:.4f}s per session")

    result = ExperimentResult(
        experiment_id="bench-serve-batch",
        title=f"batch signing, {BATCH_RECEIVERS} receivers, "
              f"rsa-{RSA_BITS}",
    )
    for arm, seconds, pkts in (
            ("per-block", per_seconds, pkts_per_sec_per_block),
            (f"batch {BATCH_SIZE}", batch_seconds, pkts_per_sec_batch)):
        result.rows.append({
            "signing": arm,
            "blocks": BATCH_BLOCKS,
            "delivered pkts": batch_session.delivered,
            "session s": seconds,
            "pkts/sec": pkts,
        })
    result.note(f"one RSA-{RSA_BITS} key, identical transcripts; "
                f"speedup {speedup:.2f}x (gate >= {MIN_BATCH_SPEEDUP}x)")
    show(result)
