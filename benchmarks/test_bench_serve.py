"""Live-serving throughput: packets/sec through the local transport.

Not a paper figure — this watches the asyncio serving stack end to
end: one :func:`~repro.serve.service.run_live_session` per receiver
count (1, 16 and 64 concurrent sessions) on the deterministic local
transport, signing, streaming, verifying and closing every block.
The headline number is authenticated packets delivered per wall-clock
second; the fan-out series shows how the single-sender event loop
amortizes across sessions.
"""

import pytest

from repro.experiments.common import ExperimentResult
from repro.serve.service import ServeConfig, run_live_session

BLOCKS = 4
BLOCK_SIZE = 8
RECEIVER_COUNTS = (1, 16, 64)


def _config(receivers):
    return ServeConfig(receivers=receivers, blocks=BLOCKS,
                       block_size=BLOCK_SIZE,
                       loss_schedule=((0, 0.05),), seed=17)


@pytest.mark.parametrize("receivers", RECEIVER_COUNTS)
def test_serve_throughput(benchmark, show, receivers):
    config = _config(receivers)
    session = benchmark(run_live_session, config)

    assert session.forged_accepted == 0
    assert session.delivered > 0
    for transcript in session.transcripts.values():
        assert len(transcript.splitlines()) == BLOCKS

    seconds = benchmark.stats.stats.mean
    result = ExperimentResult(
        experiment_id="bench-serve",
        title=f"live serving fan-out, {receivers} receiver(s)",
    )
    result.rows.append({
        "receivers": receivers,
        "blocks": BLOCKS,
        "delivered pkts": session.delivered,
        "session s": seconds,
        "pkts/sec": session.delivered / seconds,
    })
    result.note("local transport, virtual time, loss p=0.05, "
                "adaptive controller on")
    show(result)
