"""Figure 1 & 2 benchmark: dependence-graph construction and rendering."""

from repro.experiments import fig01_graphs, fig02_tesla_graph


def test_fig1_dependence_graphs(benchmark):
    result = benchmark(fig01_graphs.run, fast=True)
    schemes = {row["scheme"] for row in result.rows}
    assert {"rohatgi", "emss(2,1)", "ac(2,2)"} <= schemes
    assert not any("WARNING" in note for note in result.notes)


def test_fig2_tesla_graph(benchmark):
    result = benchmark(fig02_tesla_graph.run, fast=True)
    by_lag = {row["lag"]: row for row in result.rows}
    # 2n+1 vertices regardless of lag; key coverage shrinks with index.
    assert by_lag[1]["vertices"] == 13
    assert by_lag[1]["keys for P_1"] == 6
    assert by_lag[1]["keys for P_n"] == 1
