"""Section 3 worked-example benchmark: the Rohatgi metric suite."""

import pytest

from repro.experiments import sec3_example


def test_sec3_rohatgi_example(benchmark, show):
    result = benchmark.pedantic(sec3_example.run, kwargs={"fast": True},
                                rounds=3, iterations=1)
    show(result)
    metric_row = result.rows[0]
    assert metric_row["delay slots"] == 0
    assert metric_row["hash buffer"] == 1
    assert metric_row["msg buffer"] == 0
    for row in result.rows[1:]:
        # Closed form == exact paths == Monte Carlo (sampling error).
        assert row["q_min exact-paths"] == pytest.approx(
            row["q_min closed"], rel=1e-9)
        assert row["q_min monte-carlo"] == pytest.approx(
            row["q_min closed"], abs=0.05)
