"""Figure 7 benchmark: EMSS q_min over (m, d)."""

from repro.analysis import emss as emss_analysis
from repro.experiments import fig07_emss_md


def test_fig7_m_and_d_sweeps(benchmark, show):
    result = benchmark(fig07_emss_md.run, fast=True)
    show(result)
    # m-curves never decrease; the final step is a small fraction of
    # the total climb ("levels off at m ~ 2-4").
    for p in (0.1, 0.3, 0.5):
        series = result.series[f"vs m (d=1), p={p:g}"]
        assert list(series.y) == sorted(series.y)
    for row in result.rows:
        assert row["gain at last m step"] <= max(
            0.15 * row["total gain over m"], 1e-9)


def test_fig7_d_insensitivity(benchmark):
    """q_min(d) moves < 3% until m*d reaches ~20% of the block."""
    def spread():
        base = emss_analysis.q_min(1000, 2, 1, 0.3)
        return max(abs(emss_analysis.q_min(1000, 2, d, 0.3) - base)
                   for d in (2, 5, 10, 20, 50, 100))

    assert benchmark(spread) < 0.03
