"""Figure 5 benchmark: augmented-chain q_min over the (a, b) grid."""

from repro.analysis import augmented_chain as ac_analysis
from repro.experiments import fig05_ac_ab


def test_fig5_parameter_grid(benchmark, show):
    result = benchmark(fig05_ac_ab.run, fast=True)
    show(result)
    # q_min never decreases when a grows (at any p, b).
    for series in result.series.values():
        rounded = [round(y, 12) for y in series.y]
        assert rounded == sorted(rounded)
    assert not any("WARNING" in note for note in result.notes)


def test_fig5_strong_sensitivity_at_high_loss(benchmark):
    """At p=0.5 the (a, b) dependence is strong, as the paper plots."""
    def sweep():
        return {
            (a, b): ac_analysis.q_min(1000, a, b, 0.5)
            for a in (2, 5, 8) for b in (1, 4, 8)
        }

    values = benchmark(sweep)
    assert values[(8, 8)] > 3 * values[(2, 1)]
