"""Shared benchmark configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables or
figures under pytest-benchmark, printing the reproduced rows/series
(with ``-s``) and asserting the paper's qualitative shape.  Benchmarks
run the experiments in ``fast`` mode so the whole harness stays under a
minute; the ``repro-experiments --all`` CLI produces full-resolution
output.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an experiment result outside of captured assertions."""
    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())
    return _show
