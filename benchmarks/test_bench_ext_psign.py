"""Extension benchmark: ablating the protected-P_sign assumption."""

import pytest

from repro.experiments import ext_psign_replication


def test_psign_replication_ablation(benchmark, show):
    result = benchmark.pedantic(ext_psign_replication.run,
                                kwargs={"fast": True}, rounds=2,
                                iterations=1)
    show(result)
    for p in (0.1, 0.3):
        empirical = result.series[f"empirical p={p:g}"]
        predicted = result.series[f"predicted p={p:g}"]
        # Replication monotonically recovers q_min...
        assert empirical.y[-1] >= empirical.y[0] - 0.02
        # ...following the (1 - p^c) model.
        for e, pr in zip(empirical.y, predicted.y):
            assert e == pytest.approx(pr, abs=0.12)
    # Overhead grows linearly with copies (Eq. 3).
    by_copies = {(r["p"], r["copies"]): r["bytes/pkt"]
                 for r in result.rows}
    assert by_copies[(0.1, 4)] > by_copies[(0.1, 1)]
