"""A lossy, delaying multicast channel.

Combines a :class:`~repro.network.loss.LossModel` and a
:class:`~repro.network.delay.DelayModel`: each transmitted packet is
either dropped or scheduled for delivery at ``send_time + delay``.
Deliveries are yielded in *arrival* order, so out-of-order delivery —
which the paper notes matters for TESLA's security condition —
emerges naturally from delay jitter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.network.delay import ConstantDelay, DelayModel
from repro.network.loss import LossEstimator, LossModel, NoLoss
from repro.packets import Packet

__all__ = ["Delivery", "Channel"]


@dataclass(frozen=True)
class Delivery:
    """One packet arriving at the receiver."""

    arrival_time: float
    packet: Packet

    @property
    def delay(self) -> float:
        """End-to-end delay experienced by this packet."""
        return self.arrival_time - self.packet.send_time


class Channel:
    """Unreliable channel with loss and random delay.

    Parameters
    ----------
    loss:
        Drop decision per packet (defaults to lossless).
    delay:
        End-to-end delay per surviving packet (defaults to zero).
    protect_signature_packets:
        The paper assumes ``P_sign`` is always received ("this can be
        easily achieved by sending it multiple times").  When ``True``,
        packets with a signature bypass the loss model — the modeling
        shortcut equivalent to infinite retransmission.  Loss-model
        state still advances so loss patterns stay comparable.
    """

    def __init__(self, loss: Optional[LossModel] = None,
                 delay: Optional[DelayModel] = None,
                 protect_signature_packets: bool = True,
                 estimator: Optional[LossEstimator] = None) -> None:
        self.loss = loss if loss is not None else NoLoss()
        self.delay = delay if delay is not None else ConstantDelay(0.0)
        self.protect_signature_packets = protect_signature_packets
        #: Ground-truth estimator fed one observation per transmitted
        #: packet; ``sent``/``dropped``/``observed_loss_rate`` are views
        #: of it, so the channel and any adaptive consumer read the
        #: same numbers.
        self.estimator = estimator if estimator is not None else LossEstimator()

    def transmit(self, packets: Iterable[Packet]) -> List[Delivery]:
        """Send ``packets`` (already stamped with ``send_time``).

        Returns deliveries sorted by arrival time; ties broken by send
        order to keep results deterministic.
        """
        heap: List[Tuple[float, int, int, Packet]] = []
        for index, packet in enumerate(packets):
            lost = self.loss.is_lost()
            dropped = lost and not (self.protect_signature_packets
                                    and packet.is_signature_packet)
            self.estimator.observe(dropped)
            if dropped:
                continue
            arrival = packet.send_time + self.delay.sample()
            if arrival < packet.send_time:
                raise SimulationError("delay model produced time travel")
            # seq then transmission index break ties deterministically
            # (retransmitted copies share a seq).
            heapq.heappush(heap, (arrival, packet.seq, index, packet))
        deliveries = []
        while heap:
            arrival, _, _, packet = heapq.heappop(heap)
            deliveries.append(Delivery(arrival_time=arrival, packet=packet))
        return deliveries

    def stream(self, packets: Iterable[Packet]) -> Iterator[Delivery]:
        """Iterator form of :meth:`transmit`."""
        return iter(self.transmit(packets))

    def reset(self) -> None:
        """New trial: reset models and counters."""
        self.loss.reset()
        self.delay.reset()
        self.estimator.reset()

    @property
    def sent(self) -> int:
        """Packets transmitted so far."""
        return self.estimator.observed

    @property
    def dropped(self) -> int:
        """Packets the loss model dropped so far."""
        return self.estimator.lost

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of transmitted packets dropped so far."""
        return self.estimator.lifetime_rate
