"""End-to-end delay models.

Section 4.1 of the paper justifies a Gaussian end-to-end delay: a
packet crosses many routers, each adding an i.i.d. queueing delay, so
by the central limit theorem ``D_e2e ~ N(μ, σ²)`` (Eq. 5).  TESLA's
``ξ_i = P{t_i <= T_disclose}`` is then a normal CDF — the quantity
behind Figs. 3 and 4.  Negative Gaussian samples are truncated at a
configurable floor (a packet cannot arrive before it is sent).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Optional

from repro.exceptions import SimulationError

__all__ = ["DelayModel", "ConstantDelay", "GaussianDelay", "gaussian_cdf"]


def gaussian_cdf(x: float) -> float:
    """Standard normal CDF ``Φ(x)`` via :func:`math.erf` (Eq. 5's integral)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class DelayModel(ABC):
    """Per-packet end-to-end delay sampler."""

    @abstractmethod
    def sample(self) -> float:
        """One delay in seconds (>= 0)."""

    @abstractmethod
    def reset(self) -> None:
        """Return to the initial RNG state (new trial)."""

    @abstractmethod
    def cdf(self, t: float) -> float:
        """``P{delay <= t}`` — feeds TESLA's ``ξ`` term analytically."""


class ConstantDelay(DelayModel):
    """Deterministic propagation delay."""

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self) -> float:
        return self.delay

    def reset(self) -> None:
        return None

    def cdf(self, t: float) -> float:
        return 1.0 if t >= self.delay else 0.0


class GaussianDelay(DelayModel):
    """The paper's ``N(μ, σ²)`` end-to-end delay (Eq. 5).

    Parameters
    ----------
    mean:
        ``μ`` — mean end-to-end delay in seconds.
    std:
        ``σ`` — delay jitter.
    floor:
        Samples below ``floor`` are clamped (physical arrival cannot
        precede transmission).  The analytic :meth:`cdf` intentionally
        ignores the clamp, matching the paper's formulas exactly.
    seed:
        Private RNG seed.
    """

    def __init__(self, mean: float, std: float, floor: float = 0.0,
                 seed: Optional[int] = None) -> None:
        if mean < 0:
            raise SimulationError(f"mean delay must be >= 0, got {mean}")
        if std < 0:
            raise SimulationError(f"delay std must be >= 0, got {std}")
        self.mean = mean
        self.std = std
        self.floor = floor
        self._seed = seed
        self._rng = random.Random(seed)

    def sample(self) -> float:
        if self.std == 0.0:
            return max(self.mean, self.floor)
        return max(self._rng.gauss(self.mean, self.std), self.floor)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def cdf(self, t: float) -> float:
        if self.std == 0.0:
            return 1.0 if t >= self.mean else 0.0
        return gaussian_cdf((t - self.mean) / self.std)
