"""Network models: loss, delay, channels and clocks (paper Sec. 4.1)."""

from repro.network.channel import Channel, Delivery
from repro.network.clock import DriftingClock
from repro.network.delay import ConstantDelay, DelayModel, GaussianDelay, gaussian_cdf
from repro.network.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    MarkovLoss,
    NoLoss,
    TraceLoss,
)

__all__ = [
    "Channel",
    "Delivery",
    "DriftingClock",
    "ConstantDelay",
    "DelayModel",
    "GaussianDelay",
    "gaussian_cdf",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossModel",
    "MarkovLoss",
    "NoLoss",
    "TraceLoss",
]
