"""Network models: loss, delay, channels and clocks (paper Sec. 4.1)."""

from repro.network.channel import Channel, Delivery
from repro.network.clock import Clock, DriftingClock, MonotonicClock, VirtualClock
from repro.network.delay import ConstantDelay, DelayModel, GaussianDelay, gaussian_cdf
from repro.network.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossEstimator,
    LossModel,
    MarkovLoss,
    NoLoss,
    TraceLoss,
)

__all__ = [
    "Channel",
    "Delivery",
    "Clock",
    "DriftingClock",
    "MonotonicClock",
    "VirtualClock",
    "ConstantDelay",
    "DelayModel",
    "GaussianDelay",
    "gaussian_cdf",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossEstimator",
    "LossModel",
    "MarkovLoss",
    "NoLoss",
    "TraceLoss",
]
