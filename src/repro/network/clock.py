"""Clocks: injectable time sources and TESLA's synchronization model.

Two concerns live here:

* :class:`DriftingClock` models a receiver clock with a fixed offset
  plus linear drift — TESLA requires "that the sender and receivers
  synchronize their clocks within a certain margin", and the margin
  enters the receiver's security condition;
* the :class:`Clock` interface with its :class:`VirtualClock` /
  :class:`MonotonicClock` implementations is how time-dependent code
  (the live serving layer, TESLA disclosure checks) takes *injectable*
  time.  Nothing in the simulation or serving stack may default to
  ``time.time()``-style wall clocks: a test that freezes a
  :class:`VirtualClock` must reproduce bit-identical transcripts, so
  every ``now()`` has to flow from an explicit clock object.
"""

from __future__ import annotations

import asyncio
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import SimulationError

__all__ = ["Clock", "VirtualClock", "MonotonicClock", "DriftingClock"]


class Clock(ABC):
    """An injectable time source for simulations and live services.

    ``now()`` is the only thing verification logic may ask; ``sleep``
    exists so async pacing code works unchanged under virtual time
    (where sleeping advances the clock instead of waiting).
    """

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (epoch defined by the implementation)."""

    @abstractmethod
    async def sleep(self, duration: float) -> None:
        """Pause the calling task for ``duration`` clock seconds."""


class VirtualClock(Clock):
    """Deterministic manual-advance clock for tests and LocalTransport.

    Time moves only when somebody calls :meth:`advance` (or awaits
    :meth:`sleep`, which advances without real waiting).  Two runs
    that perform the same sequence of advances read identical times —
    the property the frozen-transcript regression tests pin down.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, duration: float) -> None:
        """Move time forward by ``duration`` seconds."""
        if duration < 0:
            raise SimulationError(
                f"cannot advance time backwards ({duration})")
        self._now += duration

    async def sleep(self, duration: float) -> None:
        """Advance virtual time; yields to the event loop exactly once."""
        if duration < 0:
            raise SimulationError(f"cannot sleep a negative time ({duration})")
        self._now += duration
        await asyncio.sleep(0)


class MonotonicClock(Clock):
    """Wall clock for real transports, zeroed at construction.

    Backed by ``time.monotonic()`` so it never jumps backwards; the
    origin shift keeps its readings comparable to a
    :class:`VirtualClock` starting at 0.
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    async def sleep(self, duration: float) -> None:
        await asyncio.sleep(max(0.0, duration))


@dataclass(frozen=True)
class DriftingClock:
    """Receiver clock as a function of true (sender) time.

    ``local(t) = t + offset + drift_ppm * 1e-6 * (t - t_sync)``

    Parameters
    ----------
    offset:
        Initial offset at synchronization time (seconds).
    drift_ppm:
        Linear drift in parts per million.
    t_sync:
        True time at which synchronization happened.
    """

    offset: float = 0.0
    drift_ppm: float = 0.0
    t_sync: float = 0.0

    def local(self, true_time: float) -> float:
        """Receiver-clock reading at true time ``true_time``."""
        return (true_time + self.offset
                + self.drift_ppm * 1e-6 * (true_time - self.t_sync))

    def offset_at(self, true_time: float) -> float:
        """Instantaneous clock error at ``true_time``."""
        return self.local(true_time) - true_time

    def max_offset_until(self, horizon: float) -> float:
        """Worst |offset| over ``[t_sync, horizon]`` (for the bootstrap bound)."""
        if horizon < self.t_sync:
            raise SimulationError("horizon precedes synchronization time")
        return max(abs(self.offset_at(self.t_sync)),
                   abs(self.offset_at(horizon)))
