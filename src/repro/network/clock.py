"""Simulated clocks for TESLA's time-synchronization assumption.

TESLA requires "that the sender and receivers synchronize their clocks
within a certain margin"; the margin enters the receiver's security
condition.  :class:`DriftingClock` models a receiver clock with a fixed
offset plus linear drift so experiments can probe what happens when the
synchronization assumption erodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError

__all__ = ["DriftingClock"]


@dataclass(frozen=True)
class DriftingClock:
    """Receiver clock as a function of true (sender) time.

    ``local(t) = t + offset + drift_ppm * 1e-6 * (t - t_sync)``

    Parameters
    ----------
    offset:
        Initial offset at synchronization time (seconds).
    drift_ppm:
        Linear drift in parts per million.
    t_sync:
        True time at which synchronization happened.
    """

    offset: float = 0.0
    drift_ppm: float = 0.0
    t_sync: float = 0.0

    def local(self, true_time: float) -> float:
        """Receiver-clock reading at true time ``true_time``."""
        return (true_time + self.offset
                + self.drift_ppm * 1e-6 * (true_time - self.t_sync))

    def offset_at(self, true_time: float) -> float:
        """Instantaneous clock error at ``true_time``."""
        return self.local(true_time) - true_time

    def max_offset_until(self, horizon: float) -> float:
        """Worst |offset| over ``[t_sync, horizon]`` (for the bootstrap bound)."""
        if horizon < self.t_sync:
            raise SimulationError("horizon precedes synchronization time")
        return max(abs(self.offset_at(self.t_sync)),
                   abs(self.offset_at(horizon)))
