"""Packet-loss models.

The paper's analysis assumes independent random loss with rate ``p``
(Sec. 4.1) and names the "m-state Markov model" as future work; both
are implemented here, plus a trace-driven model for replaying recorded
loss patterns.  All models share a tiny interface — :meth:`is_lost`
consumes one packet slot — and own a private RNG so concurrent
simulations never share state.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "LossModel",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "MarkovLoss",
    "TraceLoss",
    "NoLoss",
    "LossEstimator",
    "PooledLossEstimator",
]


class LossModel(ABC):
    """One packet-loss decision per call, in send order."""

    @abstractmethod
    def is_lost(self) -> bool:
        """Consume one packet slot; ``True`` means the packet is dropped."""

    @abstractmethod
    def reset(self) -> None:
        """Return to the initial state (new trial)."""

    def reseed(self, seed: Optional[int]) -> None:
        """Re-key the model's private RNG, then :meth:`reset`.

        Models without randomness (traces, lossless channels) simply
        reset.  This is how the reproducible estimators pin down models
        that were constructed without a seed of their own.
        """
        if hasattr(self, "_seed"):
            self._seed = seed
        self.reset()

    def sample(self, count: int) -> List[bool]:
        """Loss decisions for ``count`` consecutive packets."""
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count}")
        return [self.is_lost() for _ in range(count)]

    @property
    @abstractmethod
    def mean_loss_rate(self) -> float:
        """Long-run fraction of packets lost."""


class NoLoss(LossModel):
    """Lossless channel (sanity baselines)."""

    def is_lost(self) -> bool:
        return False

    def reset(self) -> None:
        return None

    @property
    def mean_loss_rate(self) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent loss with probability ``p`` (the paper's model).

    Parameters
    ----------
    p:
        Per-packet loss probability.
    seed:
        Private RNG seed for reproducible trials.
    """

    def __init__(self, p: float, seed: Optional[int] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"loss rate must be in [0, 1], got {p}")
        self.p = p
        self._seed = seed
        self._rng = random.Random(seed)

    def is_lost(self) -> bool:
        return self._rng.random() < self.p

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    @property
    def mean_loss_rate(self) -> float:
        return self.p


class GilbertElliottLoss(LossModel):
    """Two-state Markov (bursty) loss — the paper's named extension.

    The channel alternates between a GOOD and a BAD state.  Each packet
    first samples a loss from the current state's loss rate, then the
    state transitions.

    Parameters
    ----------
    p_good_to_bad:
        Transition probability GOOD→BAD per packet.
    p_bad_to_good:
        Transition probability BAD→GOOD per packet; the mean burst
        length is ``1 / p_bad_to_good``.
    loss_in_bad:
        Loss rate while BAD (1.0 = classic Gilbert model).
    loss_in_good:
        Loss rate while GOOD (usually 0).
    seed:
        Private RNG seed.
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float,
                 loss_in_bad: float = 1.0, loss_in_good: float = 0.0,
                 seed: Optional[int] = None) -> None:
        for name, value in [("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good),
                            ("loss_in_bad", loss_in_bad),
                            ("loss_in_good", loss_in_good)]:
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")
        if p_bad_to_good == 0.0 and p_good_to_bad > 0.0:
            raise SimulationError("BAD state would be absorbing")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_in_bad = loss_in_bad
        self.loss_in_good = loss_in_good
        self._seed = seed
        self._rng = random.Random(seed)
        self._bad = False

    @classmethod
    def from_rate_and_burst(cls, loss_rate: float, mean_burst: float,
                            seed: Optional[int] = None) -> "GilbertElliottLoss":
        """Construct from target mean loss rate and mean burst length.

        With ``loss_in_bad = 1`` and ``loss_in_good = 0`` the stationary
        loss rate is ``π_bad = g2b / (g2b + b2g)``; solving with
        ``b2g = 1 / mean_burst`` gives ``g2b``.
        """
        if not 0.0 < loss_rate < 1.0:
            raise SimulationError(f"loss rate must be in (0, 1), got {loss_rate}")
        if mean_burst < 1.0:
            raise SimulationError(f"mean burst must be >= 1, got {mean_burst}")
        b2g = 1.0 / mean_burst
        g2b = loss_rate * b2g / (1.0 - loss_rate)
        if g2b > 1.0:
            raise SimulationError(
                f"infeasible pair (rate={loss_rate}, burst={mean_burst})"
            )
        return cls(p_good_to_bad=g2b, p_bad_to_good=b2g, seed=seed)

    def is_lost(self) -> bool:
        rate = self.loss_in_bad if self._bad else self.loss_in_good
        lost = self._rng.random() < rate
        flip = self.p_bad_to_good if self._bad else self.p_good_to_bad
        if self._rng.random() < flip:
            self._bad = not self._bad
        return lost

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._bad = False

    @property
    def mean_loss_rate(self) -> float:
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return self.loss_in_good
        pi_bad = self.p_good_to_bad / total
        return pi_bad * self.loss_in_bad + (1.0 - pi_bad) * self.loss_in_good


class MarkovLoss(LossModel):
    """General m-state Markov loss — the paper's named future work.

    Each state carries a loss probability; after every packet the
    state transitions according to a row-stochastic matrix.
    :class:`GilbertElliottLoss` is the 2-state instance; more states
    model e.g. GOOD / CONGESTED / OUTAGE channels with distinct
    dynamics.

    Parameters
    ----------
    transition:
        Row-stochastic ``m x m`` matrix (list of rows).
    loss_rates:
        Per-state loss probabilities, length ``m``.
    initial_state:
        Starting state index.
    seed:
        Private RNG seed.
    """

    def __init__(self, transition: Sequence[Sequence[float]],
                 loss_rates: Sequence[float], initial_state: int = 0,
                 seed: Optional[int] = None) -> None:
        m = len(loss_rates)
        if m < 1:
            raise SimulationError("need >= 1 state")
        if len(transition) != m or any(len(row) != m for row in transition):
            raise SimulationError(f"transition matrix must be {m}x{m}")
        for row in transition:
            if any(not 0.0 <= x <= 1.0 for x in row):
                raise SimulationError("transition probabilities in [0, 1]")
            if abs(sum(row) - 1.0) > 1e-9:
                raise SimulationError(f"rows must sum to 1, got {sum(row)}")
        for rate in loss_rates:
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"loss rate {rate} outside [0, 1]")
        if not 0 <= initial_state < m:
            raise SimulationError(f"initial state {initial_state} invalid")
        self._transition = [list(row) for row in transition]
        self._loss_rates = list(loss_rates)
        self._initial_state = initial_state
        self._seed = seed
        self._rng = random.Random(seed)
        self._state = initial_state

    def is_lost(self) -> bool:
        lost = self._rng.random() < self._loss_rates[self._state]
        roll = self._rng.random()
        cumulative = 0.0
        row = self._transition[self._state]
        for next_state, probability in enumerate(row):
            cumulative += probability
            if roll < cumulative:
                self._state = next_state
                break
        else:  # numerical slack: stay put
            self._state = len(row) - 1
        return lost

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._state = self._initial_state

    @property
    def mean_loss_rate(self) -> float:
        """Stationary loss rate, from the chain's stationary vector."""
        matrix = np.array(self._transition)
        m = matrix.shape[0]
        # Solve pi (P - I) = 0 with sum(pi) = 1.
        a = np.vstack([(matrix.T - np.eye(m)), np.ones(m)])
        b = np.zeros(m + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        return float(pi @ np.array(self._loss_rates))


class TraceLoss(LossModel):
    """Replay a recorded loss pattern (cycled when exhausted)."""

    def __init__(self, trace: Sequence[bool]) -> None:
        if not trace:
            raise SimulationError("loss trace must be non-empty")
        self._trace = [bool(x) for x in trace]
        self._cursor = 0

    def is_lost(self) -> bool:
        lost = self._trace[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._trace)
        return lost

    def reset(self) -> None:
        self._cursor = 0

    @property
    def mean_loss_rate(self) -> float:
        return sum(self._trace) / len(self._trace)


class LossEstimator:
    """Windowed loss-rate estimation from observed packet fates.

    The dual of a :class:`LossModel`: instead of *deciding* loss it
    *measures* it, one observation per packet slot.  Three views of
    the same stream are maintained, each answering a different
    question the adaptive layer asks:

    * :attr:`lifetime_rate` — dropped/observed since construction,
      the :attr:`~repro.network.channel.Channel.observed_loss_rate`
      semantics;
    * :attr:`window_rate` — the exact rate over the most recent
      ``window`` observations, the "what is the channel doing *now*"
      estimate loss reports feed back to the sender;
    * :attr:`ewma_rate` — an exponentially weighted moving average
      (weight ``alpha`` on the newest observation), the smoothed
      signal a controller can act on without chasing per-block noise.

    Purely arithmetic — no RNG, no clock — so an estimator is exactly
    as deterministic as the observation stream it is fed.

    Parameters
    ----------
    window:
        Exact sliding-window length in observations.
    alpha:
        EWMA weight of the newest observation, in ``(0, 1]``.
    """

    def __init__(self, window: int = 256, alpha: float = 0.125) -> None:
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(f"alpha must be in (0, 1], got {alpha}")
        self.window = window
        self.alpha = alpha
        self.observed = 0
        self.lost = 0
        self._recent: Deque[bool] = deque(maxlen=window)
        self._recent_lost = 0
        self._ewma: Optional[float] = None

    def observe(self, lost: bool) -> None:
        """Record one packet slot's fate (``True`` = the packet was lost)."""
        lost = bool(lost)
        self.observed += 1
        if lost:
            self.lost += 1
        if len(self._recent) == self.window and self._recent[0]:
            self._recent_lost -= 1
        self._recent.append(lost)
        if lost:
            self._recent_lost += 1
        value = 1.0 if lost else 0.0
        if self._ewma is None:
            self._ewma = value
        else:
            self._ewma += self.alpha * (value - self._ewma)

    def observe_block(self, lost: int, total: int) -> None:
        """Fold an aggregate report: ``lost`` of ``total`` packets lost.

        The aggregate erases ordering, so a deterministic one is
        chosen: losses are spread evenly across the ``total`` slots,
        *centered* within their strides (slot ``i`` is lost iff the
        rounded cumulative count ``(2*i*lost + total) // (2*total)``
        advances at ``i + 1``).  A clustered order would bias every
        sliding window that truncates an aggregate mid-way — an
        end-of-stride placement puts a ``lost=1`` aggregate's loss in
        the final slot, so a window cut at a membership change reads
        either a clean or a doubly-lossy tail the channel never had.
        """
        if total < 0 or not 0 <= lost <= total:
            raise SimulationError(
                f"need 0 <= lost <= total, got lost={lost}, total={total}")
        for index in range(total):
            before = (2 * index * lost + total) // (2 * total)
            after = (2 * (index + 1) * lost + total) // (2 * total)
            self.observe(after > before)

    def reset(self) -> None:
        """Forget everything (new trial)."""
        self.observed = 0
        self.lost = 0
        self._recent.clear()
        self._recent_lost = 0
        self._ewma = None

    def forget_oldest(self, count: Optional[int] = None) -> int:
        """Age the oldest ``count`` window samples out (all if ``None``).

        The explicit purge for membership changes: samples leave the
        window (and its rate) immediately instead of waiting to be
        displaced, while the lifetime counters and the EWMA keep their
        history.  Returns how many samples were actually dropped.
        """
        if count is None:
            count = len(self._recent)
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count}")
        dropped = 0
        while dropped < count and self._recent:
            if self._recent.popleft():
                self._recent_lost -= 1
            dropped += 1
        return dropped

    @property
    def lifetime_rate(self) -> float:
        """Lost/observed since construction (0.0 before any observation)."""
        if self.observed == 0:
            return 0.0
        return self.lost / self.observed

    @property
    def window_rate(self) -> float:
        """Exact loss rate over the last ``window`` observations."""
        if not self._recent:
            return 0.0
        return self._recent_lost / len(self._recent)

    @property
    def window_fill(self) -> int:
        """Observations currently inside the window (≤ ``window``)."""
        return len(self._recent)

    @property
    def window_lost(self) -> int:
        """Losses currently inside the window (exact integer count)."""
        return self._recent_lost

    @property
    def ewma_rate(self) -> float:
        """EWMA loss rate (0.0 before any observation)."""
        return self._ewma if self._ewma is not None else 0.0

    def __repr__(self) -> str:
        return (f"<LossEstimator observed={self.observed} "
                f"lifetime={self.lifetime_rate:.3f} "
                f"window={self.window_rate:.3f} ewma={self.ewma_rate:.3f}>")


class PooledLossEstimator:
    """Membership-aware pooling: one private window per report source.

    A single shared :class:`LossEstimator` cannot forget a departed
    receiver — its samples sit in the window until displaced, biasing
    every pooled rate toward a channel that no longer exists.  This
    estimator keys one private window per source and derives the
    pooled views from the *current* membership only, so
    :meth:`retire` folds a leaver (and its stale samples) out of the
    estimate in O(1), exactly at the membership boundary.

    The pooled surface mirrors the :class:`LossEstimator` attributes
    the adaptive layer reads (``window_rate`` / ``window_fill`` /
    ``ewma_rate``), and stays purely arithmetic — as deterministic as
    the report stream.
    """

    def __init__(self, window: int = 256, alpha: float = 0.125) -> None:
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(f"alpha must be in (0, 1], got {alpha}")
        self.window = window
        self.alpha = alpha
        self._members: Dict[str, LossEstimator] = {}
        self.retired = 0

    def estimator_for(self, source: str) -> LossEstimator:
        """The named source's private estimator (created on first use)."""
        estimator = self._members.get(source)
        if estimator is None:
            estimator = LossEstimator(window=self.window, alpha=self.alpha)
            self._members[source] = estimator
        return estimator

    def observe_block(self, source: str, lost: int, total: int) -> None:
        """Fold one source's aggregate report into its private window."""
        self.estimator_for(source).observe_block(lost, total)

    def retire(self, source: str) -> bool:
        """Drop a source and every sample it ever contributed.

        Returns whether the source had a window to drop; retiring an
        unknown source is a no-op (a receiver may depart before its
        first report).
        """
        if self._members.pop(source, None) is None:
            return False
        self.retired += 1
        return True

    @property
    def members(self) -> List[str]:
        """Currently pooled sources, sorted."""
        return sorted(self._members)

    @property
    def window_fill(self) -> int:
        """Observations inside all current members' windows."""
        return sum(e.window_fill for e in self._members.values())

    @property
    def window_lost(self) -> int:
        """Losses inside all current members' windows (exact integer)."""
        return sum(e.window_lost for e in self._members.values())

    @property
    def window_rate(self) -> float:
        """Exact pooled loss rate over current members' windows."""
        fill = self.window_fill
        if fill == 0:
            return 0.0
        return self.window_lost / fill

    @property
    def ewma_rate(self) -> float:
        """Fill-weighted mean of current members' EWMA rates.

        Weighting by window fill keeps a just-joined receiver's short
        history from swinging the pooled smoothed signal; summation
        runs in sorted member order so the float fold is independent
        of join order.
        """
        fill = self.window_fill
        if fill == 0:
            return 0.0
        weighted = sum(self._members[name].ewma_rate
                       * self._members[name].window_fill
                       for name in sorted(self._members))
        return weighted / fill

    def __repr__(self) -> str:
        return (f"<PooledLossEstimator members={len(self._members)} "
                f"retired={self.retired} window={self.window_rate:.3f}>")
