"""Dependence-graph persistence.

The Section 5 design toolkit produces graphs worth keeping: a tuned
topology is a deployment artifact (the sender needs it to place
hashes; auditors need it to reproduce the q analysis).  This module
gives :class:`~repro.core.graph.DependenceGraph` a stable JSON form —
small, diffable, and versioned — plus file helpers.
"""

from __future__ import annotations

import json
from typing import TextIO, Union

from repro.core.graph import DependenceGraph
from repro.exceptions import GraphError

__all__ = ["graph_to_json", "graph_from_json", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def graph_to_json(graph: DependenceGraph) -> str:
    """Serialize a graph (validated first) to a canonical JSON string.

    Edges are sorted so equal graphs serialize identically — the
    output is usable as a golden file.
    """
    graph.validate()
    return json.dumps({
        "format": _FORMAT_VERSION,
        "n": graph.n,
        "root": graph.root,
        "edges": sorted(graph.edges()),
    }, separators=(",", ":"))


def graph_from_json(text: str) -> DependenceGraph:
    """Parse a graph serialized by :func:`graph_to_json`.

    Raises
    ------
    GraphError
        On malformed JSON, unsupported versions, or payloads violating
        Definition 1 (the graph is re-validated on load).
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise GraphError(f"malformed graph JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise GraphError("graph JSON must be an object")
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported graph format {version!r}")
    try:
        n = int(payload["n"])
        root = int(payload["root"])
        edges = [(int(i), int(j)) for i, j in payload["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph payload: {exc}") from exc
    return DependenceGraph.from_edges(n, root, edges)


def save_graph(graph: DependenceGraph,
               sink: Union[str, TextIO]) -> None:
    """Write a graph to a path or open text handle."""
    text = graph_to_json(graph)
    if isinstance(sink, str):
        with open(sink, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sink.write(text)


def load_graph(source: Union[str, TextIO]) -> DependenceGraph:
    """Read a graph written by :func:`save_graph`."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return graph_from_json(handle.read())
    return graph_from_json(source.read())
