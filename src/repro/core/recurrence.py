"""Generic recurrence solver for periodic dependence-graphs (Eq. 9).

For a scheme whose every packet ``P_i`` (signature-rooted indexing:
``P_1 = P_sign``, larger index = farther from the signature) relies on
the packets ``{P_{i-a} : a ∈ A}``, the paper evaluates authentication
probabilities by

    ``q_i = 1 - Π_{a∈A} [1 - (1-p)·q_{i-a}]``,  ``q_i = 1 ∀ i <= max(A)+1``

(Eq. 9; Eq. 8 is the instance ``A = {1, 2}``, whose stated initial
condition ``q_1 = q_2 = q_3 = 1`` pins the boundary semantics: a
branch whose target index clamps to ``P_sign`` — ``i - a <= 1`` —
always succeeds because the signature packet is assumed received, so
every packet with such a branch has ``q_i = 1``).

The recurrence treats the events "path through ``P_{i-a}`` survives"
as independent across ``a`` — exact for tree-like overlap, an
approximation otherwise; :mod:`repro.analysis.montecarlo` quantifies
the (small) gap.

The paper allows negative elements of ``A`` (a packet may store its
hash in packets *farther* from the signature).  The recurrence is then
no longer causal in ``i``; :func:`solve_recurrence` falls back to a
damped fixed-point iteration in that case.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import AnalysisError

__all__ = ["solve_recurrence", "q_min_from_profile", "RecurrenceResult"]

from dataclasses import dataclass


@dataclass(frozen=True)
class RecurrenceResult:
    """Solution of an Eq. 9 recurrence.

    Attributes
    ----------
    q:
        ``q[i-1]`` is the authentication probability of ``P_i``
        (signature-rooted indexing, ``P_1 = P_sign``).
    iterations:
        Fixed-point sweeps used (1 for causal offset sets).
    """

    q: List[float]
    iterations: int

    @property
    def q_min(self) -> float:
        """``min_i q_i`` — the paper's headline scheme metric."""
        return min(self.q)

    @property
    def n(self) -> int:
        """Block size."""
        return len(self.q)


def _validate(n: int, offsets: Sequence[int], p: float) -> List[int]:
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if not 0 <= p <= 1:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    cleaned = sorted(set(offsets))
    if not cleaned:
        raise AnalysisError("offset set A must be non-empty")
    if 0 in cleaned:
        raise AnalysisError("offset 0 would be a self-dependence")
    if not any(a > 0 for a in cleaned):
        raise AnalysisError("A needs at least one positive offset to reach P_sign")
    return cleaned


def solve_recurrence(n: int, offsets: Sequence[int], p: float,
                     max_sweeps: int = 10_000,
                     tolerance: float = 1e-12) -> RecurrenceResult:
    """Solve Eq. 9 for block size ``n``, offset set ``A`` and loss ``p``.

    Parameters
    ----------
    n:
        Block size (number of packets including ``P_sign``).
    offsets:
        The set ``A``: ``P_i`` relies on ``P_{i-a}`` for each
        ``a ∈ A`` (positive = toward the signature).  Offsets reaching
        before ``P_1`` are absorbed by the paper's boundary condition.
    p:
        iid packet loss rate.
    max_sweeps, tolerance:
        Fixed-point controls, used only when ``A`` has negative
        elements.

    Returns
    -------
    RecurrenceResult
        Per-packet probabilities and the sweep count.
    """
    a_set = _validate(n, offsets, p)
    survive = 1.0 - p
    boundary = max(a for a in a_set if a > 0)
    q = [1.0] * n  # q[i-1] = q_i; boundary condition fills i <= max(A).
    causal = all(a > 0 for a in a_set)
    sweeps = 0
    while True:
        sweeps += 1
        delta = 0.0
        for i in range(boundary + 1, n + 1):
            fail = 1.0
            for a in a_set:
                j = i - a
                if j <= 1:
                    # Clamped to (or directly at) P_sign, which is
                    # always received: that branch always succeeds.
                    fail = 0.0
                    break
                if j > n:
                    continue  # dependence outside the block: no help
                fail *= 1.0 - survive * q[j - 1]
            value = 1.0 - fail
            delta = max(delta, abs(value - q[i - 1]))
            q[i - 1] = value
        if causal or delta <= tolerance:
            return RecurrenceResult(q=q, iterations=sweeps)
        if sweeps >= max_sweeps:
            raise AnalysisError(
                f"recurrence failed to converge in {max_sweeps} sweeps "
                f"(residual {delta:.3g})"
            )


def q_min_from_profile(q: Sequence[float]) -> float:
    """``q_min`` of a per-packet probability profile."""
    if not q:
        raise AnalysisError("empty probability profile")
    bad = [value for value in q if not 0.0 <= value <= 1.0 + 1e-12]
    if bad:
        raise AnalysisError(f"probabilities outside [0, 1]: {bad[:3]}")
    return min(q)
