"""The dependence-graph of Definition 1.

A dependence-graph is an acyclic labeled digraph ``G = (V, E, L)`` over
the packets ``P_1 .. P_n`` of a block, with a distinguished signed root
``P_sign``, where an edge ``P_i -> P_j`` exists iff authenticating
``P_i`` lets the receiver authenticate ``P_j`` using information
carried by ``P_i`` — concretely, iff the hash of ``P_j`` is appended to
``P_i``.  Every vertex must be reachable from the root, and edge labels
are sequence-number differences ``l_ij = i - j``.

Vertex identity convention
--------------------------
Vertices are integers ``1..n`` in **send order** — ``P_1`` is the first
packet transmitted.  The root may be any vertex: ``1`` for schemes that
sign the first packet (Gennaro–Rohatgi), ``n`` for schemes that sign
the last (EMSS, augmented chain).  The paper's "reversed indexing" used
in Section 4 to make recurrences run from the signature outward is an
*analysis-side* relabeling and lives in :mod:`repro.analysis`; the
graph itself always speaks send order, because delays and buffer sizes
(Eq. 4 and the buffer formula) are defined in send order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

import networkx as nx

from repro.exceptions import GraphError

__all__ = ["DependenceGraph"]


class DependenceGraph:
    """An acyclic labeled dependence-graph over one block of packets.

    Parameters
    ----------
    n:
        Block size (number of packets / vertices).
    root:
        Send-order index of the signature packet ``P_sign``.

    Notes
    -----
    The class wraps a :class:`networkx.DiGraph` and enforces the
    Definition 1 invariants eagerly where cheap (vertex ranges, self
    loops, duplicate edges) and on demand via :meth:`validate` where
    global (acyclicity, root reachability).
    """

    def __init__(self, n: int, root: int) -> None:
        if n < 1:
            raise GraphError(f"block size must be >= 1, got {n}")
        if not 1 <= root <= n:
            raise GraphError(f"root {root} outside packet range [1, {n}]")
        self._n = n
        self._root = root
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(range(1, n + 1))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Block size (number of vertices)."""
        return self._n

    @property
    def root(self) -> int:
        """Send-order index of ``P_sign``."""
        return self._root

    @property
    def edge_count(self) -> int:
        """``|E|`` — total number of carried hashes in the block (Eq. 2)."""
        return self._graph.number_of_edges()

    @property
    def vertices(self) -> range:
        """All vertices, ``1..n``."""
        return range(1, self._n + 1)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(i, j)`` pairs (``P_i`` carries ``h(P_j)``)."""
        return iter(self._graph.edges())

    def label(self, i: int, j: int) -> int:
        """The label ``l_ij = i - j`` of an existing edge."""
        if not self._graph.has_edge(i, j):
            raise GraphError(f"no edge ({i}, {j})")
        return self._graph.edges[i, j]["label"]

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``P_i`` carries the hash of ``P_j``."""
        return self._graph.has_edge(i, j)

    def out_degree(self, i: int) -> int:
        """``∂(P_i)`` — number of hashes carried by ``P_i`` (Eq. 2)."""
        self._check_vertex(i)
        return self._graph.out_degree(i)

    def in_degree(self, i: int) -> int:
        """Number of packets carrying the hash of ``P_i``."""
        self._check_vertex(i)
        return self._graph.in_degree(i)

    def successors(self, i: int) -> List[int]:
        """Packets whose hashes ``P_i`` carries."""
        self._check_vertex(i)
        return sorted(self._graph.successors(i))

    def predecessors(self, i: int) -> List[int]:
        """Packets that carry the hash of ``P_i``."""
        self._check_vertex(i)
        return sorted(self._graph.predecessors(i))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_edge(self, i: int, j: int) -> None:
        """Add the dependence ``P_i -> P_j`` (``P_i`` carries ``h(P_j)``).

        The label ``i - j`` is attached automatically.  Self-loops and
        duplicate edges are rejected; edges *into* the root are allowed
        by Definition 1 but pointless and rejected here to catch scheme
        construction bugs early.
        """
        self._check_vertex(i)
        self._check_vertex(j)
        if i == j:
            raise GraphError(f"self-dependence on packet {i}")
        if j == self._root:
            raise GraphError("edges into the root are redundant: P_sign is signed")
        if self._graph.has_edge(i, j):
            raise GraphError(f"duplicate edge ({i}, {j})")
        self._graph.add_edge(i, j, label=i - j)

    def add_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Add many dependences at once."""
        for i, j in pairs:
            self.add_edge(i, j)

    def remove_edge(self, i: int, j: int) -> None:
        """Remove an existing dependence (used by the design toolkit)."""
        if not self._graph.has_edge(i, j):
            raise GraphError(f"no edge ({i}, {j}) to remove")
        self._graph.remove_edge(i, j)

    def copy(self) -> "DependenceGraph":
        """An independent deep copy."""
        clone = DependenceGraph(self._n, self._root)
        clone._graph.add_edges_from(self._graph.edges(data=True))
        return clone

    # ------------------------------------------------------------------
    # Validation (Definition 1 invariants)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all Definition 1 invariants; raise :class:`GraphError`.

        * the graph is acyclic,
        * every vertex is reachable from the root,
        * every label equals the index difference of its endpoints.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise GraphError(f"dependence-graph contains a cycle: {cycle}")
        unreachable = self.unreachable_vertices()
        if unreachable:
            raise GraphError(
                f"{len(unreachable)} vertices unreachable from root "
                f"{self._root}: {sorted(unreachable)[:10]}"
            )
        for i, j, data in self._graph.edges(data=True):
            if data.get("label") != i - j:
                raise GraphError(f"edge ({i}, {j}) has label {data.get('label')}")

    def is_valid(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except GraphError:
            return False
        return True

    def unreachable_vertices(self) -> Set[int]:
        """Vertices with no path from the root.

        Probabilistic constructions (Sec. 5) may legitimately leave a
        "negligibly small" set of such vertices; deterministic schemes
        must leave none.
        """
        reachable = set(nx.descendants(self._graph, self._root))
        reachable.add(self._root)
        return set(self.vertices) - reachable

    def topological_order(self) -> List[int]:
        """Vertices in a topological order of the dependence relation."""
        try:
            return list(nx.topological_sort(self._graph))
        except nx.NetworkXUnfeasible as exc:
            raise GraphError("graph is cyclic; no topological order") from exc

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._graph.copy()

    @classmethod
    def from_edges(cls, n: int, root: int,
                   edges: Iterable[Tuple[int, int]]) -> "DependenceGraph":
        """Build and validate a graph in one call."""
        graph = cls(n, root)
        graph.add_edges(edges)
        graph.validate()
        return graph

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependenceGraph):
            return NotImplemented
        return (self._n == other._n and self._root == other._root
                and set(self._graph.edges()) == set(other._graph.edges()))

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("DependenceGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return (f"DependenceGraph(n={self._n}, root={self._root}, "
                f"edges={self.edge_count})")

    def _check_vertex(self, i: int) -> None:
        if not 1 <= i <= self._n:
            raise GraphError(f"packet index {i} outside [1, {self._n}]")
