"""Rendering dependence-graphs for inspection (Figure 1 / Figure 2).

The paper's Figure 1 *shows* the dependence-graphs of the analyzed
schemes; offline we render them as Graphviz DOT (for later plotting)
and as compact ASCII adjacency listings (for terminals and test
output).
"""

from __future__ import annotations

from typing import List

from repro.core.graph import DependenceGraph
from repro.core.tesla_graph import TeslaDependenceGraph

__all__ = ["to_dot", "to_ascii", "tesla_to_dot", "edge_signature"]


def to_dot(graph: DependenceGraph, name: str = "dependence_graph") -> str:
    """Render a dependence-graph as Graphviz DOT.

    The root is drawn as a double circle; edge labels carry ``l_ij``.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for v in graph.vertices:
        shape = "doublecircle" if v == graph.root else "circle"
        lines.append(f'  P{v} [shape={shape}, label="P{v}"];')
    for i, j in sorted(graph.edges()):
        lines.append(f'  P{i} -> P{j} [label="{i - j}"];')
    lines.append("}")
    return "\n".join(lines)


def to_ascii(graph: DependenceGraph) -> str:
    """Compact per-vertex adjacency listing.

    One line per vertex with an asterisk on the root::

        P1* -> P2
        P2  -> P3
    """
    rows: List[str] = []
    width = len(str(graph.n))
    for v in graph.vertices:
        marker = "*" if v == graph.root else " "
        targets = graph.successors(v)
        arrow = ", ".join(f"P{t}" for t in targets) if targets else "(leaf)"
        rows.append(f"P{str(v).rjust(width)}{marker} -> {arrow}")
    return "\n".join(rows)


def tesla_to_dot(graph: TeslaDependenceGraph,
                 name: str = "tesla_graph") -> str:
    """DOT rendering of the extended TESLA graph (Figure 2)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;",
             '  bootstrap [shape=doublecircle, label="bootstrap"];']
    for m in graph.message_vertices():
        lines.append(f'  {m} [shape=circle];')
    for k in graph.key_vertices():
        lines.append(f'  "K{k.index}" [shape=box, label="{k}"];')
    for u, v in graph.edges():
        u_name = "bootstrap" if u == graph.root else (
            f'"K{u.index}"' if hasattr(u, "lag") else str(u))
        v_name = f'"K{v.index}"' if hasattr(v, "lag") else str(v)
        lines.append(f"  {u_name} -> {v_name};")
    lines.append("}")
    return "\n".join(lines)


def edge_signature(graph: DependenceGraph) -> List[int]:
    """Sorted multiset of edge labels — a cheap structural fingerprint.

    Two instances of the same periodic scheme at different block sizes
    share the same *set* of labels; tests use this to pin scheme
    construction.
    """
    return sorted(i - j for i, j in graph.edges())
