"""Topology bounds on ``λ_i`` (Eq. 1 of the paper).

``λ_i`` is the probability that at least one root→``P_i`` path is
fully received.  Its exact value needs the full topology; Eq. 1 brackets
it from the Θ-family alone:

* **worst-case topology** (paths maximally overlapping / nested): the
  shortest path dominates, so ``λ_i >= 1 - P{S(θ_short)}`` fails —
  rather, all-paths-fail probability is at most that of the shortest
  path alone, giving the *lower* bound
  ``λ_i >= 1 - min_x P{S(θ_x)} = (1-p)^{min|θ|}``;
* **best-case topology** (paths vertex-disjoint): failures are
  independent, so ``P{all fail} = Π_x P{S(θ_x)}`` and
  ``λ_i <= 1 - Π_x P{S(θ_x)}``.

Here ``P{S(θ)} = 1 - (1-p)^{|θ|}`` is the probability that the
interior θ suffers at least one loss under iid loss with rate ``p``.
The paper also states the cruder exponent form
``Π_x P{S(θ_x)} >= [min_x P{S(θ_x)}]^{|Θ|}``; both are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.paths import theta_sets
from repro.exceptions import AnalysisError

__all__ = ["LambdaBounds", "loss_event_probability", "lambda_bounds",
           "lambda_bounds_from_sizes"]


def loss_event_probability(theta_size: int, p: float) -> float:
    """``P{S(θ)}``: probability of >=1 loss among ``theta_size`` packets."""
    if theta_size < 0:
        raise AnalysisError(f"theta size must be >= 0, got {theta_size}")
    if not 0 <= p <= 1:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    return 1.0 - (1.0 - p) ** theta_size


@dataclass(frozen=True)
class LambdaBounds:
    """Bracketing of ``λ_i``.

    Attributes
    ----------
    lower:
        Worst-case-topology value (maximal path overlap).
    upper:
        Best-case-topology value (vertex-disjoint paths).
    exponent_lower:
        The paper's looser closed form
        ``1 - [min_x P{S(θ_x)}]^{|Θ|}`` — an upper bound on the
        best-case value, kept for fidelity with Eq. 1.
    path_count:
        ``|Θ(i)|`` used in the computation.
    """

    lower: float
    upper: float
    exponent_lower: float
    path_count: int

    def contains(self, value: float, tolerance: float = 1e-12) -> bool:
        """Whether ``value`` lies inside ``[lower, upper]``."""
        return self.lower - tolerance <= value <= self.upper + tolerance


def lambda_bounds_from_sizes(sizes: Sequence[int], p: float) -> LambdaBounds:
    """Eq. 1 bounds from the interior sizes ``|θ_1| <= |θ_2| <= ...``.

    Parameters
    ----------
    sizes:
        Interior vertex counts of each root-path (any order).
    p:
        iid loss rate.
    """
    if not sizes:
        return LambdaBounds(lower=0.0, upper=0.0, exponent_lower=0.0,
                            path_count=0)
    ordered = sorted(sizes)
    fail_probs = [loss_event_probability(s, p) for s in ordered]
    # Worst case: nested paths — the shortest alone decides.
    lower = 1.0 - fail_probs[0]
    # Best case: disjoint paths — failures independent.
    product = 1.0
    for fp in fail_probs:
        product *= fp
    upper = 1.0 - product
    exponent_lower = 1.0 - fail_probs[0] ** len(fail_probs)
    return LambdaBounds(lower=lower, upper=upper,
                        exponent_lower=exponent_lower,
                        path_count=len(fail_probs))


def lambda_bounds(graph: DependenceGraph, target: int, p: float,
                  path_limit: Optional[int] = 1000) -> LambdaBounds:
    """Eq. 1 bounds for ``P_target`` read directly from a graph.

    Parameters
    ----------
    path_limit:
        Cap on enumerated paths; with a cap the *upper* bound remains
        valid only as a lower estimate of the true best case, so prefer
        small graphs or generous limits when using the upper bound.
    """
    thetas = theta_sets(graph, target, limit=path_limit)
    return lambda_bounds_from_sizes([len(t) for t in thetas], p)
