"""Extended dependence-graph for TESLA (paper Section 3.2).

TESLA is MAC-based, not hash-chained, yet the paper shows it fits the
dependence-graph framework once each packet is split into **two**
vertices: a message vertex ``P_i`` and a key vertex ``K_{i,a}`` (the
MAC key for ``P_i``, carried by ``P_{i+a}`` with disclosure lag ``a``).
The signed root is the bootstrap packet.  Edges:

* bootstrap → every key vertex (the signed commitment authenticates the
  whole one-way chain);
* ``K_{j,a} → P_i`` for every ``j >= i`` — any *later* disclosed key
  derives the earlier ones by walking the one-way chain, so each key
  vertex authenticates every message at or before its index.

Unlike Definition 1 graphs this one carries no labels, and packet
verifiability needs the extra *security condition* ``ξ_i`` (the packet
must arrive before its key is disclosed), handled by
:mod:`repro.analysis.tesla`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

import networkx as nx

from repro.exceptions import GraphError

__all__ = ["MessageVertex", "KeyVertex", "BOOTSTRAP", "TeslaDependenceGraph"]


@dataclass(frozen=True, order=True)
class MessageVertex:
    """The message half of packet ``P_i``."""

    index: int

    def __str__(self) -> str:
        return f"P{self.index}"


@dataclass(frozen=True, order=True)
class KeyVertex:
    """The key half: MAC key of ``P_index``, disclosed in ``P_{index+lag}``."""

    index: int
    lag: int

    def __str__(self) -> str:
        return f"K({self.index},{self.lag})"


#: The signed bootstrap packet — root of every TESLA dependence-graph.
BOOTSTRAP = "bootstrap"

Vertex = Union[MessageVertex, KeyVertex, str]


class TeslaDependenceGraph:
    """TESLA's two-vertices-per-packet dependence-graph.

    Parameters
    ----------
    n:
        Number of data packets in the session (the paper uses the whole
        key-chain lifetime as one "block").
    lag:
        Key disclosure lag ``a``: the key for ``P_i`` rides in
        ``P_{i+a}``.  Keys whose carrier falls beyond ``n`` are modeled
        as carried by dedicated trailing disclosures, as in TESLA's
        final key flush.
    """

    def __init__(self, n: int, lag: int = 1) -> None:
        if n < 1:
            raise GraphError(f"need >= 1 packet, got {n}")
        if lag < 1:
            raise GraphError(f"disclosure lag must be >= 1, got {lag}")
        self.n = n
        self.lag = lag
        g = nx.DiGraph()
        g.add_node(BOOTSTRAP)
        messages = [MessageVertex(i) for i in range(1, n + 1)]
        keys = [KeyVertex(i, lag) for i in range(1, n + 1)]
        g.add_nodes_from(messages)
        g.add_nodes_from(keys)
        for key in keys:
            g.add_edge(BOOTSTRAP, key)
        # Any later key derives all earlier ones (one-way chain), so each
        # key vertex can authenticate every message at or before it.
        for key in keys:
            for message in messages[: key.index]:
                g.add_edge(key, message)
        self._graph = g

    @property
    def root(self) -> str:
        """The signed bootstrap packet."""
        return BOOTSTRAP

    @property
    def vertex_count(self) -> int:
        """``2n + 1`` vertices: messages, keys, bootstrap."""
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Total dependence relations."""
        return self._graph.number_of_edges()

    def message_vertices(self) -> List[MessageVertex]:
        """All message vertices in index order."""
        return [MessageVertex(i) for i in range(1, self.n + 1)]

    def key_vertices(self) -> List[KeyVertex]:
        """All key vertices in index order."""
        return [KeyVertex(i, self.lag) for i in range(1, self.n + 1)]

    def authenticating_keys(self, message_index: int) -> List[KeyVertex]:
        """Key vertices able to authenticate ``P_message_index``.

        These are ``{K_{j,a} : j >= message_index}`` — the basis of the
        paper's ``λ_i = 1 - p^{n+1-i}``.
        """
        if not 1 <= message_index <= self.n:
            raise GraphError(f"message index {message_index} outside [1, {self.n}]")
        return [KeyVertex(j, self.lag) for j in range(message_index, self.n + 1)]

    def carrier_packet(self, key: KeyVertex) -> int:
        """Send-order packet index that carries ``key`` on the wire.

        Carriers beyond the session (``> n``) represent the trailing
        key-flush packets TESLA sends after the last data packet.
        """
        return key.index + key.lag

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over dependence edges."""
        return iter(self._graph.edges())

    def validate(self) -> None:
        """Check acyclicity and root reachability (Definition 1 spirit)."""
        if not nx.is_directed_acyclic_graph(self._graph):
            raise GraphError("TESLA dependence-graph must be acyclic")
        reachable = set(nx.descendants(self._graph, BOOTSTRAP))
        reachable.add(BOOTSTRAP)
        missing = set(self._graph.nodes()) - reachable
        if missing:
            raise GraphError(f"{len(missing)} vertices unreachable from bootstrap")

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying digraph."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return f"TeslaDependenceGraph(n={self.n}, lag={self.lag})"
