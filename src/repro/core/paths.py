"""Path structure of a dependence-graph: Θ-sets and shortest paths.

Definition 2 of the paper introduces ``Θ(P_sign, P_i)``: the family of
vertex sets, one per root→``P_i`` path, such that ``P_i`` is verifiable
iff at least one path has *all* its vertices received.  Because
``P_sign`` is assumed always received and ``q_i`` conditions on ``P_i``
being received, the loss-relevant part of each path is its *interior*
— the vertices strictly between root and ``P_i``.  This module
enumerates those interiors and computes shortest-path depths, both of
which feed the Eq. 1 bounds and the exact small-graph evaluator.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional

import networkx as nx

from repro.core.graph import DependenceGraph
from repro.exceptions import GraphError

__all__ = [
    "theta_sets",
    "iter_theta_sets",
    "shortest_depth",
    "all_depths",
    "path_count",
    "exact_lambda",
]


def iter_theta_sets(graph: DependenceGraph, target: int,
                    limit: Optional[int] = None) -> Iterator[FrozenSet[int]]:
    """Yield path interiors ``θ_x(i)`` for every root→``target`` path.

    Parameters
    ----------
    graph:
        The dependence-graph.
    target:
        The packet ``P_i`` whose Θ-family is wanted.
    limit:
        Optional cap on the number of paths enumerated; path counts are
        exponential in dense graphs.
    """
    g = graph.to_networkx()
    if target == graph.root:
        yield frozenset()
        return
    count = 0
    for path in nx.all_simple_paths(g, graph.root, target):
        yield frozenset(path[1:-1])
        count += 1
        if limit is not None and count >= limit:
            return


def theta_sets(graph: DependenceGraph, target: int,
               limit: Optional[int] = None) -> List[FrozenSet[int]]:
    """The Θ-family as a list, minimal sets first (by size)."""
    return sorted(iter_theta_sets(graph, target, limit), key=len)


def path_count(graph: DependenceGraph, target: int,
               limit: int = 10_000_000) -> int:
    """Number of distinct root→``target`` paths (DAG dynamic program).

    Runs in ``O(V + E)`` on the DAG, unlike explicit enumeration.
    """
    order = graph.topological_order()
    counts: Dict[int, int] = {v: 0 for v in graph.vertices}
    counts[graph.root] = 1
    g = graph.to_networkx()
    for v in order:
        c = counts[v]
        if not c:
            continue
        for w in g.successors(v):
            counts[w] = min(counts[w] + c, limit)
    return counts[target]


def shortest_depth(graph: DependenceGraph, target: int) -> int:
    """``min|θ_x(i)|`` — interior vertex count of the shortest path.

    This is the quantity the paper's worst-case-topology bound uses:
    with maximally-overlapping paths, ``λ_i = (1-p)^{min|θ|}``.
    Raises :class:`GraphError` when ``target`` is unreachable.
    """
    g = graph.to_networkx()
    try:
        length = nx.shortest_path_length(g, graph.root, target)
    except nx.NetworkXNoPath as exc:
        raise GraphError(f"packet {target} unreachable from root") from exc
    return max(length - 1, 0)


def all_depths(graph: DependenceGraph) -> Dict[int, int]:
    """Shortest-path interior sizes for every reachable vertex at once."""
    g = graph.to_networkx()
    lengths = nx.single_source_shortest_path_length(g, graph.root)
    return {v: max(d - 1, 0) for v, d in lengths.items()}


def exact_lambda(graph: DependenceGraph, target: int, p: float,
                 limit: int = 18) -> float:
    """Exact ``λ_i`` under iid loss by inclusion–exclusion over paths.

    ``λ_i = P{some path fully received}``.  With path interiors
    ``θ_1..θ_k``, inclusion–exclusion gives

    ``λ_i = Σ_{∅≠T⊆[k]} (-1)^{|T|+1} (1-p)^{|∪_{x∈T} θ_x|}``.

    Exponential in the number of paths — intended for small graphs and
    as ground truth for the recurrence approximations and Monte Carlo.

    Parameters
    ----------
    limit:
        Safety cap on the number of paths: the evaluation enumerates
        ``2^paths − 1`` subsets, so 18 paths (~260k subsets) is already
        the practical ceiling.
    """
    if not 0 <= p <= 1:
        raise GraphError(f"loss probability must be in [0, 1], got {p}")
    # Enumerate lazily with a cap: dense graphs have exponentially many
    # paths and must fail fast, before enumeration, not after.
    thetas = theta_sets(graph, target, limit=limit + 1)
    if not thetas:
        return 0.0
    if len(thetas) > limit:
        raise GraphError(
            f"more than {limit} paths: inclusion-exclusion infeasible"
        )
    survive = 1.0 - p
    total = 0.0
    for r in range(1, len(thetas) + 1):
        for subset in itertools.combinations(thetas, r):
            union = frozenset().union(*subset)
            term = survive ** len(union)
            total += term if r % 2 == 1 else -term
    # Clamp tiny negative float noise.
    return min(max(total, 0.0), 1.0)
