"""Scheme metrics read off a dependence-graph.

The paper's central claim is that the four performance metrics of a
hash-chained scheme — communication overhead, receiver delay, and the
two receiver buffer sizes — are *graph properties*:

* overhead: mean out-degree ``m = |E|/n`` (Eq. 2) and mean bytes/packet
  ``d = (l_sign + l_hash·|E|)/n`` (Eq. 3, extended with retransmitted
  copies of ``P_sign``);
* deterministic receiver delay: Eq. 4 generalized to arbitrary graphs
  by a DAG dynamic program (a packet is verifiable as soon as *some*
  root-path has fully arrived);
* buffers: from edge labels ``l_ij = i - j`` — a positive label means
  the hash arrives *after* the packet it authenticates (message
  buffering), a negative label means the hash arrives *before*
  (hash buffering).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.graph import DependenceGraph
from repro.exceptions import GraphError

__all__ = [
    "mean_hashes_per_packet",
    "overhead_bytes_per_packet",
    "message_buffer_size",
    "hash_buffer_size",
    "deterministic_delays",
    "max_deterministic_delay",
    "GraphMetrics",
    "compute_metrics",
]


def mean_hashes_per_packet(graph: DependenceGraph) -> float:
    """Eq. 2: ``m = |E| / n``, the average out-degree."""
    return graph.edge_count / graph.n


def overhead_bytes_per_packet(graph: DependenceGraph, l_sign: int,
                              l_hash: int, sign_copies: int = 1) -> float:
    """Eq. 3: average authentication bytes carried per packet.

    Parameters
    ----------
    l_sign:
        Signature length in bytes.
    l_hash:
        Hash length in bytes.
    sign_copies:
        The paper transmits ``P_sign`` ``1/p_s`` times so it is received
        with high probability; each copy repeats the signature.
    """
    if l_sign < 0 or l_hash < 0:
        raise GraphError("lengths must be non-negative")
    if sign_copies < 1:
        raise GraphError(f"sign_copies must be >= 1, got {sign_copies}")
    return (sign_copies * l_sign + l_hash * graph.edge_count) / graph.n


def message_buffer_size(graph: DependenceGraph) -> int:
    """Worst-case message buffer in packets: ``max_e max(l_ij, 0)``.

    An edge ``i -> j`` with ``i > j`` means ``P_j`` is sent (and thus
    received, absent reordering) ``i - j`` slots before the hash that
    authenticates it; the receiver must hold the unverified message
    that long.
    """
    return max((i - j for i, j in graph.edges() if i > j), default=0)


def hash_buffer_size(graph: DependenceGraph) -> int:
    """Worst-case hash buffer in hashes: ``max_e max(j - i, 0)``.

    An edge ``i -> j`` with ``j > i`` means ``P_i`` carries a hash
    needed only when ``P_j`` arrives ``j - i`` slots later; the
    receiver stores the hash meanwhile.  Gennaro–Rohatgi's "1 hash
    buffer and no message buffer" (Sec. 3 example) falls out here.
    """
    return max((j - i for i, j in graph.edges() if j > i), default=0)


def deterministic_delays(graph: DependenceGraph) -> Dict[int, int]:
    """Loss-free verification delay of each packet, in packet slots.

    ``P_i`` becomes verifiable once every vertex of *some* root-path
    has arrived; with in-order loss-free delivery the earliest such
    time is ``f(i) = min over paths of max(send index on path)``, and
    the delay is ``f(i) - i``.  Computed by a DAG dynamic program:
    ``f(root) = root``; ``f(v) = max(min over predecessors u of f(u), v)``.

    For EMSS/AC (root = ``n``) this reproduces Eq. 4's
    ``t_d(P_i) = (n - i)·T_transmit``; for Gennaro–Rohatgi (root = 1,
    all edges forward) every delay is 0.
    """
    order = graph.topological_order()
    g = graph.to_networkx()
    best: Dict[int, float] = {v: math.inf for v in graph.vertices}
    best[graph.root] = graph.root
    for v in order:
        if best[v] is math.inf:
            continue
        for w in g.successors(v):
            candidate = max(best[v], w)
            if candidate < best[w]:
                best[w] = candidate
    delays = {}
    for v in graph.vertices:
        if best[v] is math.inf:
            raise GraphError(f"packet {v} unreachable from root")
        delays[v] = int(best[v]) - v
    return delays


def max_deterministic_delay(graph: DependenceGraph) -> int:
    """The worst per-packet deterministic delay, in packet slots."""
    return max(deterministic_delays(graph).values())


@dataclass(frozen=True)
class GraphMetrics:
    """All graph-derived metrics of a scheme instance in one record.

    Attributes mirror the paper's metric names; ``overhead_bytes`` uses
    the supplied ``l_sign``/``l_hash`` and ``delay_slots`` is in units
    of ``T_transmit``.
    """

    n: int
    edge_count: int
    mean_hashes: float
    overhead_bytes: float
    message_buffer: int
    hash_buffer: int
    delay_slots: int

    def as_row(self) -> Dict[str, float]:
        """Flatten to a dict for tabular reports."""
        return {
            "n": self.n,
            "edges": self.edge_count,
            "hashes/pkt": round(self.mean_hashes, 3),
            "bytes/pkt": round(self.overhead_bytes, 1),
            "msg buffer": self.message_buffer,
            "hash buffer": self.hash_buffer,
            "delay (slots)": self.delay_slots,
        }


def compute_metrics(graph: DependenceGraph, l_sign: int = 128,
                    l_hash: int = 16, sign_copies: int = 1) -> GraphMetrics:
    """Evaluate every metric of ``graph`` in one pass."""
    return GraphMetrics(
        n=graph.n,
        edge_count=graph.edge_count,
        mean_hashes=mean_hashes_per_packet(graph),
        overhead_bytes=overhead_bytes_per_packet(
            graph, l_sign, l_hash, sign_copies
        ),
        message_buffer=message_buffer_size(graph),
        hash_buffer=hash_buffer_size(graph),
        delay_slots=max_deterministic_delay(graph),
    )
