"""Path diversity: vertex-disjoint root-paths and the bounds they buy.

Section 3 of the paper: "if a large fraction of these paths go through
the same vertex, it is less probable that the authentication of P_i
can tolerate more loss due to a lower degree of diversity."  This
module makes "degree of diversity" a number: the maximum set of
internally vertex-disjoint paths from ``P_sign`` to ``P_i`` (Menger's
theorem: equal to the minimum interior vertex cut), computed by
max-flow on the standard node-split transform via networkx.

Disjoint paths buy a *guaranteed* λ floor: ``r`` internally disjoint
paths, each with at most ``L`` interior vertices, fail independently,
so ``λ_i >= 1 − (1 − (1−p)^L)^r`` — Eq. 1's best case restricted to
the disjoint subfamily, valid for any topology.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.core.graph import DependenceGraph
from repro.exceptions import AnalysisError, GraphError

__all__ = [
    "disjoint_path_count",
    "diversity_profile",
    "disjoint_paths",
    "diversity_lambda_floor",
]


def disjoint_path_count(graph: DependenceGraph, target: int) -> int:
    """Maximum internally vertex-disjoint root→``target`` paths.

    A direct root→target edge counts as one path (empty interior).
    """
    graph._check_vertex(target)
    if target == graph.root:
        raise GraphError("diversity of the root is undefined")
    g = graph.to_networkx()
    if not nx.has_path(g, graph.root, target):
        return 0
    return nx.connectivity.local_node_connectivity(g, graph.root, target)


def disjoint_paths(graph: DependenceGraph, target: int) -> List[List[int]]:
    """One maximum family of internally vertex-disjoint root-paths."""
    graph._check_vertex(target)
    if target == graph.root:
        raise GraphError("diversity of the root is undefined")
    g = graph.to_networkx()
    if not nx.has_path(g, graph.root, target):
        return []
    return [list(path) for path in
            nx.node_disjoint_paths(g, graph.root, target)]


def diversity_profile(graph: DependenceGraph) -> Dict[int, int]:
    """Disjoint-path count for every non-root vertex."""
    return {
        vertex: disjoint_path_count(graph, vertex)
        for vertex in graph.vertices if vertex != graph.root
    }


def diversity_lambda_floor(graph: DependenceGraph, target: int,
                           p: float) -> float:
    """Guaranteed λ floor from one maximum disjoint-path family.

    ``λ >= 1 − Π_x (1 − (1−p)^{|interior_x|})`` over the disjoint
    family — independence is *exact* here because the paths share no
    interior vertices.  A lower bound on the true λ (other,
    non-disjoint paths can only help).
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    family = disjoint_paths(graph, target)
    if not family:
        return 0.0
    fail_all = 1.0
    for path in family:
        interior = len(path) - 2
        fail_all *= 1.0 - (1.0 - p) ** interior
    return 1.0 - fail_all
