"""Dependence-graph core: Definition 1, metrics, bounds, recurrences.

This package is the paper's primary contribution made executable:
:class:`DependenceGraph` (Definition 1), Θ-set path machinery
(Definition 2), the metric extractors of Section 3 (Eq. 2–4 and the
buffer formula), the Eq. 1 topology bounds, the generic Eq. 9
recurrence solver, and the TESLA extension of Section 3.2.
"""

from repro.core.bounds import (
    LambdaBounds,
    lambda_bounds,
    lambda_bounds_from_sizes,
    loss_event_probability,
)
from repro.core.diversity import (
    disjoint_path_count,
    disjoint_paths,
    diversity_lambda_floor,
    diversity_profile,
)
from repro.core.graph import DependenceGraph
from repro.core.metrics import (
    GraphMetrics,
    compute_metrics,
    deterministic_delays,
    hash_buffer_size,
    max_deterministic_delay,
    mean_hashes_per_packet,
    message_buffer_size,
    overhead_bytes_per_packet,
)
from repro.core.paths import (
    all_depths,
    exact_lambda,
    iter_theta_sets,
    path_count,
    shortest_depth,
    theta_sets,
)
from repro.core.recurrence import (
    RecurrenceResult,
    q_min_from_profile,
    solve_recurrence,
)
from repro.core.render import edge_signature, tesla_to_dot, to_ascii, to_dot
from repro.core.serialize import (
    graph_from_json,
    graph_to_json,
    load_graph,
    save_graph,
)
from repro.core.tesla_graph import (
    BOOTSTRAP,
    KeyVertex,
    MessageVertex,
    TeslaDependenceGraph,
)

__all__ = [
    "DependenceGraph",
    "disjoint_path_count",
    "disjoint_paths",
    "diversity_lambda_floor",
    "diversity_profile",
    "GraphMetrics",
    "compute_metrics",
    "deterministic_delays",
    "hash_buffer_size",
    "max_deterministic_delay",
    "mean_hashes_per_packet",
    "message_buffer_size",
    "overhead_bytes_per_packet",
    "LambdaBounds",
    "lambda_bounds",
    "lambda_bounds_from_sizes",
    "loss_event_probability",
    "all_depths",
    "exact_lambda",
    "iter_theta_sets",
    "path_count",
    "shortest_depth",
    "theta_sets",
    "RecurrenceResult",
    "q_min_from_profile",
    "solve_recurrence",
    "edge_signature",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "save_graph",
    "tesla_to_dot",
    "to_ascii",
    "to_dot",
    "BOOTSTRAP",
    "KeyVertex",
    "MessageVertex",
    "TeslaDependenceGraph",
]
