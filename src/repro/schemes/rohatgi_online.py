"""Gennaro–Rohatgi's *online* chain: one-time signature chaining.

The paper analyzes the offline Gennaro–Rohatgi scheme (hash of the
next packet embedded in the current one), which requires knowing the
whole stream in advance.  The same 1997 paper proposed an **online**
variant for streams generated on the fly: each packet carries the
public key (here: its fingerprint) of a fresh one-time signature pair,
and is itself signed with the one-time key committed by its
predecessor; only the first packet needs an ordinary signature.

Dependence structure — and therefore the paper's entire loss analysis
— is identical to the offline chain (``q_i = (1-p)^{i-2}``, zero
receiver delay, the chain dies at the first loss).  What changes is
cost: a Lamport signature per packet is ~8 KB, the price paid for not
knowing the future.  The scheme earns its place here as the extreme
point of the Fig. 10 overhead axis and as a real consumer of the
:mod:`repro.crypto.lamport` substrate.

Wire mapping: ``extra`` carries ``fingerprint(pk_{i+1}) || ots_sig_i``;
the OTS signature covers the packet's :meth:`auth_bytes` *minus* the
signature itself (the fingerprint is covered, chaining trust forward).
The RSA/stub signature field is used only on ``P_1``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.lamport import LamportKeyPair
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError, SimulationError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["OnlineRohatgiScheme", "OnlineChainReceiver"]

_FINGERPRINT_SIZE = 32
_OTS_SIZE = 256 * 32
_HEADER = struct.Struct(">I")  # OTS signature length (0 on P_1)


def _packet_body(seq: int, block_id: int, payload: bytes,
                 next_fingerprint: bytes) -> bytes:
    return (struct.pack(">II", seq, block_id)
            + struct.pack(">I", len(payload)) + payload
            + next_fingerprint)


def _encode_extra(next_fingerprint: bytes, ots_signature: bytes) -> bytes:
    return _HEADER.pack(len(ots_signature)) + next_fingerprint + ots_signature


def _decode_extra(extra: bytes):
    try:
        (ots_length,) = _HEADER.unpack_from(extra, 0)
    except struct.error as exc:
        raise SimulationError(f"malformed online-chain packet: {exc}") from exc
    offset = _HEADER.size
    fingerprint = extra[offset:offset + _FINGERPRINT_SIZE]
    if len(fingerprint) != _FINGERPRINT_SIZE:
        raise SimulationError("truncated key fingerprint")
    offset += _FINGERPRINT_SIZE
    signature = extra[offset:offset + ots_length]
    if len(signature) != ots_length:
        raise SimulationError("truncated one-time signature")
    return fingerprint, signature


class OnlineRohatgiScheme(Scheme):
    """Forward chain of Lamport one-time signatures.

    Parameters
    ----------
    seed:
        Optional seed making the per-packet key pairs deterministic
        (tests); production use draws fresh randomness per pair.
    """

    def __init__(self, seed: Optional[bytes] = None) -> None:
        self.seed = seed

    @property
    def name(self) -> str:
        return "rohatgi-online"

    def build_graph(self, n: int) -> DependenceGraph:
        """Same dependence topology as the offline chain."""
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        graph = DependenceGraph(n, root=1)
        for i in range(1, n):
            graph.add_edge(i, i + 1)
        return graph

    def _keypair(self, index: int) -> LamportKeyPair:
        if self.seed is None:
            return LamportKeyPair.generate()
        return LamportKeyPair.generate(self.seed + index.to_bytes(4, "big"))

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: HashFunction = sha256,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Chain one-time keys forward; ordinary-sign only ``P_1``.

        Unlike the offline builder this needs *no* lookahead: each
        packet commits to the next key pair, generated on the spot.
        """
        if not payloads:
            raise SchemeParameterError("empty block")
        n = len(payloads)
        keypairs = [self._keypair(i) for i in range(n + 1)]
        packets: List[Packet] = []
        for index, payload in enumerate(payloads):
            seq = base_seq + index
            next_fingerprint = keypairs[index + 1].public_fingerprint()
            body = _packet_body(seq, block_id, bytes(payload),
                                next_fingerprint)
            if index == 0:
                extra = _encode_extra(next_fingerprint, b"")
                unsigned = Packet(seq=seq, block_id=block_id,
                                  payload=bytes(payload), extra=extra)
                packets.append(Packet(
                    seq=seq, block_id=block_id, payload=bytes(payload),
                    extra=extra,
                    signature=signer.sign(unsigned.auth_bytes()),
                ))
            else:
                ots_signature = keypairs[index].sign(body)
                packets.append(Packet(
                    seq=seq, block_id=block_id, payload=bytes(payload),
                    extra=_encode_extra(next_fingerprint, ots_signature),
                ))
        # Receivers need each packet's OTS public key to check its
        # signature against the committed fingerprint; ship the full
        # key material alongside (in reality appended to the packet —
        # the dominating overhead this scheme is famous for).
        self._last_keypairs = keypairs
        return packets

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Chain metrics with the one-time-signature overhead.

        One fingerprint + one Lamport signature per packet (the first
        packet swaps the OTS for the ordinary signature).
        """
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        per_packet = _FINGERPRINT_SIZE + _OTS_SIZE
        return GraphMetrics(
            n=n,
            edge_count=n - 1,
            mean_hashes=(n - 1) / n,
            overhead_bytes=per_packet + sign_copies * l_sign / n,
            message_buffer=0,
            hash_buffer=1,
            delay_slots=0,
        )


class OnlineChainReceiver:
    """Receiver for the online chain.

    Verification needs each packet's full one-time public key; in a
    deployment it rides in the packet (we keep it out of the simulated
    wire format for clarity and hand it over out of band here, since
    only its *size* matters for the paper's metrics).
    """

    def __init__(self, signer: Signer,
                 keypairs: Sequence[LamportKeyPair]) -> None:
        self._signer = signer
        self._keypairs = list(keypairs)
        self._expected_fingerprint: Optional[bytes] = None
        self._next_position = 0
        self.verified: Dict[int, bool] = {}

    def receive(self, packet: Packet) -> bool:
        """Verify the next packet in order; returns the verdict.

        The chain is strictly sequential: a lost (skipped) packet
        breaks everything after it, exactly as the paper says.
        """
        position = self._next_position
        fingerprint, ots_signature = _decode_extra(packet.extra)
        if position == 0:
            unsigned = Packet(seq=packet.seq, block_id=packet.block_id,
                              payload=packet.payload, extra=packet.extra)
            ok = (packet.signature is not None
                  and self._signer.verify(unsigned.auth_bytes(),
                                          packet.signature))
        elif self._expected_fingerprint is None:
            ok = False  # chain already broken
        else:
            keypair = self._keypairs[position]
            body = _packet_body(packet.seq, packet.block_id,
                                packet.payload, fingerprint)
            ok = (keypair.public_fingerprint() == self._expected_fingerprint
                  and keypair.verify(body, ots_signature))
        self.verified[packet.seq] = ok
        self._expected_fingerprint = fingerprint if ok else None
        self._next_position = position + 1
        return ok

    def verified_count(self) -> int:
        """Packets verified so far."""
        return sum(1 for ok in self.verified.values() if ok)
