"""The sign-each baseline (paper Sec. 1's "overkill solution").

Every packet carries its own digital signature: perfect loss tolerance
(``q_i ≡ 1``), zero delay, zero buffering — and a full ``l_sign`` of
overhead plus a signature verification on every packet.  It anchors
the expensive end of every comparison and is what signature
amortization exists to avoid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["SignEachScheme", "verify_sign_each_packet"]


class SignEachScheme(Scheme):
    """One signature per packet; no amortization at all."""

    individually_verifiable = True

    @property
    def name(self) -> str:
        return "sign-each"

    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """No dependences: every packet is its own ``P_sign``."""
        if n < 1:
            raise SchemeParameterError(f"block size must be >= 1, got {n}")
        return None

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: HashFunction = sha256,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Sign every payload independently."""
        if not payloads:
            raise SchemeParameterError("empty block")
        packets = []
        for index, payload in enumerate(payloads):
            unsigned = Packet(
                seq=base_seq + index,
                block_id=block_id,
                payload=bytes(payload),
            )
            packets.append(Packet(
                seq=unsigned.seq,
                block_id=unsigned.block_id,
                payload=unsigned.payload,
                signature=signer.sign(unsigned.auth_bytes()),
            ))
        return packets

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Analytic metrics: one signature per packet, nothing else."""
        if n < 1:
            raise SchemeParameterError(f"block size must be >= 1, got {n}")
        return GraphMetrics(
            n=n,
            edge_count=0,
            mean_hashes=0.0,
            overhead_bytes=float(l_sign),
            message_buffer=0,
            hash_buffer=0,
            delay_slots=0,
        )


def verify_sign_each_packet(packet: Packet, signer: Signer) -> bool:
    """Verify a sign-each packet in isolation."""
    if packet.signature is None:
        return False
    unsigned = Packet(
        seq=packet.seq,
        block_id=packet.block_id,
        payload=packet.payload,
        carried=packet.carried,
        extra=packet.extra,
    )
    return signer.verify(unsigned.auth_bytes(), packet.signature)
