"""Named scheme factory for CLIs, experiments and parameter searches.

Registers every scheme shipped with the library and parses compact spec
strings such as ``"emss(2,1)"``, ``"ac(3,3)"``, ``"rohatgi"``,
``"tesla(d=10,T=0.1)"`` or ``"offsets(1,5,9)"``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.exceptions import SchemeParameterError
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.base import Scheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.random_graph import RandomGraphScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.rohatgi_online import OnlineRohatgiScheme
from repro.schemes.saida import SaidaScheme
from repro.schemes.sign_each import SignEachScheme
from repro.schemes.tesla import TeslaParameters, TeslaScheme
from repro.schemes.wong_lam import WongLamScheme

__all__ = ["make_scheme", "available_schemes", "paper_comparison_schemes"]

_SPEC = re.compile(r"^(?P<name>[a-z-]+)(\((?P<args>[^)]*)\))?$")


def _parse_args(text: str) -> List[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def _make_emss(args: List[str]) -> Scheme:
    if len(args) != 2:
        raise SchemeParameterError("emss takes (m, d), e.g. emss(2,1)")
    return EmssScheme(m=int(args[0]), d=int(args[1]))


def _make_ac(args: List[str]) -> Scheme:
    if len(args) != 2:
        raise SchemeParameterError("ac takes (a, b), e.g. ac(3,3)")
    return AugmentedChainScheme(a=int(args[0]), b=int(args[1]))


def _make_offsets(args: List[str]) -> Scheme:
    if not args:
        raise SchemeParameterError("offsets takes >= 1 integer")
    return GenericOffsetScheme(tuple(int(a) for a in args))


def _make_random(args: List[str]) -> Scheme:
    if not args:
        raise SchemeParameterError("random takes (p [, seed])")
    seed = int(args[1]) if len(args) > 1 else None
    return RandomGraphScheme(edge_probability=float(args[0]), seed=seed)


def _make_saida(args):
    if len(args) > 1:
        raise SchemeParameterError("saida takes (k_fraction), e.g. saida(0.5)")
    fraction = float(args[0]) if args else 0.5
    return SaidaScheme(k_fraction=fraction)


def _make_tesla(args: List[str]) -> Scheme:
    keywords = {"d": 10, "T": 0.1, "n": 1024}
    for arg in args:
        if "=" not in arg:
            raise SchemeParameterError(
                f"tesla takes key=value args (d=, T=, n=): {arg!r}"
            )
        key, _, value = arg.partition("=")
        key = key.strip()
        if key not in keywords:
            raise SchemeParameterError(f"unknown tesla parameter {key!r}")
        keywords[key] = float(value) if key == "T" else int(value)
    parameters = TeslaParameters(
        interval=float(keywords["T"]), lag=int(keywords["d"]),
        chain_length=int(keywords["n"]),
    )
    return TeslaScheme(parameters)


_FACTORIES: Dict[str, Callable[[List[str]], Scheme]] = {
    "rohatgi": lambda args: RohatgiScheme(),
    "rohatgi-online": lambda args: OnlineRohatgiScheme(),
    "wong-lam": lambda args: WongLamScheme(),
    "sign-each": lambda args: SignEachScheme(),
    "emss": _make_emss,
    "ac": _make_ac,
    "offsets": _make_offsets,
    "random": _make_random,
    "tesla": _make_tesla,
    "saida": _make_saida,
}


def available_schemes() -> List[str]:
    """Names accepted by :func:`make_scheme`."""
    return sorted(_FACTORIES)


def make_scheme(spec: str) -> Scheme:
    """Instantiate a scheme from a compact spec string.

    Examples
    --------
    >>> make_scheme("emss(2,1)").name
    'emss(2,1)'
    >>> make_scheme("rohatgi").name
    'rohatgi'
    """
    match = _SPEC.match(spec.strip())
    if not match:
        raise SchemeParameterError(f"malformed scheme spec: {spec!r}")
    name = match.group("name")
    factory = _FACTORIES.get(name)
    if factory is None:
        raise SchemeParameterError(
            f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
        )
    return factory(_parse_args(match.group("args") or ""))


def paper_comparison_schemes() -> List[Scheme]:
    """The four schemes of the paper's Fig. 8 comparison."""
    return [
        RohatgiScheme(),
        TeslaScheme(),
        EmssScheme(2, 1),
        AugmentedChainScheme(3, 3),
    ]
