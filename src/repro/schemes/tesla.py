"""TESLA: timed efficient stream loss-tolerant authentication.

The MAC-based scheme of Perrig et al. that the paper shows to be "a
derivative of signature amortization" once cast as a dependence-graph
(Sec. 3.2).  This module provides three things:

* :class:`TeslaParameters` / :class:`TeslaScheme` — the scheme object
  used by registries, metrics and analysis (its dependence-graph is the
  extended two-vertex graph of :mod:`repro.core.tesla_graph`);
* :class:`TeslaSender` — emits MAC'd packets, discloses chain keys with
  lag ``d`` intervals, signs a bootstrap packet, flushes trailing keys;
* :class:`TeslaReceiver` — enforces the *security condition* (a packet
  is dropped if its key may already have been disclosed when it
  arrived, the paper's ``ξ_i``), buffers packets until their key
  arrives, authenticates disclosed keys against the signed commitment
  by walking the one-way chain, and verifies MACs.

The receiver's clock may differ from the sender's by a bounded offset;
the bound is part of the bootstrap handshake as in real TESLA.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.core.tesla_graph import TeslaDependenceGraph
from repro.crypto.keychain import KeyChain, KeyChainCommitment
from repro.crypto.mac import Mac, hmac_sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError, SimulationError
from repro.network.clock import Clock
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = [
    "TeslaParameters",
    "TeslaScheme",
    "TeslaSender",
    "TeslaReceiver",
    "TeslaVerdict",
    "BootstrapInfo",
]

_EXTRA = struct.Struct(">III")  # interval, disclosed_index, key_length
_BOOTSTRAP = struct.Struct(">dddI")  # t0, interval, max_offset, lag
_KEY_SIZE = 16


@dataclass(frozen=True)
class TeslaParameters:
    """Static TESLA session parameters.

    Attributes
    ----------
    interval:
        Time-slot duration in seconds.
    lag:
        Disclosure lag ``d`` in intervals; the disclosure delay is
        ``T_disclose = lag * interval``.
    chain_length:
        Number of MAC intervals covered by the key chain.
    t0:
        Sender-clock session start time.
    max_clock_offset:
        Bound on |receiver clock − sender clock| established at
        bootstrap; drives the security condition.
    """

    interval: float = 0.1
    lag: int = 10
    chain_length: int = 1024
    t0: float = 0.0
    max_clock_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SchemeParameterError(f"interval must be > 0, got {self.interval}")
        if self.lag < 1:
            raise SchemeParameterError(f"lag must be >= 1, got {self.lag}")
        if self.chain_length < 1:
            raise SchemeParameterError(
                f"chain length must be >= 1, got {self.chain_length}"
            )
        if self.max_clock_offset < 0:
            raise SchemeParameterError("clock offset bound must be >= 0")

    @property
    def disclosure_delay(self) -> float:
        """``T_disclose = lag * interval`` in seconds."""
        return self.lag * self.interval

    def interval_of(self, sender_time: float) -> int:
        """1-based interval index containing ``sender_time``."""
        if sender_time < self.t0:
            raise SimulationError(
                f"time {sender_time} precedes session start {self.t0}"
            )
        return int(math.floor((sender_time - self.t0) / self.interval)) + 1

    def disclosure_time(self, interval_index: int) -> float:
        """Sender-clock time at which ``K_interval_index`` is disclosed."""
        return self.t0 + (interval_index + self.lag - 1) * self.interval


class TeslaScheme(Scheme):
    """Scheme-registry wrapper around TESLA.

    TESLA has no per-block hash-chain graph; its extended graph comes
    from :class:`TeslaDependenceGraph` and its metrics are analytic.
    """

    def __init__(self, parameters: Optional[TeslaParameters] = None,
                 mac: Mac = hmac_sha256) -> None:
        self.parameters = parameters or TeslaParameters()
        self.mac = mac

    @property
    def name(self) -> str:
        p = self.parameters
        return f"tesla(d={p.lag},T={p.interval:g})"

    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """TESLA needs the extended graph; the plain one does not apply."""
        return None

    def build_extended_graph(self, n: int) -> TeslaDependenceGraph:
        """The Sec. 3.2 two-vertices-per-packet dependence-graph."""
        return TeslaDependenceGraph(n, lag=self.parameters.lag)

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Analytic metrics: MAC tag + disclosed key per packet.

        The bootstrap signature is amortized over ``n``; the receiver
        delay and message buffer equal the disclosure lag (in packet
        slots, at one packet per interval).
        """
        if n < 1:
            raise SchemeParameterError(f"need n >= 1, got {n}")
        per_packet = self.mac.tag_size + _KEY_SIZE
        return GraphMetrics(
            n=n,
            edge_count=0,
            mean_hashes=0.0,
            overhead_bytes=per_packet + sign_copies * l_sign / n,
            message_buffer=self.parameters.lag,
            hash_buffer=0,
            delay_slots=self.parameters.lag,
        )


@dataclass(frozen=True)
class BootstrapInfo:
    """Contents of the signed bootstrap packet."""

    commitment: bytes
    parameters: TeslaParameters

    def encode(self) -> bytes:
        p = self.parameters
        head = _BOOTSTRAP.pack(p.t0, p.interval, p.max_clock_offset, p.lag)
        return head + struct.pack(">I", p.chain_length) + self.commitment

    @classmethod
    def decode(cls, blob: bytes) -> "BootstrapInfo":
        try:
            t0, interval, max_offset, lag = _BOOTSTRAP.unpack_from(blob, 0)
            (chain_length,) = struct.unpack_from(">I", blob, _BOOTSTRAP.size)
        except struct.error as exc:
            raise SimulationError(f"malformed bootstrap packet: {exc}") from exc
        commitment = blob[_BOOTSTRAP.size + 4:]
        if len(commitment) != _KEY_SIZE:
            raise SimulationError("bootstrap commitment of unexpected size")
        parameters = TeslaParameters(
            interval=interval, lag=lag, chain_length=chain_length,
            t0=t0, max_clock_offset=max_offset,
        )
        return cls(commitment=commitment, parameters=parameters)


def _mac_input(seq: int, block_id: int, interval: int, payload: bytes) -> bytes:
    return struct.pack(">III", seq, block_id, interval) + payload


def _encode_extra(interval: int, tag: bytes, disclosed_index: int,
                  disclosed_key: bytes) -> bytes:
    return (_EXTRA.pack(interval, disclosed_index, len(disclosed_key))
            + tag + disclosed_key)


def _decode_extra(extra: bytes, tag_size: int):
    try:
        interval, disclosed_index, key_length = _EXTRA.unpack_from(extra, 0)
    except struct.error as exc:
        raise SimulationError(f"malformed TESLA packet: {exc}") from exc
    offset = _EXTRA.size
    tag = extra[offset:offset + tag_size]
    if len(tag) != tag_size:
        raise SimulationError("truncated TESLA MAC tag")
    offset += tag_size
    key = extra[offset:offset + key_length]
    if len(key) != key_length:
        raise SimulationError("truncated disclosed key")
    return interval, tag, disclosed_index, key


class TeslaSender:
    """Sender half of a TESLA session.

    Parameters
    ----------
    parameters:
        Session timing and chain configuration.
    signer:
        Signs the bootstrap packet only.
    mac:
        MAC algorithm for per-packet tags.
    seed:
        Optional fixed chain seed for reproducibility.
    """

    def __init__(self, parameters: TeslaParameters, signer: Signer,
                 mac: Mac = hmac_sha256, seed: Optional[bytes] = None) -> None:
        self.parameters = parameters
        self.signer = signer
        self.mac = mac
        self.chain = KeyChain(parameters.chain_length, seed=seed)
        self._next_seq = 1

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def bootstrap_packet(self, block_id: int = 0) -> Packet:
        """The signed packet carrying the commitment and timing info."""
        info = BootstrapInfo(commitment=self.chain.commitment,
                             parameters=self.parameters)
        unsigned = Packet(
            seq=self._take_seq(), block_id=block_id,
            payload=b"", extra=info.encode(),
        )
        return Packet(
            seq=unsigned.seq, block_id=unsigned.block_id,
            payload=unsigned.payload, extra=unsigned.extra,
            signature=self.signer.sign(unsigned.auth_bytes()),
        )

    def send(self, payload: bytes, sender_time: float,
             block_id: int = 0) -> Packet:
        """Emit a data packet at ``sender_time`` (sender clock)."""
        interval = self.parameters.interval_of(sender_time)
        if interval > self.parameters.chain_length:
            raise SimulationError(
                f"interval {interval} beyond chain length "
                f"{self.parameters.chain_length}"
            )
        seq = self._take_seq()
        tag = self.mac.tag(self.chain.mac_key(interval),
                           _mac_input(seq, block_id, interval, payload))
        disclosed_index = interval - self.parameters.lag
        if disclosed_index >= 1:
            disclosed = self.chain.key(disclosed_index)
        else:
            disclosed_index, disclosed = 0, b""
        return Packet(
            seq=seq, block_id=block_id, payload=payload,
            extra=_encode_extra(interval, tag, disclosed_index, disclosed),
            send_time=sender_time,
        )

    def flush_keys(self, last_interval: int, block_id: int = 0) -> List[Packet]:
        """Disclosure-only packets for keys still undisclosed at stream end.

        TESLA must eventually disclose every key used; these trailing
        packets carry no payload or MAC, only key disclosures, sent at
        their scheduled disclosure times.
        """
        if not 0 <= last_interval <= self.parameters.chain_length:
            raise SimulationError(f"bad last interval {last_interval}")
        packets = []
        for index in range(max(last_interval - self.parameters.lag + 1, 1),
                           last_interval + 1):
            when = self.parameters.disclosure_time(index)
            packets.append(Packet(
                seq=self._take_seq(), block_id=block_id, payload=b"",
                extra=_encode_extra(0, b"\x00" * self.mac.tag_size,
                                    index, self.chain.key(index)),
                send_time=when,
            ))
        return packets


@dataclass
class TeslaVerdict:
    """Outcome of one data packet at the receiver."""

    seq: int
    interval: int
    status: str  # "verified", "unsafe", "bad-mac", "pending", "bad-key"
    arrival_time: float = 0.0
    verified_time: Optional[float] = None

    @property
    def delay(self) -> Optional[float]:
        """Verification delay, when verified."""
        if self.verified_time is None:
            return None
        return self.verified_time - self.arrival_time


class TeslaReceiver:
    """Receiver half of a TESLA session.

    Built from the *bootstrap packet* (whose signature must verify).
    Feed arriving packets to :meth:`receive`; completed verdicts
    accumulate in :attr:`verdicts`.

    Parameters
    ----------
    bootstrap:
        The signed bootstrap packet.
    signer:
        Verifier for the bootstrap signature (public part suffices).
    clock_offset:
        Receiver clock minus sender clock; |offset| must be within the
        bootstrap's ``max_clock_offset`` for correctness.
    clock:
        Optional injectable :class:`~repro.network.clock.Clock` used
        when :meth:`receive` is called without an explicit
        ``receiver_time``.  The security condition depends on *when*
        a packet arrived; requiring either an explicit time or an
        injected clock guarantees a wall clock can never leak into the
        disclosure check (frozen virtual clocks must yield
        bit-identical transcripts).
    """

    def __init__(self, bootstrap: Packet, signer: Signer,
                 mac: Mac = hmac_sha256, clock_offset: float = 0.0,
                 clock: Optional["Clock"] = None) -> None:
        unsigned = Packet(seq=bootstrap.seq, block_id=bootstrap.block_id,
                          payload=bootstrap.payload, carried=bootstrap.carried,
                          extra=bootstrap.extra)
        if bootstrap.signature is None or not signer.verify(
                unsigned.auth_bytes(), bootstrap.signature):
            raise SimulationError("bootstrap packet signature invalid")
        info = BootstrapInfo.decode(bootstrap.extra)
        self.parameters = info.parameters
        self.mac = mac
        self.clock_offset = clock_offset
        self.clock = clock
        self._anchor = KeyChainCommitment(0, info.commitment)
        self._mac_keys: Dict[int, bytes] = {}
        self._highest_key = 0
        self._pending: Dict[int, List[Packet]] = {}
        self.verdicts: Dict[int, TeslaVerdict] = {}
        #: Re-received sequence numbers dropped (verdicts are final).
        self.replays_dropped = 0
        #: Disclosed keys rejected: failed authentication or an index
        #: beyond the committed chain.
        self.rejected_keys = 0
        #: The subset of ``rejected_keys`` stopped by the chain-length
        #: guard specifically (index beyond the commitment) — the
        #: late-join catch-up path must reject these *before* walking
        #: the chain, so the counter doubles as a CPU-exhaustion probe.
        self.guard_rejections = 0

    # ------------------------------------------------------------------

    def _sender_time_upper_bound(self, receiver_time: float) -> float:
        """Latest possible sender-clock time given the sync bound."""
        return receiver_time - self.clock_offset + self.parameters.max_clock_offset

    def _is_safe(self, interval: int, receiver_time: float) -> bool:
        """Security condition: the packet's key cannot be disclosed yet."""
        return (self._sender_time_upper_bound(receiver_time)
                < self.parameters.disclosure_time(interval))

    def _learn_key(self, index: int, chain_key: bytes) -> bool:
        """Authenticate a disclosed chain key and derive MAC keys."""
        if index > self.parameters.chain_length:
            # The commitment covers chain_length keys; a larger index
            # is forged, and authenticating it would walk the chain
            # attacker-many steps (CPU exhaustion) before failing.
            self.guard_rejections += 1
            return False
        if index <= self._highest_key:
            return True  # already known (or older than the anchor)
        if not self._anchor.authenticate(index, chain_key):
            return False
        # Derive every intermediate key by walking the one-way chain.
        current = chain_key
        for i in range(index, self._highest_key, -1):
            self._mac_keys.setdefault(i, KeyChain.derive_mac_key(current))
            current = KeyChain.walk_back(current, 1)
        self._highest_key = index
        return True

    def _flush_pending(self, receiver_time: float) -> None:
        ready = [i for i in self._pending if i <= self._highest_key]
        for interval in sorted(ready):
            key = self._mac_keys.get(interval)
            for packet in self._pending.pop(interval):
                verdict = self.verdicts[packet.seq]
                tag = self._tag_of(packet)
                message = _mac_input(packet.seq, packet.block_id, interval,
                                     packet.payload)
                payload_ok = key is not None and self.mac.verify(
                    key, message, tag)
                verdict.status = "verified" if payload_ok else "bad-mac"
                verdict.verified_time = receiver_time

    def _tag_of(self, packet: Packet) -> bytes:
        _, tag, _, _ = _decode_extra(packet.extra, self.mac.tag_size)
        return tag

    # ------------------------------------------------------------------

    def receive(self, packet: Packet,
                receiver_time: Optional[float] = None) -> None:
        """Process one arriving packet at local time ``receiver_time``.

        When ``receiver_time`` is omitted the injected ``clock`` is
        read instead; constructing the receiver without a clock and
        calling without a time is an error — there is deliberately no
        wall-clock fallback.
        """
        if receiver_time is None:
            if self.clock is None:
                raise SimulationError(
                    "receive() needs an explicit receiver_time or an "
                    "injected Clock; wall-clock defaults are forbidden")
            receiver_time = self.clock.now()
        interval, _tag, disclosed_index, disclosed_key = _decode_extra(
            packet.extra, self.mac.tag_size)
        if disclosed_index >= 1 and disclosed_key:
            if not self._learn_key(disclosed_index, disclosed_key):
                # A forged key never poisons state; data part still handled.
                self.rejected_keys += 1
                if interval == 0:
                    return
        if interval >= 1:
            if packet.seq in self.verdicts:
                # Verdicts are final: a replay or seq-colliding forgery
                # cannot overwrite or resurrect an earlier decision.
                self.replays_dropped += 1
            elif interval > self.parameters.chain_length:
                # No genuine sender can MAC past the committed chain,
                # and such a key is never disclosed — buffering would
                # pin the packet (and memory) forever.
                self.verdicts[packet.seq] = TeslaVerdict(
                    seq=packet.seq, interval=interval, status="bad-key",
                    arrival_time=receiver_time,
                )
            elif not self._is_safe(interval, receiver_time):
                self.verdicts[packet.seq] = TeslaVerdict(
                    seq=packet.seq, interval=interval, status="unsafe",
                    arrival_time=receiver_time,
                )
            else:
                self.verdicts[packet.seq] = TeslaVerdict(
                    seq=packet.seq, interval=interval, status="pending",
                    arrival_time=receiver_time,
                )
                self._pending.setdefault(interval, []).append(packet)
        self._flush_pending(receiver_time)

    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Packets buffered awaiting key disclosure (message buffer)."""
        return sum(len(v) for v in self._pending.values())

    def counts(self) -> Dict[str, int]:
        """Histogram of verdict statuses."""
        histogram: Dict[str, int] = {}
        for verdict in self.verdicts.values():
            histogram[verdict.status] = histogram.get(verdict.status, 0) + 1
        return histogram
