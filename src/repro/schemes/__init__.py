"""The multicast authentication schemes analyzed by the paper.

Each scheme exposes its dependence-graph (the object the paper's
framework analyzes) and real packetization: byte-level authenticated
packets that the generic receiver in :mod:`repro.simulation` verifies.
"""

from repro.schemes.augmented_chain import AugmentedChainScheme, ac_vertex_coordinates
from repro.schemes.base import Scheme, build_block
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.random_graph import RandomGraphScheme
from repro.schemes.registry import (
    available_schemes,
    make_scheme,
    paper_comparison_schemes,
)
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.rohatgi_online import OnlineChainReceiver, OnlineRohatgiScheme
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet
from repro.schemes.tesla import (
    BootstrapInfo,
    TeslaParameters,
    TeslaReceiver,
    TeslaScheme,
    TeslaSender,
    TeslaVerdict,
)
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet

__all__ = [
    "Scheme",
    "build_block",
    "AugmentedChainScheme",
    "ac_vertex_coordinates",
    "EmssScheme",
    "GenericOffsetScheme",
    "RandomGraphScheme",
    "RohatgiScheme",
    "OnlineChainReceiver",
    "OnlineRohatgiScheme",
    "SaidaReceiver",
    "SaidaScheme",
    "SignEachScheme",
    "verify_sign_each_packet",
    "BootstrapInfo",
    "TeslaParameters",
    "TeslaReceiver",
    "TeslaScheme",
    "TeslaSender",
    "TeslaVerdict",
    "WongLamScheme",
    "verify_wong_lam_packet",
    "available_schemes",
    "make_scheme",
    "paper_comparison_schemes",
]
