"""SAIDA-style erasure-coded authentication (extension baseline).

A contemporaneous alternative to hash chaining (Park, Chong & Siegel,
2002): instead of scattering hashes through the packet stream, compute
the block's full authentication information — every payload hash plus
one signature over them — and spread it across the block's packets
with an ``(n, k)`` Reed–Solomon erasure code.  *Any* ``k`` received
packets reconstruct the blob; each received payload is then checked
against its hash.

Properties that make it an illuminating contrast to the paper's
dependence-graph schemes:

* ``q_i`` is identical for every packet (zero variance — compare the
  Sec. 3 variance discussion): verifiability depends only on *how
  many* packets arrive, not *which*;
* burst loss at a given mean rate is no worse than iid loss — the
  code only counts erasures;
* the threshold ``k`` trades overhead (shares shrink as ``k`` grows)
  against loss tolerance (``n − k`` losses survivable) as a cliff, not
  a slope.

There is no dependence-graph: packets carry shares, not hashes, so
:meth:`SaidaScheme.build_graph` returns ``None`` and analysis lives in
:mod:`repro.analysis.saida`.
"""

from __future__ import annotations

import itertools
import math
import struct
from typing import Dict, List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.reed_solomon import rs_decode, rs_encode
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError, SimulationError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["SaidaScheme", "SaidaReceiver"]

_EXTRA = struct.Struct(">IIII")  # share index, k, n, signature length


def _blob(block_id: int, hashes: Sequence[bytes], signature: bytes) -> bytes:
    parts = [struct.pack(">II", block_id, len(hashes))]
    parts.extend(hashes)
    parts.append(signature)
    return b"".join(parts)


def _signed_portion(block_id: int, hashes: Sequence[bytes]) -> bytes:
    return struct.pack(">II", block_id, len(hashes)) + b"".join(hashes)


class SaidaScheme(Scheme):
    """``(n, k)`` erasure-coded signature amortization.

    Parameters
    ----------
    k_fraction:
        Reconstruction threshold as a fraction of the block: the block
        survives any loss rate below ``1 − k_fraction``.
    hash_function:
        Hash for per-payload digests.
    """

    def __init__(self, k_fraction: float = 0.5,
                 hash_function: HashFunction = sha256) -> None:
        if not 0.0 < k_fraction <= 1.0:
            raise SchemeParameterError(
                f"k fraction must be in (0, 1], got {k_fraction}"
            )
        self.k_fraction = k_fraction
        self.hash_function = hash_function

    @property
    def name(self) -> str:
        return f"saida(k={self.k_fraction:g})"

    def threshold(self, n: int) -> int:
        """The reconstruction threshold ``k`` for a block of ``n``."""
        return max(1, math.ceil(self.k_fraction * n))

    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """Erasure-coded: there is no hash-dependence structure."""
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        return None

    # ------------------------------------------------------------------

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: Optional[HashFunction] = None,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Hash every payload, sign the list, erasure-code, attach shares."""
        n = len(payloads)
        if n < 1:
            raise SchemeParameterError("empty block")
        if n > 255:
            raise SchemeParameterError("GF(256) limits blocks to 255 packets")
        hash_function = hash_function or self.hash_function
        k = self.threshold(n)
        hashes = [hash_function.digest(bytes(p)) for p in payloads]
        signature = signer.sign(_signed_portion(block_id, hashes))
        shares = rs_encode(_blob(block_id, hashes, signature), n, k)
        packets = []
        for index, payload in enumerate(payloads):
            extra = _EXTRA.pack(index, k, n, len(signature)) + shares[index]
            packets.append(Packet(
                seq=base_seq + index, block_id=block_id,
                payload=bytes(payload), extra=extra,
            ))
        return packets

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Analytic costs: one blob share per packet.

        ``sign_copies`` does not apply (the signature rides inside the
        erasure-coded blob).  Deterministic delay: the first packet
        waits for the ``k``-th arrival.
        """
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        k = self.threshold(n)
        blob = 8 + n * l_hash + l_sign  # header + hashes + signature
        share = math.ceil((blob + 4) / k)
        return GraphMetrics(
            n=n,
            edge_count=0,
            mean_hashes=0.0,
            overhead_bytes=float(share + _EXTRA.size),
            message_buffer=k - 1,
            hash_buffer=0,
            delay_slots=k - 1,
        )


#: Reconstruction attempts allowed per block, as a multiple of ``n``.
#: The subset search below is combinatorial in the number of polluted
#: shares, so without a budget a polluted block could be turned into
#: unbounded decode/signature checks; past the budget the block is
#: declared failed.  ``8n`` covers every ``k``-subset drawn from the
#: first ``k + 3`` shares at conformance block sizes — i.e. any three
#: polluted shares are survivable — while keeping the worst case a
#: small constant number of HMAC checks per block.
_MAX_ATTEMPT_FACTOR = 8


class SaidaReceiver:
    """Receiver: collect shares, reconstruct, verify, release.

    Feed arriving packets to :meth:`receive`; per-seq verdicts appear
    in :attr:`verified` (True/False) once decidable.  Packets of a
    block arriving after reconstruction verify immediately.

    The receiver is defensive against active attackers: the first
    share per ``(block, index)`` wins (duplicates counted in
    :attr:`duplicate_shares`), shares whose declared ``(k, n)`` shape
    or index is invalid or disagrees with the block's first share are
    dropped (:attr:`rejected_shares`), verdicts are final (a forged
    packet cannot overwrite a ``True``), and when reconstruction fails
    it searches ``k``-subsets of the shares in hand (growing-window
    order, failed subsets memoized) — polluted shares cannot poison a
    block while ``k`` clean ones arrived early enough — under a
    per-block attempt budget so pollution cannot become a CPU DoS.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256) -> None:
        self._signer = signer
        self._hash = hash_function
        self._pending: Dict[int, Dict[int, Packet]] = {}
        self._shapes: Dict[int, tuple] = {}
        self._attempts: Dict[int, int] = {}
        self._tried: Dict[int, set] = {}
        self._hash_lists: Dict[int, List[bytes]] = {}
        self._failed_blocks: set = set()
        self.verified: Dict[int, bool] = {}
        self.duplicate_shares = 0
        self.rejected_shares = 0

    # ------------------------------------------------------------------

    def _decode_attempt(self, block_id: int, shares: Sequence,
                        k: int, n: int) -> Optional[List[bytes]]:
        """One reconstruction attempt; the block's hashes, or ``None``."""
        try:
            blob = rs_decode(shares, k)
            blob_block, count = struct.unpack_from(">II", blob, 0)
            # Shape check *before* slicing: a garbage count from a
            # polluted decode must not drive a huge allocation.
            if blob_block != block_id or count != n:
                return None
            size = self._hash.digest_size
            offset = 8
            hashes = [blob[offset + i * size: offset + (i + 1) * size]
                      for i in range(count)]
            signature = blob[offset + count * size:]
        except Exception:
            return None
        if not self._signer.verify(_signed_portion(block_id, hashes),
                                   signature):
            return None
        return hashes

    def _candidate_subsets(self, items: Sequence, k: int):
        """``k``-subsets of ``items`` in growing-window order.

        Window ``w`` yields every subset whose last element is
        ``items[w - 1]``, so each subset appears exactly once and the
        cheap candidates (the first ``k`` shares, then subsets dodging
        one polluted share, then two, ...) come first.  Unlike a
        leave-one-out sweep this reaches *every* combination given
        budget, so any number of polluted shares is survivable as long
        as ``k`` clean ones arrived early enough in index order.
        """
        for window in range(k, len(items) + 1):
            last = items[window - 1]
            for head in itertools.combinations(items[:window - 1], k - 1):
                yield list(head) + [last]

    def _try_reconstruct(self, block_id: int, k: int, n: int) -> bool:
        shares_map = self._pending.get(block_id, {})
        if len(shares_map) < k:
            return False
        items = [(index, packet.extra[_EXTRA.size:])
                 for index, packet in sorted(shares_map.items())]
        budget = _MAX_ATTEMPT_FACTOR * n
        tried = self._tried.setdefault(block_id, set())
        exhausted = False
        for shares in self._candidate_subsets(items, k):
            attempts = self._attempts.get(block_id, 0)
            if attempts >= budget:
                self._failed_blocks.add(block_id)
                exhausted = True
                break
            key = tuple(index for index, _ in shares)
            # The budget is cumulative across arrivals; remembering
            # failed subsets keeps later arrivals from burning it on
            # combinations that already lost.
            if key in tried:
                continue
            tried.add(key)
            self._attempts[block_id] = attempts + 1
            hashes = self._decode_attempt(block_id, shares, k, n)
            if hashes is not None:
                self._hash_lists[block_id] = hashes
                return True
        if not exhausted and len(shares_map) >= n:
            # Every share arrived and no subset verifies: conclusive.
            self._failed_blocks.add(block_id)
        return False

    def _check_payload(self, packet: Packet, base_index: int) -> bool:
        hashes = self._hash_lists[packet.block_id]
        if not 0 <= base_index < len(hashes):
            return False
        return self._hash.digest(packet.payload) == hashes[base_index]

    def _finish_block(self, block_id: int) -> None:
        self._shapes.pop(block_id, None)
        self._attempts.pop(block_id, None)
        self._tried.pop(block_id, None)

    # ------------------------------------------------------------------

    def receive(self, packet: Packet, arrival_time: float = 0.0) -> None:
        """Process one arriving SAIDA packet."""
        try:
            index, k, n, signature_length = _EXTRA.unpack_from(
                packet.extra, 0)
        except struct.error as exc:
            raise SimulationError(f"malformed SAIDA packet: {exc}") from exc
        if packet.seq in self.verified:
            # Verdicts are final: replays and seq-colliding forgeries
            # cannot overwrite an earlier decision.
            self.duplicate_shares += 1
            return
        block_id = packet.block_id
        if block_id in self._hash_lists:
            self.verified[packet.seq] = self._check_payload(packet, index)
            return
        if block_id in self._failed_blocks:
            self.verified[packet.seq] = False
            return
        shape = self._shapes.get(block_id)
        if shape is None:
            if not (1 <= k <= n <= 255 and 0 <= index < n):
                self.rejected_shares += 1
                return
            self._shapes[block_id] = (k, n)
        else:
            if (k, n) != shape or not 0 <= index < n:
                self.rejected_shares += 1
                return
        shares_map = self._pending.setdefault(block_id, {})
        if index in shares_map:
            self.duplicate_shares += 1
            return
        shares_map[index] = packet
        if self._try_reconstruct(block_id, k, n):
            for held in self._pending.pop(block_id).values():
                held_index, _, _, _ = _EXTRA.unpack_from(held.extra, 0)
                self.verified[held.seq] = self._check_payload(held,
                                                              held_index)
            self._finish_block(block_id)
        elif block_id in self._failed_blocks:
            for held in self._pending.pop(block_id, {}).values():
                self.verified[held.seq] = False
            self._finish_block(block_id)

    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Packets buffered awaiting reconstruction."""
        return sum(len(v) for v in self._pending.values())

    def verified_count(self) -> int:
        """Packets verified so far."""
        return sum(1 for ok in self.verified.values() if ok)
