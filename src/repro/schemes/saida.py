"""SAIDA-style erasure-coded authentication (extension baseline).

A contemporaneous alternative to hash chaining (Park, Chong & Siegel,
2002): instead of scattering hashes through the packet stream, compute
the block's full authentication information — every payload hash plus
one signature over them — and spread it across the block's packets
with an ``(n, k)`` Reed–Solomon erasure code.  *Any* ``k`` received
packets reconstruct the blob; each received payload is then checked
against its hash.

Properties that make it an illuminating contrast to the paper's
dependence-graph schemes:

* ``q_i`` is identical for every packet (zero variance — compare the
  Sec. 3 variance discussion): verifiability depends only on *how
  many* packets arrive, not *which*;
* burst loss at a given mean rate is no worse than iid loss — the
  code only counts erasures;
* the threshold ``k`` trades overhead (shares shrink as ``k`` grows)
  against loss tolerance (``n − k`` losses survivable) as a cliff, not
  a slope.

There is no dependence-graph: packets carry shares, not hashes, so
:meth:`SaidaScheme.build_graph` returns ``None`` and analysis lives in
:mod:`repro.analysis.saida`.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.reed_solomon import rs_decode, rs_encode
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError, SimulationError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["SaidaScheme", "SaidaReceiver"]

_EXTRA = struct.Struct(">IIII")  # share index, k, n, signature length


def _blob(block_id: int, hashes: Sequence[bytes], signature: bytes) -> bytes:
    parts = [struct.pack(">II", block_id, len(hashes))]
    parts.extend(hashes)
    parts.append(signature)
    return b"".join(parts)


def _signed_portion(block_id: int, hashes: Sequence[bytes]) -> bytes:
    return struct.pack(">II", block_id, len(hashes)) + b"".join(hashes)


class SaidaScheme(Scheme):
    """``(n, k)`` erasure-coded signature amortization.

    Parameters
    ----------
    k_fraction:
        Reconstruction threshold as a fraction of the block: the block
        survives any loss rate below ``1 − k_fraction``.
    hash_function:
        Hash for per-payload digests.
    """

    def __init__(self, k_fraction: float = 0.5,
                 hash_function: HashFunction = sha256) -> None:
        if not 0.0 < k_fraction <= 1.0:
            raise SchemeParameterError(
                f"k fraction must be in (0, 1], got {k_fraction}"
            )
        self.k_fraction = k_fraction
        self.hash_function = hash_function

    @property
    def name(self) -> str:
        return f"saida(k={self.k_fraction:g})"

    def threshold(self, n: int) -> int:
        """The reconstruction threshold ``k`` for a block of ``n``."""
        return max(1, math.ceil(self.k_fraction * n))

    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """Erasure-coded: there is no hash-dependence structure."""
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        return None

    # ------------------------------------------------------------------

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: Optional[HashFunction] = None,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Hash every payload, sign the list, erasure-code, attach shares."""
        n = len(payloads)
        if n < 1:
            raise SchemeParameterError("empty block")
        if n > 255:
            raise SchemeParameterError("GF(256) limits blocks to 255 packets")
        hash_function = hash_function or self.hash_function
        k = self.threshold(n)
        hashes = [hash_function.digest(bytes(p)) for p in payloads]
        signature = signer.sign(_signed_portion(block_id, hashes))
        shares = rs_encode(_blob(block_id, hashes, signature), n, k)
        packets = []
        for index, payload in enumerate(payloads):
            extra = _EXTRA.pack(index, k, n, len(signature)) + shares[index]
            packets.append(Packet(
                seq=base_seq + index, block_id=block_id,
                payload=bytes(payload), extra=extra,
            ))
        return packets

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Analytic costs: one blob share per packet.

        ``sign_copies`` does not apply (the signature rides inside the
        erasure-coded blob).  Deterministic delay: the first packet
        waits for the ``k``-th arrival.
        """
        if n < 1:
            raise SchemeParameterError(f"block needs >= 1 packet, got {n}")
        k = self.threshold(n)
        blob = 8 + n * l_hash + l_sign  # header + hashes + signature
        share = math.ceil((blob + 4) / k)
        return GraphMetrics(
            n=n,
            edge_count=0,
            mean_hashes=0.0,
            overhead_bytes=float(share + _EXTRA.size),
            message_buffer=k - 1,
            hash_buffer=0,
            delay_slots=k - 1,
        )


class SaidaReceiver:
    """Receiver: collect shares, reconstruct, verify, release.

    Feed arriving packets to :meth:`receive`; per-seq verdicts appear
    in :attr:`verified` (True/False) once decidable.  Packets of a
    block arriving after reconstruction verify immediately.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256) -> None:
        self._signer = signer
        self._hash = hash_function
        self._pending: Dict[int, List[Packet]] = {}
        self._hash_lists: Dict[int, List[bytes]] = {}
        self._failed_blocks: set = set()
        self.verified: Dict[int, bool] = {}

    # ------------------------------------------------------------------

    def _try_reconstruct(self, block_id: int, k: int, n: int,
                         signature_length: int) -> bool:
        packets = self._pending.get(block_id, [])
        if len(packets) < k:
            return False
        shares = []
        for packet in packets:
            index, _, _, _ = _EXTRA.unpack_from(packet.extra, 0)
            shares.append((index, packet.extra[_EXTRA.size:]))
        try:
            blob = rs_decode(shares, k)
            header = struct.unpack_from(">II", blob, 0)
            blob_block, count = header
            size = self._hash.digest_size
            offset = 8
            hashes = [blob[offset + i * size: offset + (i + 1) * size]
                      for i in range(count)]
            signature = blob[offset + count * size:]
        except Exception:
            self._failed_blocks.add(block_id)
            return False
        if blob_block != block_id or count != n:
            self._failed_blocks.add(block_id)
            return False
        if not self._signer.verify(_signed_portion(block_id, hashes),
                                   signature):
            self._failed_blocks.add(block_id)
            return False
        self._hash_lists[block_id] = hashes
        return True

    def _check_payload(self, packet: Packet, base_index: int) -> bool:
        hashes = self._hash_lists[packet.block_id]
        if not 0 <= base_index < len(hashes):
            return False
        return self._hash.digest(packet.payload) == hashes[base_index]

    # ------------------------------------------------------------------

    def receive(self, packet: Packet, arrival_time: float = 0.0) -> None:
        """Process one arriving SAIDA packet."""
        try:
            index, k, n, signature_length = _EXTRA.unpack_from(
                packet.extra, 0)
        except struct.error as exc:
            raise SimulationError(f"malformed SAIDA packet: {exc}") from exc
        block_id = packet.block_id
        if block_id in self._hash_lists:
            self.verified[packet.seq] = self._check_payload(packet, index)
            return
        if block_id in self._failed_blocks:
            self.verified[packet.seq] = False
            return
        self._pending.setdefault(block_id, []).append(packet)
        if self._try_reconstruct(block_id, k, n, signature_length):
            for held in self._pending.pop(block_id):
                held_index, _, _, _ = _EXTRA.unpack_from(held.extra, 0)
                self.verified[held.seq] = self._check_payload(held,
                                                              held_index)
        elif block_id in self._failed_blocks:
            for held in self._pending.pop(block_id, []):
                self.verified[held.seq] = False

    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Packets buffered awaiting reconstruction."""
        return sum(len(v) for v in self._pending.values())

    def verified_count(self) -> int:
        """Packets verified so far."""
        return sum(1 for ok in self.verified.values() if ok)
