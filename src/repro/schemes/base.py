"""Scheme interface and the generic graph-driven block builder.

A *scheme* in this library is a recipe that (a) describes its
dependence-graph for any block size — the object the paper analyzes —
and (b) turns a block of payloads into real authenticated packets.
For every hash-chained scheme the second step is completely determined
by the first: walk the graph in reverse topological order, hash each
packet (payload + the hashes it carries), place each hash on the
packets that the graph says carry it, and sign the root.  That shared
machinery lives in :func:`build_block`; schemes that are not
hash-chained (sign-each, Wong–Lam, TESLA) override packetization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict, List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics, compute_metrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError
from repro.packets import Packet

__all__ = ["Scheme", "build_block"]


class Scheme(ABC):
    """A multicast authentication scheme.

    Subclasses define the dependence-graph topology; block
    packetization and metric extraction are inherited.

    Class attributes
    ----------------
    individually_verifiable:
        ``True`` for schemes where every received packet verifies on
        its own (sign-each, Wong–Lam): ``q_i ≡ 1`` and
        :meth:`build_graph` returns ``None``.
    """

    individually_verifiable: ClassVar[bool] = False

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier, e.g. ``"emss(2,1)"``."""

    @abstractmethod
    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """The dependence-graph for a block of ``n`` packets.

        Returns ``None`` for individually-verifiable schemes, which
        have no inter-packet dependences to draw.
        """

    # ------------------------------------------------------------------
    # Packetization
    # ------------------------------------------------------------------

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: HashFunction = sha256,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Build the authenticated packets for one block, in send order.

        The default implementation drives :func:`build_block` with this
        scheme's dependence-graph; individually-verifiable schemes must
        override.
        """
        graph = self.build_graph(len(payloads))
        if graph is None:
            raise SchemeParameterError(
                f"{self.name} does not use the generic block builder"
            )
        return build_block(graph, payloads, signer, hash_function,
                           block_id=block_id, base_seq=base_seq)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Graph-derived metrics for a block of size ``n`` (Sec. 3).

        Individually-verifiable schemes synthesize the equivalent
        record (their per-packet overhead is scheme-specific and
        handled by overrides).
        """
        graph = self.build_graph(n)
        if graph is None:
            raise SchemeParameterError(
                f"{self.name} must override metrics(): no dependence-graph"
            )
        return compute_metrics(graph, l_sign=l_sign, l_hash=l_hash,
                               sign_copies=sign_copies)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def build_block(graph: DependenceGraph, payloads: Sequence[bytes],
                signer: Signer, hash_function: HashFunction = sha256,
                block_id: int = 0, base_seq: int = 1) -> List[Packet]:
    """Materialize a dependence-graph into authenticated packets.

    Parameters
    ----------
    graph:
        Dependence-graph over ``n = len(payloads)`` vertices; vertex
        ``v`` corresponds to ``payloads[v-1]`` and send order is vertex
        order.
    payloads:
        Application data for each packet.
    signer:
        Signs the root packet's :meth:`~repro.packets.Packet.auth_bytes`.
    hash_function:
        Hash used for the carried packet hashes (``l_hash`` on the wire).
    block_id, base_seq:
        Stream placement: packets get sequence numbers
        ``base_seq .. base_seq + n - 1``.

    Returns
    -------
    list of Packet
        In send order.  Every packet's carried hashes match the graph's
        out-edges; the root packet is signed.

    Notes
    -----
    A packet's hash covers the hashes it carries, so hashes must be
    computed in *reverse* topological order of the dependence relation
    (leaves first).  The dependence-graph being acyclic guarantees this
    order exists; :meth:`DependenceGraph.topological_order` supplies it.
    """
    n = len(payloads)
    if n != graph.n:
        raise SchemeParameterError(
            f"graph is over {graph.n} packets but {n} payloads given"
        )
    graph.validate()
    order = graph.topological_order()
    hashes: Dict[int, bytes] = {}
    packets: Dict[int, Packet] = {}
    for vertex in reversed(order):
        carried = tuple(
            (base_seq + target - 1, hashes[target])
            for target in graph.successors(vertex)
        )
        packet = Packet(
            seq=base_seq + vertex - 1,
            block_id=block_id,
            payload=bytes(payloads[vertex - 1]),
            carried=carried,
        )
        if vertex == graph.root:
            packet = Packet(
                seq=packet.seq,
                block_id=packet.block_id,
                payload=packet.payload,
                carried=packet.carried,
                signature=signer.sign(packet.auth_bytes()),
            )
        hashes[vertex] = hash_function.digest(packet.auth_bytes())
        packets[vertex] = packet
    return [packets[v] for v in range(1, n + 1)]
