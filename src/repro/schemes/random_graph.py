"""Probabilistic dependence-graph construction (paper Sec. 5).

"A simple method is that for each of the vertices, we construct an
edge to each of the earlier vertices with a probability p_x."  With the
signature at the end of the block, "earlier" means closer to the
signature in verification order, i.e. *later* in send order: each data
packet's hash is stored in each later packet independently with
probability ``p_x``.

The paper notes that probabilistic placement may leave a "negligibly
small" set of vertices unreachable from the root; this builder
optionally repairs them with a direct root edge so the graph satisfies
Definition 1 (repairs are counted so experiments can report how rare
they are).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.graph import DependenceGraph
from repro.exceptions import SchemeParameterError
from repro.schemes.base import Scheme

__all__ = ["RandomGraphScheme"]


class RandomGraphScheme(Scheme):
    """Random edge placement with per-pair probability ``p_x``.

    Parameters
    ----------
    edge_probability:
        ``p_x`` — probability that packet ``s``'s hash is stored in any
        given later packet.
    seed:
        Seed for the private RNG (reproducible graphs).
    repair_unreachable:
        When ``True`` (default) attach unreachable vertices directly to
        the root; when ``False`` leave them (the graph then fails
        :meth:`DependenceGraph.validate`, matching the paper's caveat).
    max_span:
        Optional cap on the distance between a packet and the packets
        carrying its hash, bounding buffer sizes as a designer would.
    """

    def __init__(self, edge_probability: float, seed: Optional[int] = None,
                 repair_unreachable: bool = True,
                 max_span: Optional[int] = None) -> None:
        if not 0.0 < edge_probability <= 1.0:
            raise SchemeParameterError(
                f"edge probability must be in (0, 1], got {edge_probability}"
            )
        if max_span is not None and max_span < 1:
            raise SchemeParameterError(f"max span must be >= 1, got {max_span}")
        self.edge_probability = edge_probability
        self.seed = seed
        self.repair_unreachable = repair_unreachable
        self.max_span = max_span
        self.last_repairs = 0

    @property
    def name(self) -> str:
        return f"random(p={self.edge_probability:g})"

    def build_graph(self, n: int) -> DependenceGraph:
        """Sample a graph over ``n`` packets; vertex ``n`` signs."""
        if n < 2:
            raise SchemeParameterError(f"block needs >= 2 packets, got {n}")
        rng = random.Random(self.seed)
        graph = DependenceGraph(n, root=n)
        for s in range(1, n):
            upper = n if self.max_span is None else min(s + self.max_span, n)
            for carrier in range(s + 1, upper + 1):
                if rng.random() < self.edge_probability:
                    graph.add_edge(carrier, s)
        self.last_repairs = 0
        if self.repair_unreachable:
            for vertex in sorted(graph.unreachable_vertices(), reverse=True):
                if not graph.has_edge(n, vertex):
                    graph.add_edge(n, vertex)
                    self.last_repairs += 1
        return graph
