"""The Augmented Chain ``C_{a,b}`` of Golle and Modadugu.

Designed to survive a single burst of loss: a sparse first-level chain
where each chain packet's hash is stored in the next chain packet and
in the ``a``-th next, *augmented* by inserting ``b`` second-level
packets between consecutive chain packets, each linked to two other
packets.

Indexing follows the paper's Eq. 10 exactly.  In signature-rooted
("reversed") indexing — index 1 nearest the signature, the signature
packet itself kept as a separate root vertex — packet ``i`` maps to
``(x, y)`` with ``x = (i-1) // (b+1)`` and ``y = i mod (b+1)``:

* ``y == 0`` — a first-level chain packet (the ``x``-th), relying on
  chain packets ``x-1`` and ``x-a``; chain packets with ``x <= a``
  attach directly to the signature (the Eq. 10 boundary
  ``q(x,0) = 1 for x <= a``);
* ``y in 1..b-1`` — a second-level packet relying on ``(x, y+1)`` and
  the chain packet ``(x, 0)``;
* ``y == b`` — the last inserted packet of its group, relying on the
  two chain packets ``(x, 0)`` and ``(x+1, 0)``.

Dependences that point beyond the block (near the early-transmission
boundary) are dropped; a vertex left with no support attaches directly
to the root, mirroring the paper's unit boundary conditions.  Note
some second-level dependences are *anti-causal* in send order (a
packet's hash carried by an earlier-sent packet) — the paper
explicitly allows negative offsets, and the offline block builder
realizes them without difficulty.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import DependenceGraph
from repro.exceptions import SchemeParameterError
from repro.schemes.base import Scheme

__all__ = ["AugmentedChainScheme", "ac_vertex_coordinates"]


def ac_vertex_coordinates(i: int, b: int) -> Tuple[int, int]:
    """Map reversed index ``i`` (1-based) to Eq. 10 coordinates ``(x, y)``."""
    if i < 1:
        raise SchemeParameterError(f"reversed index must be >= 1, got {i}")
    return (i - 1) // (b + 1), i % (b + 1)


class AugmentedChainScheme(Scheme):
    """``C_{a,b}``: two-level augmented chain, signed at the block end.

    Parameters
    ----------
    a:
        First-level skip distance (``a >= 2``; ``a = 1`` would make the
        skip edge coincide with the chain edge).
    b:
        Second-level group size: ``b`` packets inserted per chain gap
        (Eq. 10's period is ``b + 1``).
    """

    def __init__(self, a: int = 3, b: int = 3) -> None:
        if a < 2:
            raise SchemeParameterError(f"augmented chain needs a >= 2, got {a}")
        if b < 1:
            raise SchemeParameterError(f"augmented chain needs b >= 1, got {b}")
        self.a = a
        self.b = b

    @property
    def name(self) -> str:
        return f"ac({self.a},{self.b})"

    def _dependencies(self, i: int, n_data: int) -> List[int]:
        """Reversed indices that packet ``i`` relies on.

        ``0`` denotes the signed root: dependences falling outside the
        block (the unit boundary conditions of Eq. 10 on both ends) are
        realized as direct links from the signature packet — see the
        boundary discussion in :mod:`repro.analysis.augmented_chain`.
        """
        a, b = self.a, self.b
        chains = n_data // (b + 1)
        x, y = ac_vertex_coordinates(i, b)

        def chain_ref(chain_x: int) -> int:
            if chain_x >= chains:
                return 0  # unit boundary: the root itself
            return (chain_x + 1) * (b + 1)

        if y == 0:
            if x <= a:
                return [0]  # boundary: directly signed region
            deps = [i - (b + 1), i - a * (b + 1)]
        elif y == b:
            deps = [chain_ref(x + 1), chain_ref(x)]
        else:
            upper = i + 1 if i + 1 <= n_data else 0
            deps = [upper, chain_ref(x)]
        return sorted({j for j in deps if 0 <= j <= n_data})

    def build_graph(self, n: int) -> DependenceGraph:
        """Graph over ``n`` packets; vertex ``n`` is the signature packet.

        Reversed index ``i`` corresponds to send-order vertex
        ``n - i``; the signature is sent last.
        """
        if n < 2:
            raise SchemeParameterError(f"block needs >= 2 packets, got {n}")
        n_data = n - 1
        graph = DependenceGraph(n, root=n)
        for i in range(1, n_data + 1):
            vertex = n - i
            for j in self._dependencies(i, n_data):
                carrier = n - j  # j == 0 maps to the root, vertex n
                if not graph.has_edge(carrier, vertex):
                    graph.add_edge(carrier, vertex)
        return graph

    def chain_packet_count(self, n: int) -> int:
        """Number of first-level chain packets in a block of size ``n``."""
        if n < 2:
            return 0
        return (n - 1) // (self.b + 1)

    @staticmethod
    def block_size_for_chain(chain_packets: int, b: int) -> int:
        """Block size ``n`` giving exactly ``chain_packets`` level-1 packets.

        Used by the Fig. 6 experiment, which holds the first level fixed
        while varying ``b`` (so ``n`` grows with ``b``).
        """
        if chain_packets < 1:
            raise SchemeParameterError("need >= 1 chain packet")
        return chain_packets * (b + 1) + 1
