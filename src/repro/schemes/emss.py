"""EMSS — Efficient Multi-chained Stream Signature (Perrig et al.).

``E_{m,d}`` in the paper's notation: each data packet stores its hash
in ``m`` later packets spaced ``d`` apart, and a signature packet sent
at the end of the block carries the hashes of the final packets plus
the block signature.  Loss tolerance comes from hash redundancy; the
price is receiver delay (verification waits for the signature packet)
and message buffering.

Send-order construction used here (block of ``n`` packets, the last
being the signature packet): data packet ``s`` (``1 <= s <= n-1``)
stores its hash in packets ``s + d, s + 2d, ..., s + m·d``; any target
beyond the last data packet is clamped to the signature packet, which
is how "the signature packet contains the hashes of the final few
packets".  In the paper's signature-rooted reversed indexing this is
exactly the offset set ``A = {d, 2d, ..., m·d}`` fed to Eq. 9.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import DependenceGraph
from repro.exceptions import SchemeParameterError
from repro.schemes.base import Scheme

__all__ = ["EmssScheme", "GenericOffsetScheme"]


class EmssScheme(Scheme):
    """``E_{m,d}``: hash stored in ``m`` later packets spaced ``d`` apart.

    Parameters
    ----------
    m:
        Number of copies of each packet's hash (out-redundancy).
    d:
        Spacing between consecutive copies; ``E_{2,1}`` is the
        canonical instance analyzed in the paper's Fig. 8/9.
    """

    def __init__(self, m: int = 2, d: int = 1) -> None:
        if m < 1:
            raise SchemeParameterError(f"EMSS needs m >= 1, got {m}")
        if d < 1:
            raise SchemeParameterError(f"EMSS needs d >= 1, got {d}")
        self.m = m
        self.d = d

    @property
    def name(self) -> str:
        return f"emss({self.m},{self.d})"

    @property
    def offsets(self) -> List[int]:
        """The reversed-index offset set ``A = {d, 2d, ..., m·d}``."""
        return [k * self.d for k in range(1, self.m + 1)]

    def build_graph(self, n: int) -> DependenceGraph:
        """Graph over ``n`` packets, vertex ``n`` the signature packet."""
        if n < 2:
            raise SchemeParameterError(
                f"EMSS block needs >= 2 packets (data + signature), got {n}"
            )
        graph = DependenceGraph(n, root=n)
        for s in range(1, n):
            targets = set()
            for k in range(1, self.m + 1):
                carrier = s + k * self.d
                targets.add(min(carrier, n))
            for carrier in targets:
                if carrier != s:
                    graph.add_edge(carrier, s)
        return graph


class GenericOffsetScheme(Scheme):
    """An arbitrary-offset periodic scheme (the general form of Eq. 9).

    Each data packet stores its hash in the packets at the given
    positive send-order distances; this subsumes EMSS and lets the
    design toolkit (Sec. 5) realize arbitrary offset sets ``A``.

    Parameters
    ----------
    offsets:
        Positive distances from a packet to the packets carrying its
        hash (equal to the reversed-index offset set ``A`` of Eq. 9).
    """

    def __init__(self, offsets: Tuple[int, ...]) -> None:
        cleaned = tuple(sorted(set(offsets)))
        if not cleaned:
            raise SchemeParameterError("offset set must be non-empty")
        if any(a < 1 for a in cleaned):
            raise SchemeParameterError(f"offsets must be positive: {offsets}")
        self.offsets = cleaned

    @property
    def name(self) -> str:
        inner = ",".join(str(a) for a in self.offsets)
        return f"offsets({inner})"

    def build_graph(self, n: int) -> DependenceGraph:
        """Graph over ``n`` packets, vertex ``n`` the signature packet."""
        if n < 2:
            raise SchemeParameterError(f"block needs >= 2 packets, got {n}")
        graph = DependenceGraph(n, root=n)
        for s in range(1, n):
            targets = {min(s + a, n) for a in self.offsets}
            for carrier in targets:
                if carrier != s:
                    graph.add_edge(carrier, s)
        return graph
