"""The Wong–Lam authentication tree (paper Sec. 2.2).

Packet hashes form the leaves of a Merkle tree whose root is signed;
every packet carries the root signature and its own authentication
path.  Each received packet verifies in isolation, so ``q_i ≡ 1``
regardless of loss, with zero receiver delay and no buffering — paid
for with ``l_sign + ceil(log2 n)·l_hash`` bytes of overhead on *every*
packet, the "high amount of overhead" the paper calls out.

There is no inter-packet dependence to draw, so :meth:`build_graph`
returns ``None`` and the metrics are computed analytically.
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Sequence

from repro.core.graph import DependenceGraph
from repro.core.metrics import GraphMetrics
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.signatures import Signer
from repro.exceptions import SchemeParameterError, VerificationError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["WongLamScheme", "encode_proof", "decode_proof", "verify_wong_lam_packet"]

_U16 = struct.Struct(">H")


def encode_proof(proof: MerkleProof, root: bytes, hash_size: int) -> bytes:
    """Serialize (root, authentication path) into a packet's ``extra``."""
    parts = [_U16.pack(len(root)), root, _U16.pack(len(proof.siblings))]
    for sibling, is_left in proof.siblings:
        if len(sibling) != hash_size:
            raise VerificationError("sibling hash of unexpected size")
        parts.append(b"\x01" if is_left else b"\x00")
        parts.append(sibling)
    return b"".join(parts)


def decode_proof(extra: bytes, leaf_index: int,
                 hash_size: int) -> "tuple[bytes, MerkleProof]":
    """Parse the ``extra`` blob written by :func:`encode_proof`."""
    try:
        (root_len,) = _U16.unpack_from(extra, 0)
        offset = 2
        root = extra[offset:offset + root_len]
        if len(root) != root_len:
            raise VerificationError("truncated Merkle root")
        offset += root_len
        (count,) = _U16.unpack_from(extra, offset)
        offset += 2
        siblings = []
        for _ in range(count):
            flag = extra[offset:offset + 1]
            if flag not in (b"\x00", b"\x01"):
                raise VerificationError("malformed sibling flag")
            offset += 1
            sibling = extra[offset:offset + hash_size]
            if len(sibling) != hash_size:
                raise VerificationError("truncated sibling hash")
            offset += hash_size
            siblings.append((sibling, flag == b"\x01"))
    except struct.error as exc:
        raise VerificationError(f"malformed proof blob: {exc}") from exc
    return root, MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings))


class WongLamScheme(Scheme):
    """Individually-verifiable tree-signed blocks.

    Parameters
    ----------
    hash_function:
        Hash used for tree nodes and proofs.
    """

    individually_verifiable = True

    def __init__(self, hash_function: HashFunction = sha256) -> None:
        self.hash_function = hash_function

    @property
    def name(self) -> str:
        return "wong-lam"

    def build_graph(self, n: int) -> Optional[DependenceGraph]:
        """No inter-packet dependences: every packet stands alone."""
        if n < 1:
            raise SchemeParameterError(f"block size must be >= 1, got {n}")
        return None

    def make_block(self, payloads: Sequence[bytes], signer: Signer,
                   hash_function: Optional[HashFunction] = None,
                   block_id: int = 0, base_seq: int = 1) -> List[Packet]:
        """Build packets each carrying the signed root and its own proof.

        The tree is built over the payloads; each packet's ``extra``
        holds the root and its authentication path, and every packet
        carries the root signature (``signature`` field), making it
        self-contained.
        """
        if not payloads:
            raise SchemeParameterError("empty block")
        hash_function = hash_function or self.hash_function
        tree = MerkleTree([bytes(p) for p in payloads], hash_function)
        signature = signer.sign(tree.root)
        packets = []
        for index, payload in enumerate(payloads):
            proof = tree.proof(index)
            extra = encode_proof(proof, tree.root, hash_function.digest_size)
            packets.append(Packet(
                seq=base_seq + index,
                block_id=block_id,
                payload=bytes(payload),
                carried=(),
                signature=signature,
                extra=extra,
            ))
        return packets

    def metrics(self, n: int, l_sign: int = 128, l_hash: int = 16,
                sign_copies: int = 1) -> GraphMetrics:
        """Analytic metrics: proof depth hashes + a signature per packet.

        ``sign_copies`` is ignored — every packet already repeats the
        signature.
        """
        if n < 1:
            raise SchemeParameterError(f"block size must be >= 1, got {n}")
        depth = math.ceil(math.log2(n)) if n > 1 else 0
        return GraphMetrics(
            n=n,
            edge_count=0,
            mean_hashes=float(depth),
            overhead_bytes=float(l_sign + depth * l_hash),
            message_buffer=0,
            hash_buffer=0,
            delay_slots=0,
        )


def verify_wong_lam_packet(packet: Packet, signer: Signer,
                           hash_function: HashFunction = sha256,
                           block_base_seq: int = 1) -> bool:
    """Receiver-side verification of a Wong–Lam packet in isolation.

    Checks the root signature, then the authentication path from the
    payload to the root.  Returns ``False`` on any mismatch or
    malformed proof.
    """
    if packet.signature is None:
        return False
    leaf_index = packet.seq - block_base_seq
    if leaf_index < 0:
        return False
    try:
        root, proof = decode_proof(packet.extra, leaf_index,
                                   hash_function.digest_size)
    except VerificationError:
        return False
    if not signer.verify(root, packet.signature):
        return False
    return MerkleTree.verify_static(packet.payload, proof, root, hash_function)
