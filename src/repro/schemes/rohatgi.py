"""The Gennaro–Rohatgi hash chain (paper Sec. 2.2, "Rohatgi's").

The first hash-chained stream authentication scheme: the stream is
processed off-line, each packet carries the hash of the *next* packet,
and the first packet is signed.  Verification is immediate (zero
receiver delay, one-hash buffer) but a single lost packet breaks the
chain for everything after it — the paper's Sec. 3 worked example,
``q_i = (1-p)^{i-2}`` and ``q_min = (1-p)^{n-2}``.
"""

from __future__ import annotations

from repro.core.graph import DependenceGraph
from repro.exceptions import SchemeParameterError
from repro.schemes.base import Scheme

__all__ = ["RohatgiScheme"]


class RohatgiScheme(Scheme):
    """Forward hash chain signed at the head.

    Dependence-graph: root ``P_1``; edges ``P_i -> P_{i+1}`` for
    ``i = 1 .. n-1`` (each packet carries the hash of its successor).
    """

    @property
    def name(self) -> str:
        return "rohatgi"

    def build_graph(self, n: int) -> DependenceGraph:
        if n < 1:
            raise SchemeParameterError(f"block size must be >= 1, got {n}")
        graph = DependenceGraph(n, root=1)
        for i in range(1, n):
            graph.add_edge(i, i + 1)
        return graph
