"""Augmented-chain analysis: the two-level recurrence of Eq. 10.

Packets are labeled ``(x, y)`` as in the paper (see
:mod:`repro.schemes.augmented_chain`): ``y = 0`` are the first-level
chain packets, ``y in 1..b`` the inserted second level.  The first
level is solved first —

    ``q(x,0) = 1 - [1-(1-p)q(x-1,0)][1-(1-p)q(x-a,0)]``,
    ``q(x,0) = 1`` for ``x <= a``

— and its values seed the second level:

    ``q(x,y) = 1 - [1-(1-p)q(x,y+1)][1-(1-p)q(x,0)]`` for ``1 <= y < b``,
    ``q(x,b) = 1 - [1-(1-p)q(x+1,0)][1-(1-p)q(x,0)]``.

Boundary handling at the far-from-signature end mirrors the paper's
near-signature condition: references past the last first-level packet
take ``q = 1``, i.e. those few earliest-sent packets are linked
directly to the signed packet (the block builder realizes exactly
that).  Any less generous treatment leaves a boundary tail of
single-link packets whose decaying ``q`` would dominate ``q_min`` at
every block size — an artifact that would contradict the paper's
Fig. 9 observation that AC tracks EMSS closely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import AnalysisError

__all__ = ["AcProfile", "q_profile", "q_min", "chain_count"]


@dataclass(frozen=True)
class AcProfile:
    """Solved Eq. 10 profile for one ``C_{a,b}`` instance.

    Attributes
    ----------
    chain:
        ``q(x, 0)`` by chain index ``x`` (0-based).
    inserted:
        ``q(x, y)`` keyed by ``(x, y)`` for ``y in 1..b``.
    """

    n: int
    a: int
    b: int
    p: float
    chain: List[float]
    inserted: Dict[Tuple[int, int], float]

    @property
    def q_min(self) -> float:
        """Minimum over every packet of the block."""
        values = list(self.chain) + list(self.inserted.values())
        if not values:
            raise AnalysisError("empty augmented-chain profile")
        return min(values)

    def q_of_reversed_index(self, i: int) -> float:
        """``q_i`` by the paper's reversed index (1 = nearest signature)."""
        x, y = (i - 1) // (self.b + 1), i % (self.b + 1)
        if y == 0:
            if x >= len(self.chain):
                raise AnalysisError(f"no chain packet {x} in this block")
            return self.chain[x]
        value = self.inserted.get((x, y))
        if value is None:
            raise AnalysisError(f"no packet ({x},{y}) in this block")
        return value


def chain_count(n: int, b: int) -> int:
    """First-level packets in a block of total size ``n`` (1 signature)."""
    if n < 2:
        raise AnalysisError(f"block needs >= 2 packets, got {n}")
    return (n - 1) // (b + 1)


def _combine(dependencies: List[Optional[float]], p: float) -> float:
    """``1 - Π (1 - (1-p)·q_dep)`` over the dependence branches.

    ``None`` marks a branch that clamps to the signed root (the unit
    boundary): the root is assumed received, so that branch succeeds
    with certainty and the whole product collapses to 0.
    """
    product = 1.0
    for q_dep in dependencies:
        if q_dep is None:
            return 1.0
        product *= 1.0 - (1.0 - p) * q_dep
    return 1.0 - product


def q_profile(n: int, a: int, b: int, p: float) -> AcProfile:
    """Solve Eq. 10 for ``C_{a,b}`` over a block of ``n`` packets.

    Parameters
    ----------
    n:
        Total block size (data packets plus the signature packet).
    a, b:
        Augmented-chain parameters (``a >= 2``, ``b >= 1``).
    p:
        iid loss rate.
    """
    if a < 2 or b < 1:
        raise AnalysisError(f"C_(a,b) needs a >= 2, b >= 1, got ({a}, {b})")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    n_data = n - 1
    chains = chain_count(n, b)
    if chains < 1:
        raise AnalysisError(
            f"block of {n} has no complete first-level packet for b={b}"
        )
    # ---- level 1: the chain --------------------------------------------
    chain: List[float] = []
    for x in range(chains):
        if x <= a:
            chain.append(1.0)
            continue
        chain.append(_combine([chain[x - 1], chain[x - a]], p))
    # ---- level 2: inserted packets -------------------------------------
    inserted: Dict[Tuple[int, int], float] = {}

    def chain_q(x: int) -> Optional[float]:
        """``q(x,0)``; ``None`` = reference past the block (root branch)."""
        if x >= chains:
            return None
        return chain[x]

    max_reversed = n_data
    for x in range((max_reversed // (b + 1)) + 1):
        # y = b first (needs only chain values), then downward.
        for y in range(b, 0, -1):
            i = x * (b + 1) + y
            if i > max_reversed:
                continue
            if y == b:
                dependencies = [chain_q(x + 1), chain_q(x)]
            else:
                upper = inserted.get((x, y + 1))
                if i + 1 > max_reversed:
                    upper = None  # top of the block: links to the root
                dependencies = [upper, chain_q(x)]
            inserted[(x, y)] = _combine(dependencies, p)
    return AcProfile(n=n, a=a, b=b, p=p, chain=chain, inserted=inserted)


def q_min(n: int, a: int, b: int, p: float) -> float:
    """``q_min`` of ``C_{a,b}`` (the Fig. 5/6 quantity)."""
    return q_profile(n, a, b, p).q_min
