"""TESLA analysis (paper Sec. 3.2 + Eq. 6/7 with the Gaussian model).

Verifiability of ``P_i`` factors into two terms:

* ``λ_i = 1 - p^{n+1-i}`` — the MAC key for ``P_i`` is recoverable
  from *any* of the later key disclosures (one-way chain), so only the
  loss of all ``n+1-i`` remaining disclosures defeats it;
* ``ξ_i = P{t_i <= T_disclose}`` — the security condition: the packet
  must arrive before its key is disclosed.  Under the Gaussian
  end-to-end delay ``N(μ, σ²)`` of Eq. 5, ``ξ = Φ((T_disclose−μ)/σ)``.

Hence ``q_i = (1 - p^{n+1-i})·Φ((T_d−μ)/σ)`` (Eq. 6) and
``q_min = (1-p)·Φ((T_d−μ)/σ)`` (Eq. 7, attained at ``i = n``).  The
paper parameterizes ``μ = α·T_disclose`` with ``0 <= α <= 1``.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import AnalysisError
from repro.network.delay import gaussian_cdf

__all__ = [
    "xi",
    "lambda_i",
    "q_i",
    "q_profile",
    "q_min",
    "q_min_alpha",
    "q_min_normalized",
]


def _check_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")


def xi(t_disclose: float, mu: float, sigma: float) -> float:
    """``ξ = Φ((T_disclose − μ)/σ)`` — the delay/security-condition term.

    ``sigma = 0`` degenerates to a step function.
    """
    if t_disclose <= 0:
        raise AnalysisError(f"T_disclose must be > 0, got {t_disclose}")
    if sigma < 0:
        raise AnalysisError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0.0:
        return 1.0 if t_disclose >= mu else 0.0
    return gaussian_cdf((t_disclose - mu) / sigma)


def lambda_i(i: int, n: int, p: float) -> float:
    """``λ_i = 1 - p^{n+1-i}``: some later disclosure arrives."""
    if not 1 <= i <= n:
        raise AnalysisError(f"packet index {i} outside [1, {n}]")
    _check_p(p)
    return 1.0 - p ** (n + 1 - i)


def q_i(i: int, n: int, p: float, t_disclose: float, mu: float,
        sigma: float) -> float:
    """Eq. 6: ``q_i = λ_i · ξ``."""
    return lambda_i(i, n, p) * xi(t_disclose, mu, sigma)


def q_profile(n: int, p: float, t_disclose: float, mu: float,
              sigma: float) -> List[float]:
    """``[q_1 .. q_n]`` over the chain lifetime."""
    if n < 1:
        raise AnalysisError(f"need n >= 1, got {n}")
    return [q_i(i, n, p, t_disclose, mu, sigma) for i in range(1, n + 1)]


def q_min(n: int, p: float, t_disclose: float, mu: float,
          sigma: float) -> float:
    """Eq. 7: ``q_min = (1-p)·ξ`` (the last packet is worst off).

    ``n`` only asserts well-formedness — the paper's ``q_min`` is
    block-size independent, which is why TESLA's Fig. 8/9 curves are
    flat in ``n``.
    """
    if n < 1:
        raise AnalysisError(f"need n >= 1, got {n}")
    _check_p(p)
    return (1.0 - p) * xi(t_disclose, mu, sigma)


def q_min_alpha(p: float, t_disclose: float, alpha: float,
                sigma: float) -> float:
    """``q_min`` with the paper's ``μ = α·T_disclose`` parameterization.

    The Fig. 3 surface is this function over ``(α, σ)``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise AnalysisError(f"alpha must be in [0, 1], got {alpha}")
    return q_min(1, p, t_disclose, alpha * t_disclose, sigma)


def q_min_normalized(p: float, ratio: float, alpha: float) -> float:
    """``q_min`` against the normalized delay ``T_disclose/σ`` (Fig. 4).

    With ``μ = α·T_disclose``, ``(T_d − μ)/σ = (1−α)·(T_d/σ)``, so the
    curve depends only on the ratio and ``α``.
    """
    _check_p(p)
    if ratio <= 0:
        raise AnalysisError(f"T_disclose/sigma must be > 0, got {ratio}")
    if not 0.0 <= alpha <= 1.0:
        raise AnalysisError(f"alpha must be in [0, 1], got {alpha}")
    return (1.0 - p) * gaussian_cdf((1.0 - alpha) * ratio)
