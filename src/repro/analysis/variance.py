"""Dispersion of the per-packet authentication probabilities.

Section 3 of the paper: "each packet in a block has a different
authentication probability and this may vary widely from packet to
packet ... Some schemes have a smaller variance of authentication
probability compared to others" — and the design remedy, "to minimize
the variance ... we should introduce more paths for a packet which is
farther away from P_sign".

This module turns that discussion into numbers: summary statistics of
a ``q_i`` profile, and a helper that builds the paper's remedy — a
*tapered* offset scheme that gives far packets more hash copies than
near ones — for comparison against uniform constructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.graph import DependenceGraph
from repro.exceptions import AnalysisError, SchemeParameterError

__all__ = ["ProfileStats", "profile_stats", "build_tapered_graph"]


@dataclass(frozen=True)
class ProfileStats:
    """Summary statistics of a per-packet ``q_i`` profile."""

    mean: float
    variance: float
    minimum: float
    maximum: float
    count: int

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    @property
    def spread(self) -> float:
        """``max − min`` — the crudest dispersion measure."""
        return self.maximum - self.minimum


def profile_stats(profile: Sequence[float]) -> ProfileStats:
    """Statistics of a ``q_i`` profile (any indexing convention).

    Parameters
    ----------
    profile:
        Per-packet probabilities; values outside [0, 1] are rejected.
    """
    values = list(profile)
    if not values:
        raise AnalysisError("empty probability profile")
    if any(not 0.0 <= v <= 1.0 + 1e-12 for v in values):
        raise AnalysisError("probabilities must lie in [0, 1]")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return ProfileStats(mean=mean, variance=variance, minimum=min(values),
                        maximum=max(values), count=len(values))


def build_tapered_graph(n: int, near_copies: int = 2, far_copies: int = 4,
                        taper_start: float = 0.5) -> DependenceGraph:
    """The paper's variance remedy as a concrete construction.

    Packets close to the signature (in verification order) get
    ``near_copies`` hash copies; packets beyond ``taper_start`` of the
    block get ``far_copies`` — "storing its hash in more locations in
    a dispersed manner" exactly where the paths are longest.

    Copies are placed at exponentially spread distances (1, 2, 4, …)
    toward the signature so added paths are diverse rather than
    overlapping.  Keep ``near_copies >= 2``: a single-copy region is a
    bare chain whose geometric collapse drags down every packet whose
    paths cross it, defeating the taper entirely.

    Parameters
    ----------
    n:
        Block size; vertex ``n`` signs (send-last convention).
    near_copies, far_copies:
        Hash copies for the near and far regions.
    taper_start:
        Fraction of the block (by distance from the signature) where
        the far region begins.
    """
    if n < 2:
        raise SchemeParameterError(f"block needs >= 2 packets, got {n}")
    if near_copies < 1 or far_copies < near_copies:
        raise SchemeParameterError(
            "need 1 <= near_copies <= far_copies"
        )
    if not 0.0 <= taper_start <= 1.0:
        raise SchemeParameterError(f"taper_start in [0, 1], got {taper_start}")
    graph = DependenceGraph(n, root=n)
    threshold = int((n - 1) * taper_start)
    for s in range(1, n):
        distance_from_sign = n - s  # send-order distance to the root
        copies = far_copies if distance_from_sign > threshold else near_copies
        targets = set()
        spread = 1
        for _ in range(copies):
            targets.add(min(s + spread, n))
            spread *= 2
        for carrier in targets:
            if carrier != s and not graph.has_edge(carrier, s):
                graph.add_edge(carrier, s)
    return graph
