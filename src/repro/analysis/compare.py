"""Cross-scheme comparison API (Figures 8, 9 and 10).

Dispatches each scheme to its analytic ``q_min`` — closed form for
Rohatgi and Wong–Lam, Eq. 9 recurrence for EMSS/offset schemes,
Eq. 10 for augmented chains, Eq. 7 for TESLA — and assembles the
paper's comparison sweeps over loss rate and block size plus the
overhead/delay table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis import saida as saida_analysis
from repro.analysis import tesla as tesla_analysis
from repro.core.recurrence import solve_recurrence
from repro.exceptions import AnalysisError
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.base import Scheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.saida import SaidaScheme
from repro.schemes.tesla import TeslaScheme

__all__ = [
    "TeslaEnvironment",
    "analytic_q_min",
    "sweep_loss",
    "sweep_block_size",
    "overhead_delay_table",
]


@dataclass(frozen=True)
class TeslaEnvironment:
    """Network context TESLA's ``q_min`` depends on (Eq. 7).

    Attributes
    ----------
    t_disclose:
        Key disclosure delay in seconds.
    mu, sigma:
        Mean and jitter of the Gaussian end-to-end delay.
    """

    t_disclose: float = 1.0
    mu: float = 0.2
    sigma: float = 0.1

    @property
    def xi(self) -> float:
        """The delay term ``Φ((T_d − μ)/σ)`` shared by every ``q_i``."""
        return tesla_analysis.xi(self.t_disclose, self.mu, self.sigma)


def analytic_q_min(scheme: Scheme, n: int, p: float,
                   tesla_env: Optional[TeslaEnvironment] = None) -> float:
    """``q_min`` of ``scheme`` at block size ``n`` and loss rate ``p``.

    Parameters
    ----------
    tesla_env:
        Required context for :class:`TeslaScheme`; a default
        environment (``T_d = 1 s, μ = 0.2 s, σ = 0.1 s``) is used when
        omitted.
    """
    if scheme.individually_verifiable:
        return 1.0
    if isinstance(scheme, RohatgiScheme):
        return rohatgi_analysis.q_min(n, p)
    if isinstance(scheme, EmssScheme):
        return emss_analysis.q_min(n, scheme.m, scheme.d, p)
    if isinstance(scheme, GenericOffsetScheme):
        return solve_recurrence(n, scheme.offsets, p).q_min
    if isinstance(scheme, AugmentedChainScheme):
        return ac_analysis.q_min(n, scheme.a, scheme.b, p)
    if isinstance(scheme, TeslaScheme):
        env = tesla_env if tesla_env is not None else TeslaEnvironment()
        return tesla_analysis.q_min(n, p, env.t_disclose, env.mu, env.sigma)
    if isinstance(scheme, SaidaScheme):
        return saida_analysis.q_min(n, scheme.threshold(n), p)
    raise AnalysisError(f"no analytic q_min available for {scheme.name}")


def sweep_loss(schemes: Sequence[Scheme], n: int, p_values: Sequence[float],
               tesla_env: Optional[TeslaEnvironment] = None
               ) -> Dict[str, List[float]]:
    """``q_min`` per scheme across loss rates (Fig. 8a)."""
    if not schemes:
        raise AnalysisError("no schemes given")
    return {
        scheme.name: [analytic_q_min(scheme, n, p, tesla_env)
                      for p in p_values]
        for scheme in schemes
    }


def sweep_block_size(schemes: Sequence[Scheme], n_values: Sequence[int],
                     p: float,
                     tesla_env: Optional[TeslaEnvironment] = None
                     ) -> Dict[str, List[float]]:
    """``q_min`` per scheme across block sizes (Fig. 8b / Fig. 9)."""
    if not schemes:
        raise AnalysisError("no schemes given")
    return {
        scheme.name: [analytic_q_min(scheme, n, p, tesla_env)
                      for n in n_values]
        for scheme in schemes
    }


def overhead_delay_table(schemes: Sequence[Scheme], n: int,
                         l_sign: int = 128, l_hash: int = 16
                         ) -> List[Dict[str, float]]:
    """Fig. 10's overhead-and-delay comparison, one row per scheme."""
    rows = []
    for scheme in schemes:
        metrics = scheme.metrics(n, l_sign=l_sign, l_hash=l_hash)
        row = {"scheme": scheme.name}
        row.update(metrics.as_row())
        rows.append(row)
    return rows
