"""Vectorized Monte Carlo estimation of ``q_i`` on arbitrary graphs.

The paper's recurrences assume path-failure independence; this module
computes the *exact* (up to sampling error) probabilities by simulating
loss directly on the dependence-graph: sample which packets arrive,
then propagate verifiability from the root through the received
subgraph.  All trials are evaluated simultaneously as numpy boolean
matrices, one topological sweep per graph, so blocks of 1000 packets
with tens of thousands of trials run in well under a second.

For TESLA's extended graph an analytic shortcut exists
(:func:`tesla_lambda_monte_carlo`) since only the key-disclosure
packets matter for ``λ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.graph import DependenceGraph
from repro.exceptions import AnalysisError

__all__ = [
    "McResult",
    "graph_monte_carlo",
    "graph_monte_carlo_model",
    "tesla_lambda_monte_carlo",
]


@dataclass(frozen=True)
class McResult:
    """Monte Carlo estimate of the per-packet ``q_i`` profile.

    Attributes
    ----------
    q:
        Estimated ``q_i`` per vertex (vertices never received in any
        trial are absent).
    received_counts:
        Number of trials in which each vertex was received (the
        denominator of each estimate — drives the standard error).
    trials:
        Trial count.
    """

    q: Dict[int, float]
    received_counts: Dict[int, int]
    trials: int

    @property
    def q_min(self) -> float:
        """Minimum estimated ``q_i``."""
        if not self.q:
            raise AnalysisError("no vertex was ever received")
        return min(self.q.values())

    def standard_error(self, vertex: int) -> float:
        """Binomial standard error of the estimate at ``vertex``."""
        count = self.received_counts.get(vertex, 0)
        if count == 0:
            raise AnalysisError(f"vertex {vertex} never received")
        q = self.q[vertex]
        return float(np.sqrt(max(q * (1.0 - q), 0.0) / count))


def graph_monte_carlo(graph: DependenceGraph, p: float, trials: int = 10_000,
                      seed: Optional[int] = None,
                      root_always_received: bool = True) -> McResult:
    """Estimate ``q_i = P{verifiable | received}`` for every vertex.

    Parameters
    ----------
    graph:
        Any valid dependence-graph.
    p:
        iid loss rate.
    trials:
        Independent loss patterns to sample.
    seed:
        RNG seed (numpy Generator).
    root_always_received:
        The paper's standing assumption about ``P_sign``; set ``False``
        to study what happens without signature protection.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    if trials < 1:
        raise AnalysisError(f"need >= 1 trial, got {trials}")
    graph.validate()
    n = graph.n
    rng = np.random.default_rng(seed)
    received = rng.random((trials, n + 1)) >= p  # column 0 unused
    received[:, 0] = False
    if root_always_received:
        received[:, graph.root] = True
    verifiable = np.zeros((trials, n + 1), dtype=bool)
    verifiable[:, graph.root] = received[:, graph.root]
    order = graph.topological_order()
    for vertex in order:
        if vertex == graph.root:
            continue
        predecessors = graph.predecessors(vertex)
        if not predecessors:
            continue  # unreachable vertices rejected by validate()
        support = verifiable[:, predecessors[0]].copy()
        for predecessor in predecessors[1:]:
            support |= verifiable[:, predecessor]
        verifiable[:, vertex] = received[:, vertex] & support
    q: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for vertex in graph.vertices:
        count = int(received[:, vertex].sum())
        if count == 0:
            continue
        counts[vertex] = count
        q[vertex] = float(verifiable[:, vertex].sum()) / count
    return McResult(q=q, received_counts=counts, trials=trials)


def graph_monte_carlo_model(graph: DependenceGraph, loss_model,
                            trials: int = 1000,
                            root_always_received: bool = True) -> McResult:
    """Monte Carlo ``q_i`` under an arbitrary :class:`LossModel`.

    Unlike :func:`graph_monte_carlo` (iid, fully vectorized), this
    variant draws each trial's loss pattern *sequentially* from the
    model — Gilbert–Elliott burst loss, trace replay, anything with the
    ``is_lost``/``reset`` interface — enabling the paper's named
    future-work extension to Markov loss.  The model is ``reset()``
    once up front, not per trial, so consecutive trials see fresh
    randomness from the same stream.
    """
    if trials < 1:
        raise AnalysisError(f"need >= 1 trial, got {trials}")
    graph.validate()
    n = graph.n
    loss_model.reset()
    received = np.empty((trials, n + 1), dtype=bool)
    received[:, 0] = False
    for trial in range(trials):
        for vertex in range(1, n + 1):
            received[trial, vertex] = not loss_model.is_lost()
    if root_always_received:
        received[:, graph.root] = True
    verifiable = np.zeros((trials, n + 1), dtype=bool)
    verifiable[:, graph.root] = received[:, graph.root]
    for vertex in graph.topological_order():
        if vertex == graph.root:
            continue
        predecessors = graph.predecessors(vertex)
        if not predecessors:
            continue
        support = verifiable[:, predecessors[0]].copy()
        for predecessor in predecessors[1:]:
            support |= verifiable[:, predecessor]
        verifiable[:, vertex] = received[:, vertex] & support
    q: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for vertex in graph.vertices:
        count = int(received[:, vertex].sum())
        if count == 0:
            continue
        counts[vertex] = count
        q[vertex] = float(verifiable[:, vertex].sum()) / count
    return McResult(q=q, received_counts=counts, trials=trials)


def tesla_lambda_monte_carlo(n: int, p: float, trials: int = 10_000,
                             seed: Optional[int] = None) -> McResult:
    """Monte Carlo for TESLA's ``λ_i`` (cross-checks ``1 - p^{n+1-i}``).

    Samples loss of the ``n`` key-disclosure opportunities; ``λ_i``
    holds when any disclosure ``j >= i`` arrives.  Message-packet loss
    is irrelevant to ``λ`` (it conditions on receipt), so only key
    carriers are sampled.
    """
    if n < 1:
        raise AnalysisError(f"need n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    key_received = rng.random((trials, n)) >= p
    # suffix_any[:, i] == any disclosure with index >= i+1 arrived.
    suffix_any = np.zeros((trials, n), dtype=bool)
    suffix_any[:, n - 1] = key_received[:, n - 1]
    for i in range(n - 2, -1, -1):
        suffix_any[:, i] = key_received[:, i] | suffix_any[:, i + 1]
    q = {i + 1: float(suffix_any[:, i].mean()) for i in range(n)}
    counts = {i + 1: trials for i in range(n)}
    return McResult(q=q, received_counts=counts, trials=trials)
