"""Vectorized Monte Carlo estimation of ``q_i`` on arbitrary graphs.

The paper's recurrences assume path-failure independence; this module
computes the *exact* (up to sampling error) probabilities by simulating
loss directly on the dependence-graph: sample which packets arrive,
then propagate verifiability from the root through the received
subgraph.  All trials are evaluated simultaneously as numpy boolean
matrices, one topological sweep per graph, so blocks of 1000 packets
with tens of thousands of trials run in well under a second.

Results are :class:`McResult` objects that carry the raw received /
verified counts, so estimates from independent shards merge *exactly*
(:meth:`McResult.merge`) — the contract the process-pool engine in
:mod:`repro.parallel` builds on.

For TESLA's extended graph an analytic shortcut exists
(:func:`tesla_lambda_monte_carlo`) since only the key-disclosure
packets matter for ``λ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.graph import DependenceGraph
from repro.exceptions import AnalysisError
from repro.obs.registry import get_registry
from repro.obs.spans import span

__all__ = [
    "McResult",
    "graph_monte_carlo",
    "graph_monte_carlo_reference",
    "graph_monte_carlo_model",
    "tesla_lambda_monte_carlo",
]


@dataclass(frozen=True)
class McResult:
    """Monte Carlo estimate of the per-packet ``q_i`` profile.

    Attributes
    ----------
    q:
        Estimated ``q_i`` per vertex (vertices never received in any
        trial are absent).
    received_counts:
        Number of trials in which each vertex was received (the
        denominator of each estimate — drives the standard error).
    trials:
        Trial count.
    verified_counts:
        Number of trials in which each vertex was received *and*
        verified (the numerator of each estimate).  Kept as integers so
        shard results merge exactly; reconstructed from ``q`` when a
        result predating this field is merged.
    """

    q: Dict[int, float]
    received_counts: Dict[int, int]
    trials: int
    verified_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def q_min(self) -> float:
        """Minimum estimated ``q_i``."""
        if not self.q:
            raise AnalysisError("no vertex was ever received")
        return min(self.q.values())

    def standard_error(self, vertex: int) -> float:
        """Binomial standard error of the estimate at ``vertex``."""
        count = self.received_counts.get(vertex, 0)
        if count == 0:
            raise AnalysisError(f"vertex {vertex} never received")
        q = self.q[vertex]
        return float(np.sqrt(max(q * (1.0 - q), 0.0) / count))

    def _verified(self, vertex: int) -> int:
        """Integer verified count at ``vertex`` (reconstructed if absent)."""
        if vertex in self.verified_counts:
            return self.verified_counts[vertex]
        # q = verified / count is exact in double precision for any
        # realistic trial count, so rounding recovers the integer.
        return int(round(self.q[vertex] * self.received_counts[vertex]))

    def merge(self, other: "McResult") -> "McResult":
        """Exact merge of two independent shards.

        Received and verified counts sum per vertex; each merged ``q_i``
        is the exact ratio of the summed integers, so merging is
        associative and commutative bit-for-bit — the property the
        deterministic parallel engine relies on.
        """
        if not isinstance(other, McResult):
            raise AnalysisError(f"cannot merge McResult with {type(other)!r}")
        counts: Dict[int, int] = dict(self.received_counts)
        verified: Dict[int, int] = {
            vertex: self._verified(vertex) for vertex in self.received_counts
        }
        for vertex, count in other.received_counts.items():
            counts[vertex] = counts.get(vertex, 0) + count
            verified[vertex] = verified.get(vertex, 0) + other._verified(vertex)
        q = {vertex: verified[vertex] / counts[vertex]
             for vertex in sorted(counts)}
        return McResult(
            q=q,
            received_counts={vertex: counts[vertex] for vertex in sorted(counts)},
            trials=self.trials + other.trials,
            verified_counts={vertex: verified[vertex]
                             for vertex in sorted(counts)},
        )

    @staticmethod
    def merge_all(results: Iterable["McResult"]) -> "McResult":
        """Fold :meth:`merge` over an iterable of shard results."""
        merged: Optional[McResult] = None
        for result in results:
            merged = result if merged is None else merged.merge(result)
        if merged is None:
            raise AnalysisError("nothing to merge")
        return merged


def _tally(graph: DependenceGraph, received: np.ndarray,
           verifiable: np.ndarray, trials: int) -> McResult:
    """Fold the per-trial boolean matrices into an :class:`McResult`."""
    q: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    verified: Dict[int, int] = {}
    for vertex in graph.vertices:
        count = int(received[:, vertex].sum())
        if count == 0:
            continue
        counts[vertex] = count
        verified[vertex] = int(verifiable[:, vertex].sum())
        q[vertex] = verified[vertex] / count
    return McResult(q=q, received_counts=counts, trials=trials,
                    verified_counts=verified)


def _propagate(graph: DependenceGraph, received: np.ndarray) -> np.ndarray:
    """Vectorized verifiability sweep: one column gather per vertex.

    Gathers every predecessor column at once and reduces with
    ``np.logical_or.reduce`` — no Python-level loop over predecessors.
    """
    trials = received.shape[0]
    verifiable = np.zeros((trials, graph.n + 1), dtype=bool)
    verifiable[:, graph.root] = received[:, graph.root]
    for vertex in graph.topological_order():
        if vertex == graph.root:
            continue
        predecessors = graph.predecessors(vertex)
        if not predecessors:
            continue  # unreachable vertices rejected by validate()
        support = np.logical_or.reduce(verifiable[:, predecessors], axis=1)
        verifiable[:, vertex] = received[:, vertex] & support
    return verifiable


def graph_monte_carlo(graph: DependenceGraph, p: float, trials: int = 10_000,
                      seed=None,
                      root_always_received: bool = True) -> McResult:
    """Estimate ``q_i = P{verifiable | received}`` for every vertex.

    Parameters
    ----------
    graph:
        Any valid dependence-graph.
    p:
        iid loss rate.
    trials:
        Independent loss patterns to sample.
    seed:
        RNG seed — anything :func:`numpy.random.default_rng` accepts,
        including a :class:`numpy.random.SeedSequence` from a spawned
        seed tree.
    root_always_received:
        The paper's standing assumption about ``P_sign``; set ``False``
        to study what happens without signature protection.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    if trials < 1:
        raise AnalysisError(f"need >= 1 trial, got {trials}")
    registry = get_registry()
    if registry.enabled:
        registry.count("mc.graph.runs")
        registry.count("mc.graph.trials", trials)
    with span("mc.graph_monte_carlo"):
        graph.validate()
        n = graph.n
        rng = np.random.default_rng(seed)
        received = rng.random((trials, n + 1)) >= p  # column 0 unused
        received[:, 0] = False
        if root_always_received:
            received[:, graph.root] = True
        verifiable = _propagate(graph, received)
        return _tally(graph, received, verifiable, trials)


def graph_monte_carlo_reference(graph: DependenceGraph, p: float,
                                trials: int = 10_000, seed=None,
                                root_always_received: bool = True) -> McResult:
    """Pre-vectorization reference implementation of
    :func:`graph_monte_carlo`.

    Propagates verifiability with an explicit Python loop over each
    vertex's predecessors instead of the ``np.logical_or.reduce``
    column gather.  Kept (slow, unoptimized) as the differential-test
    oracle: with the same seed it must match :func:`graph_monte_carlo`
    bit-for-bit, because both consume identical RNG draws.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    if trials < 1:
        raise AnalysisError(f"need >= 1 trial, got {trials}")
    graph.validate()
    n = graph.n
    rng = np.random.default_rng(seed)
    received = rng.random((trials, n + 1)) >= p  # column 0 unused
    received[:, 0] = False
    if root_always_received:
        received[:, graph.root] = True
    verifiable = np.zeros((trials, n + 1), dtype=bool)
    verifiable[:, graph.root] = received[:, graph.root]
    for vertex in graph.topological_order():
        if vertex == graph.root:
            continue
        predecessors = graph.predecessors(vertex)
        if not predecessors:
            continue
        support = verifiable[:, predecessors[0]].copy()
        for predecessor in predecessors[1:]:
            support |= verifiable[:, predecessor]
        verifiable[:, vertex] = received[:, vertex] & support
    return _tally(graph, received, verifiable, trials)


def graph_monte_carlo_model(graph: DependenceGraph, loss_model,
                            trials: int = 1000,
                            root_always_received: bool = True,
                            seed: Optional[int] = None) -> McResult:
    """Monte Carlo ``q_i`` under an arbitrary :class:`LossModel`.

    Unlike :func:`graph_monte_carlo` (iid, fully vectorized), this
    variant draws each trial's loss pattern from the model —
    Gilbert–Elliott burst loss, trace replay, anything with the
    ``is_lost``/``reset`` interface — enabling the paper's named
    future-work extension to Markov loss.

    The model is restarted once up front, not per trial, so consecutive
    trials see fresh randomness from the same stream.  Pass ``seed`` to
    :meth:`LossModel.reseed` the model first, making runs reproducible
    even when the model was constructed without a seed of its own; with
    ``seed=None`` the model is only ``reset()``, preserving the old
    behavior.
    """
    if trials < 1:
        raise AnalysisError(f"need >= 1 trial, got {trials}")
    registry = get_registry()
    if registry.enabled:
        registry.count("mc.model.runs")
        registry.count("mc.model.trials", trials)
    with span("mc.graph_monte_carlo_model"):
        graph.validate()
        n = graph.n
        if seed is not None:
            loss_model.reseed(seed)
        else:
            loss_model.reset()
        # One bulk draw per trial instead of O(n) Python calls per packet.
        received = np.empty((trials, n + 1), dtype=bool)
        received[:, 0] = False
        for trial in range(trials):
            received[trial, 1:] = np.logical_not(loss_model.sample(n))
        if root_always_received:
            received[:, graph.root] = True
        verifiable = _propagate(graph, received)
        return _tally(graph, received, verifiable, trials)


def tesla_lambda_monte_carlo(n: int, p: float, trials: int = 10_000,
                             seed=None) -> McResult:
    """Monte Carlo for TESLA's ``λ_i`` (cross-checks ``1 - p^{n+1-i}``).

    Samples loss of the ``n`` key-disclosure opportunities; ``λ_i``
    holds when any disclosure ``j >= i`` arrives.  Message-packet loss
    is irrelevant to ``λ`` (it conditions on receipt), so only key
    carriers are sampled.
    """
    if n < 1:
        raise AnalysisError(f"need n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    registry = get_registry()
    if registry.enabled:
        registry.count("mc.tesla_lambda.runs")
        registry.count("mc.tesla_lambda.trials", trials)
    rng = np.random.default_rng(seed)
    key_received = rng.random((trials, n)) >= p
    # suffix_any[:, i] == any disclosure with index >= i+1 arrived.
    suffix_any = np.zeros((trials, n), dtype=bool)
    suffix_any[:, n - 1] = key_received[:, n - 1]
    for i in range(n - 2, -1, -1):
        suffix_any[:, i] = key_received[:, i] | suffix_any[:, i + 1]
    q = {i + 1: float(suffix_any[:, i].mean()) for i in range(n)}
    counts = {i + 1: trials for i in range(n)}
    verified = {i + 1: int(suffix_any[:, i].sum()) for i in range(n)}
    return McResult(q=q, received_counts=counts, trials=trials,
                    verified_counts=verified)
