"""EMSS analysis via the paper's recurrence (Eq. 8 and Eq. 9).

``E_{m,d}`` in signature-rooted indexing has the offset set
``A = {d, 2d, ..., m·d}``; Eq. 9 then gives

    ``q_i = 1 - Π_{a∈A} [1 - (1-p)·q_{i-a}]``, ``q_i = 1 for i <= m·d``.

Eq. 8 is the ``E_{2,1}`` instance.  A closed-form floor follows from
the recurrence's fixed point: for ``E_{2,1}`` the profile decreases
monotonically to ``q_∞ = 1 - (p/(1-p))²`` (real for ``p < 1/2``),
which the paper quotes as EMSS's ``q_min`` lower bound.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.recurrence import RecurrenceResult, solve_recurrence
from repro.exceptions import AnalysisError

__all__ = [
    "offsets_for",
    "q_profile",
    "q_min",
    "q_min_lower_bound_e21",
    "generic_q_min",
]


def offsets_for(m: int, d: int) -> List[int]:
    """The Eq. 9 offset set of ``E_{m,d}``: ``{d, 2d, ..., m·d}``."""
    if m < 1 or d < 1:
        raise AnalysisError(f"E_(m,d) needs m, d >= 1, got ({m}, {d})")
    return [k * d for k in range(1, m + 1)]


def q_profile(n: int, m: int, d: int, p: float) -> RecurrenceResult:
    """Per-packet ``q_i`` of ``E_{m,d}`` over a block of ``n`` packets.

    Indexing is signature-rooted (``q[0]`` is ``P_sign``'s, always 1).
    """
    return solve_recurrence(n, offsets_for(m, d), p)


def q_min(n: int, m: int, d: int, p: float) -> float:
    """``q_min`` of ``E_{m,d}`` (the Fig. 7 quantity)."""
    return q_profile(n, m, d, p).q_min


def generic_q_min(n: int, offsets: Sequence[int], p: float) -> float:
    """``q_min`` for an arbitrary offset set ``A`` (general Eq. 9)."""
    return solve_recurrence(n, offsets, p).q_min


def q_min_lower_bound_e21(p: float) -> float:
    """Fixed-point floor of Eq. 8: ``1 - (p/(1-p))²`` for ``p < 1/2``.

    Derivation: at the fixed point ``q* = 1 - u²`` with
    ``u = 1 - (1-p)q*``; substituting gives ``(1-p)u² - u + p = 0``
    whose relevant root is ``u = p/(1-p)``.  The recurrence decreases
    monotonically from 1 toward ``q*``, so ``q_min >= q*`` for every
    block size.
    """
    if not 0.0 <= p < 0.5:
        raise AnalysisError(
            f"fixed-point bound requires p in [0, 0.5), got {p}"
        )
    u = p / (1.0 - p)
    return 1.0 - u * u
