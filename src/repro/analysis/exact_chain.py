"""Exact per-packet probabilities for consecutive-offset schemes.

For EMSS with spacing ``d = 1`` — offset set ``A = {1, 2, …, m}`` —
verifiability has a clean Markov structure that admits *exact*
evaluation, with no path-independence approximation and no sampling:

A packet is **unverifiable** iff it is lost, or all ``m`` packets
between it and the signature side are themselves unverifiable (there
is no shorter way around: every root-path steps through one of the
previous ``m`` positions).  The length of the current run of
unverifiable packets, capped at ``m``, is therefore a Markov chain:

* from run ``s < m``: the next packet is lost with probability ``p``
  (run becomes ``s+1``) or received and verifiable with probability
  ``1-p`` (run resets to 0);
* run ``m`` is absorbing — once ``m`` consecutive packets are
  unverifiable, nothing after them can ever verify.

Then ``P{P_i verifiable} = (1-p)·P{run before i < m}`` and
``q_i = P{verifiable}/P{received} = P{run before i < m}``, all
computable in ``O(n·m)``.

This module is the independent ground truth used to (a) validate the
Monte Carlo estimator to arbitrary precision and (b) measure the error
of the paper's Eq. 8/9 recurrence exactly rather than statistically
(the ``ext-gap`` experiment).  It also yields the asymptotic decay
rate of the true ``q_min`` as the largest eigenvalue of the transient
part of the chain.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["exact_q_profile", "exact_q_min", "asymptotic_decay_rate"]


def _transition_matrix(m: int, p: float) -> np.ndarray:
    """Transition matrix over run states 0..m (state m absorbing)."""
    matrix = np.zeros((m + 1, m + 1))
    for s in range(m):
        matrix[s, s + 1] = p
        matrix[s, 0] = 1.0 - p
    matrix[m, m] = 1.0
    return matrix


def _validate(n: int, m: int, p: float) -> None:
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if m < 1:
        raise AnalysisError(f"offset reach m must be >= 1, got {m}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")


def exact_q_profile(n: int, m: int, p: float) -> List[float]:
    """Exact ``[q_1 .. q_n]`` for offsets ``{1..m}`` under iid loss.

    Signature-rooted indexing, as in the Eq. 9 recurrence: ``q_1`` is
    ``P_sign``'s (always 1).  ``q_i = P{run before i < m}``: the run
    state starts at 0 after the always-received signature packet.

    Parameters
    ----------
    n:
        Block size (including the signature packet).
    m:
        Largest offset — the scheme is EMSS ``E_{m,1}``.
    p:
        iid loss rate.
    """
    _validate(n, m, p)
    matrix = _transition_matrix(m, p)
    state = np.zeros(m + 1)
    state[0] = 1.0  # right after P_sign the run is 0
    profile = [1.0]
    for _ in range(2, n + 1):
        alive = float(state[:m].sum())
        profile.append(alive)
        state = state @ matrix
    return profile


def exact_q_min(n: int, m: int, p: float) -> float:
    """Exact ``q_min`` of ``E_{m,1}``: the farthest packet's ``q``."""
    return exact_q_profile(n, m, p)[-1]


def asymptotic_decay_rate(m: int, p: float) -> float:
    """Per-packet survival factor ``r``: ``q_i ~ C·r^i`` for large i.

    The largest eigenvalue of the transient (non-absorbing) block of
    the run-length chain.  For ``m = 2`` this is the familiar
    "no two consecutive losses" rate
    ``((1-p) + sqrt((1-p)² + 4p(1-p))) / 2``.
    """
    _validate(2, m, p)
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    transient = _transition_matrix(m, p)[:m, :m]
    eigenvalues = np.linalg.eigvals(transient)
    return float(np.max(np.abs(eigenvalues)))
