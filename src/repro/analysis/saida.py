"""Closed-form analysis of the SAIDA erasure-coded baseline.

With an ``(n, k)`` erasure code, a received packet verifies iff at
least ``k − 1`` of the other ``n − 1`` packets also arrive, so under
iid loss

    ``q_i = P{Binomial(n−1, 1−p) >= k−1}``  — identical for every i.

The profile is perfectly flat (zero variance, compare the paper's
Sec. 3 variance discussion), and ``q`` behaves as a cliff around
``p ≈ 1 − k/n`` rather than the recurrences' smooth decay.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import AnalysisError

__all__ = ["q_i", "q_profile", "q_min", "loss_cliff"]


def _binomial_tail(trials: int, success: float, minimum: int) -> float:
    """``P{Binomial(trials, success) >= minimum}`` exactly."""
    if minimum <= 0:
        return 1.0
    if minimum > trials:
        return 0.0
    total = 0.0
    for wins in range(minimum, trials + 1):
        total += (math.comb(trials, wins)
                  * success ** wins
                  * (1.0 - success) ** (trials - wins))
    return min(total, 1.0)


def _check(n: int, k: int, p: float) -> None:
    if n < 1:
        raise AnalysisError(f"block needs >= 1 packet, got {n}")
    if not 1 <= k <= n:
        raise AnalysisError(f"need 1 <= k <= n, got k={k}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")


def q_i(n: int, k: int, p: float) -> float:
    """Authentication probability of any packet (they are all equal)."""
    _check(n, k, p)
    return _binomial_tail(n - 1, 1.0 - p, k - 1)


def q_profile(n: int, k: int, p: float) -> List[float]:
    """The (flat) per-packet profile."""
    value = q_i(n, k, p)
    return [value] * n


def q_min(n: int, k: int, p: float) -> float:
    """``q_min`` — equal to every ``q_i``; the variance is exactly 0."""
    return q_i(n, k, p)


def loss_cliff(n: int, k: int) -> float:
    """The loss rate around which ``q`` collapses: ``1 − k/n``.

    Below the cliff the code almost surely reconstructs; above it,
    almost surely not — the transition sharpens as ``n`` grows (law of
    large numbers).
    """
    if n < 1 or not 1 <= k <= n:
        raise AnalysisError(f"need 1 <= k <= n, got k={k}, n={n}")
    return 1.0 - k / n
