"""Analysis of the Wong–Lam authentication tree ("trivial" per Sec. 4.2).

Every packet carries its own authentication information, so the
authentication probability "is not affected by the packet loss and
hence is always 1"; the costs are pure overhead.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import AnalysisError

__all__ = ["q_i", "q_profile", "q_min", "overhead_bytes_per_packet"]


def q_i(i: int, p: float) -> float:
    """``q_i = 1`` regardless of loss."""
    if i < 1:
        raise AnalysisError(f"packet index must be >= 1, got {i}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    return 1.0


def q_profile(n: int, p: float) -> List[float]:
    """All ones."""
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    return [q_i(i, p) for i in range(1, n + 1)]


def q_min(n: int, p: float) -> float:
    """``q_min = 1``."""
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    return 1.0


def overhead_bytes_per_packet(n: int, l_sign: int, l_hash: int) -> float:
    """Per-packet overhead: signature + ``ceil(log2 n)`` proof hashes."""
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    depth = math.ceil(math.log2(n)) if n > 1 else 0
    return float(l_sign + depth * l_hash)
