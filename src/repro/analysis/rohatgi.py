"""Closed-form analysis of the Gennaro–Rohatgi chain (paper Sec. 3 example).

With ``P_sign = P_1`` assumed received and iid loss ``p``, packet
``P_i`` verifies iff the ``i - 2`` packets strictly between it and the
signature all arrive:

* ``q_i = (1-p)^{i-2}`` for ``i >= 2`` (``q_1 = q_2 = 1``),
* ``q_min = (1-p)^{n-2}``.

(The paper's prose also prints ``(1-p)^{i-1}``; that exponent is
inconsistent with its own "``(i-2)`` packets in between" and its
``q_min`` — see DESIGN.md.  The forms here match both the example's
``q_min`` and exact path analysis, which tests verify.)
"""

from __future__ import annotations

from typing import List

from repro.exceptions import AnalysisError

__all__ = ["q_i", "q_profile", "q_min"]


def _check(n: int, p: float) -> None:
    if n < 2:
        raise AnalysisError(f"Rohatgi block needs n >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")


def q_i(i: int, p: float) -> float:
    """Authentication probability of ``P_i`` (send order, ``P_1`` signed)."""
    if i < 1:
        raise AnalysisError(f"packet index must be >= 1, got {i}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    return (1.0 - p) ** max(i - 2, 0)


def q_profile(n: int, p: float) -> List[float]:
    """``[q_1, ..., q_n]`` for a block of size ``n``."""
    _check(n, p)
    return [q_i(i, p) for i in range(1, n + 1)]


def q_min(n: int, p: float) -> float:
    """``q_min = (1-p)^{n-2}`` — collapses exponentially in ``n``."""
    _check(n, p)
    return (1.0 - p) ** (n - 2)
