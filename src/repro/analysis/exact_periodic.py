"""Exact evaluation of arbitrary periodic offset schemes.

:mod:`repro.analysis.exact_chain` solves ``A = {1..m}`` with an
(m+1)-state run-length chain.  For an *arbitrary* positive offset set
``A`` — say ``{1, 7}`` or ``{2, 3, 5}`` — the verifiability process is
still Markov, but the state must remember the verifiability of the
last ``K = max(A)`` packets: a bitmask of ``K`` bits, giving an exact
``O(n · 2^K)`` transfer-matrix evaluation.  This is the paper's
"signal-flow graph" direction made concrete: the scheme's exact loss
behaviour is the repeated application of one linear operator.

Semantics (signature-rooted indexing, ``P_1 = P_sign`` always
received): packet ``i`` is verifiable iff it is received and some
``P_{i-a}``, ``a ∈ A``, is verifiable — with branches clamped to the
root (``i - a <= 1``) always succeeding.

Feasible up to ``max(A) ≈ 16`` (65k states); beyond that, fall back to
Monte Carlo.  Used to validate the Eq. 9 recurrence's error for
non-contiguous offset sets and to give the design toolkit exact
evaluations for small policies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["exact_periodic_q_profile", "exact_periodic_q_profile_reference",
           "exact_periodic_q_min"]

_MAX_REACH = 16


def _clean_offsets(offsets: Sequence[int]) -> Tuple[int, ...]:
    cleaned = tuple(sorted(set(offsets)))
    if not cleaned:
        raise AnalysisError("offset set must be non-empty")
    if any(a < 1 for a in cleaned):
        raise AnalysisError(f"offsets must be positive: {offsets}")
    if cleaned[-1] > _MAX_REACH:
        raise AnalysisError(
            f"max offset {cleaned[-1]} exceeds exact-evaluation reach "
            f"{_MAX_REACH}; use Monte Carlo"
        )
    return cleaned


def exact_periodic_q_profile(n: int, offsets: Sequence[int],
                             p: float) -> List[float]:
    """Exact ``[q_1 .. q_n]`` for offset set ``A`` under iid loss.

    Parameters
    ----------
    n:
        Block size including ``P_sign``.
    offsets:
        Positive offsets ``A`` (each packet relies on ``P_{i-a}``);
        ``max(A) <= 16``.
    p:
        iid loss rate.

    Notes
    -----
    The state is the verifiability bitmask of the last ``K`` packets
    (bit ``k`` = packet ``k+1`` positions back).  The root's certainty
    is encoded by starting, for each position ``i <= K+1``, from the
    exact joint distribution grown step by step — positions whose
    branch clamps to the root are verifiable whenever received.

    This is the vectorized transfer-matrix evaluation: the state
    distribution is a dense vector over all ``2^K`` bitmasks and each
    position applies the (sparse, two-outcomes-per-state) linear
    operator with a pair of ``np.bincount`` scatters.  It matches
    :func:`exact_periodic_q_profile_reference` — the original
    dictionary walk, kept as the differential-testing ground truth —
    to full double precision.
    """
    a_set = _clean_offsets(offsets)
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    reach = a_set[-1]
    survive = 1.0 - p
    size = 1 << reach
    states = np.arange(size, dtype=np.int64)
    # A state supports the next packet when any offset branch is alive.
    supported = np.zeros(size, dtype=bool)
    for a in a_set:
        supported |= ((states >> (a - 1)) & 1).astype(bool)
    shifted = (states << 1) & (size - 1)
    weights = np.zeros(size)
    weights[1] = 1.0  # root verifiable with certainty
    profile = [1.0]
    for i in range(2, n + 1):
        clamp = reach >= i - 1  # some branch reaches back to the root
        alive_mask = np.ones(size, dtype=bool) if clamp else supported
        if clamp:
            profile.append(1.0)
        else:
            profile.append(float(weights[alive_mask].sum()))
        supported_weight = np.where(alive_mask, weights, 0.0)
        unsupported_weight = np.where(alive_mask, 0.0, weights)
        weights = (
            np.bincount(shifted | 1, weights=supported_weight * survive,
                        minlength=size)
            + np.bincount(shifted, weights=supported_weight * p
                          + unsupported_weight, minlength=size)
        )
    return profile


def exact_periodic_q_profile_reference(n: int, offsets: Sequence[int],
                                       p: float) -> List[float]:
    """Original dictionary-based walk; ground truth for the oracle.

    Same contract as :func:`exact_periodic_q_profile`, ``O(n · 2^K)``
    with per-state Python dictionaries.  Kept verbatim so the
    vectorized path is forever differential-testable against the code
    it replaced.
    """
    a_set = _clean_offsets(offsets)
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    reach = a_set[-1]
    survive = 1.0 - p
    # distribution over bitmasks of the last `reach` verifiability bits;
    # bit k (value 1 << k) is the packet k+1 positions back.
    distribution: Dict[int, float] = {1: 1.0} if reach >= 1 else {0: 1.0}
    # Start: position 1 is the root, verifiable with certainty -> the
    # "1 position back" bit is set when we stand at position 2.
    profile = [1.0]
    for i in range(2, n + 1):
        # Probability the current packet would be verifiable given
        # receipt: some offset branch alive (or clamped to the root).
        clamp = any(i - a <= 1 for a in a_set)
        alive = 0.0
        for state, probability in distribution.items():
            if clamp or any(state >> (a - 1) & 1 for a in a_set):
                alive += probability
        profile.append(alive if not clamp else 1.0)
        # Advance the joint distribution by one position.
        advanced: Dict[int, float] = {}
        for state, probability in distribution.items():
            supported = clamp or any(state >> (a - 1) & 1 for a in a_set)
            shifted = (state << 1) & ((1 << reach) - 1)
            if supported:
                verifiable_state = shifted | 1
                advanced[verifiable_state] = advanced.get(
                    verifiable_state, 0.0) + probability * survive
                advanced[shifted] = advanced.get(
                    shifted, 0.0) + probability * p
            else:
                advanced[shifted] = advanced.get(
                    shifted, 0.0) + probability
        distribution = advanced
    return profile


def exact_periodic_q_min(n: int, offsets: Sequence[int], p: float) -> float:
    """Exact ``q_min`` for an arbitrary offset set (reach <= 16)."""
    return min(exact_periodic_q_profile(n, offsets, p))
