"""Cross-scheme conformance: wire-level simulation vs analytic models.

The paper's numbers come from three places that must agree: the
analytic recurrences (Eq. 6–10 and closed forms), the vectorized
graph-level Monte Carlo, and the byte-level wire simulators.  This
module gives every scheme in :mod:`repro.schemes.registry` a
*conformance case*: a default spec string, an analytic per-position
``q_i`` profile in **send order**, and a wire-level runner producing
the matching empirical profile.  The integration suite
(``tests/integration/test_conformance.py``) iterates the registry and
fails loudly when a scheme is registered without a case here — so an
aggressive refactor (or a brand-new scheme) cannot silently drift away
from the analysis it claims to implement.

Send-order index conventions differ per scheme family and are resolved
here once:

* Rohatgi (offline and online): signature first, ``q_i = (1-p)^{i-2}``
  directly in send order (Eq. 8, exact — each packet has one path);
* EMSS / generic offsets: the exact transfer-matrix model
  (:mod:`repro.analysis.exact_periodic`) uses signature-rooted
  indexing with ``P_1 = P_sign`` — send position ``s`` of an
  ``n``-block maps to model index ``n + 1 - s``;
* augmented chains and random graphs: :func:`exhaustive_q_profile`
  computes the exact profile by enumerating every loss pattern
  (2^(n-1) of them) on the scheme's own graph, whose vertices are
  already send positions;
* SAIDA's profile is flat; TESLA's is Eq. 6; individually-verifiable
  schemes are identically 1.

**Why the oracle is the exact model, not Eq. 9/10 verbatim.**  The
paper's Eq. 9/10 recurrences assume path-failure independence; at
conformance block sizes the approximation error is *large* (for
``E_{2,1}`` at ``n = 12, p = 0.25`` the recurrence says ``q ≈ 0.89``
at the far end while the true value is ``0.61``) — far beyond any
sampling tolerance.  The wire simulation is therefore compared against
the exact analytic evaluation, and the recurrences are held to the
relationship they actually satisfy: :func:`recurrence_q_profile`
exposes the Eq. 9/10 approximation in send order so the suite can
assert it upper-bounds the exact model everywhere (independence is
optimistic: path-death events are positively correlated, so the true
all-paths-dead probability exceeds the product) and coincides with it
near the signature, where paths cannot yet overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis import saida as saida_analysis
from repro.analysis import tesla as tesla_analysis
from repro.analysis.exact_periodic import exact_periodic_q_profile
from repro.analysis.montecarlo import _propagate
from repro.core.graph import DependenceGraph
from repro.core.recurrence import solve_recurrence
from repro.crypto.batch import StreamBatchSigner
from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import AnalysisError
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay
from repro.network.loss import BernoulliLoss
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.base import Scheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.registry import make_scheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.rohatgi_online import OnlineChainReceiver, OnlineRohatgiScheme
from repro.schemes.saida import SaidaScheme
from repro.schemes.sign_each import SignEachScheme
from repro.schemes.tesla import TeslaScheme
from repro.schemes.wong_lam import WongLamScheme
from repro.faults import (
    AttackPlan,
    BitFlipCorruption,
    BootstrapBurstForgery,
    ForgedInjection,
    KNOWN_ATTACK_MIXES,
    ReorderJitter,
    ReplayDuplication,
    TruncationCorruption,
)
from repro.simulation.adversarial import run_adversarial_trials
from repro.simulation.runner import (
    WireTrialConfig,
    run_tesla_trials,
    run_wire_trials,
)
from repro.simulation.sender import make_payloads
from repro.simulation.session import run_saida_session
from repro.simulation.stats import SimulationStats

__all__ = [
    "ConformanceEnvironment",
    "DEFAULT_SPECS",
    "default_scheme",
    "analytic_q_profile",
    "recurrence_q_profile",
    "exhaustive_q_profile",
    "wire_q_stats",
    "conformance_deviations",
    "deviation_rows",
    "ADVERSARIAL_MIXES",
    "COMPLETENESS_POLICY",
    "attack_mix",
    "effective_loss_rate",
    "adversarial_wire_stats",
    "adversarial_conformance_report",
]


#: Registry name -> fully parameterized default spec used by the
#: conformance suite.  Every name in
#: :func:`repro.schemes.registry.available_schemes` MUST appear here;
#: the integration test fails loudly otherwise.
DEFAULT_SPECS: Dict[str, str] = {
    "rohatgi": "rohatgi",
    "rohatgi-online": "rohatgi-online",
    "wong-lam": "wong-lam",
    "sign-each": "sign-each",
    "emss": "emss(2,1)",
    "ac": "ac(3,3)",
    "offsets": "offsets(1,3)",
    "random": "random(0.35,11)",
    "saida": "saida(0.5)",
    "tesla": "tesla(d=5,T=0.1,n=64)",
}


@dataclass(frozen=True)
class ConformanceEnvironment:
    """Network context shared by a conformance comparison.

    TESLA's analytic ``q_i`` (Eq. 6) depends on the delay model; the
    wire runner uses the same ``μ``/``σ`` so both sides describe the
    same channel.
    """

    delay_mean: float = 0.1
    delay_std: float = 0.05


def default_scheme(name: str) -> Scheme:
    """Instantiate the registry scheme the conformance suite exercises."""
    spec = DEFAULT_SPECS.get(name)
    if spec is None:
        raise AnalysisError(
            f"scheme {name!r} is registered but has no conformance case; "
            f"add a default spec and an analytic model to "
            f"repro.analysis.conformance")
    return make_scheme(spec)


# ---------------------------------------------------------------------
# Analytic side
# ---------------------------------------------------------------------

def exhaustive_q_profile(graph: DependenceGraph, p: float,
                         root_always_received: bool = True
                         ) -> Dict[int, float]:
    """Exact per-vertex ``q_i`` by enumerating every loss pattern.

    Sums ``P{verifiable & received}`` over all ``2^(n-1)`` receive
    subsets of the non-root vertices (the root is handled per the
    ``P_sign`` assumption), then conditions on receipt.  Exponential by
    construction — the guard caps ``n`` — but *exact*: unlike Eq. 9/10
    it makes no path-independence approximation, so it is the right
    oracle for schemes (random graphs) with no closed form.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    if not root_always_received:
        raise AnalysisError(
            "exhaustive profile models the paper's P_sign assumption only")
    graph.validate()
    n = graph.n
    if n > 16:
        raise AnalysisError(
            f"exhaustive enumeration infeasible for n = {n} (cap 16)")
    others = [v for v in graph.vertices if v != graph.root]
    patterns = 1 << len(others)
    received = np.zeros((patterns, n + 1), dtype=bool)
    for bit, vertex in enumerate(others):
        received[:, vertex] = (np.arange(patterns) >> bit) & 1
    received[:, graph.root] = True
    loss_count = len(others) - received[:, others].sum(axis=1)
    weights = (1.0 - p) ** (len(others) - loss_count) * p ** loss_count
    verifiable = _propagate(graph, received)
    profile: Dict[int, float] = {}
    for vertex in graph.vertices:
        got = float(weights[received[:, vertex]].sum())
        ok = float(weights[verifiable[:, vertex]].sum())
        if got <= 0.0:
            continue
        profile[vertex] = ok / got
    return profile


def _flat_profile(n: int, value: float) -> Dict[int, float]:
    return {position: value for position in range(1, n + 1)}


def analytic_q_profile(scheme: Scheme, n: int, p: float,
                       env: Optional[ConformanceEnvironment] = None
                       ) -> Dict[int, float]:
    """Analytic ``q_i`` by **send position** for a block of ``n`` packets.

    Dispatches to the matching analytic module — closed forms where
    they are exact (Rohatgi, SAIDA, TESLA, individually verifiable),
    the exact transfer-matrix model for offset schemes, and exact
    loss-pattern enumeration for other graph schemes — and converts
    each model's native indexing to 1-based send order, the indexing
    :class:`~repro.simulation.stats.SimulationStats` tallies use.
    The Eq. 9/10 approximations live in :func:`recurrence_q_profile`.

    Raises :class:`AnalysisError` for schemes without an analytic
    model — the loud failure the conformance suite relies on.
    """
    env = env if env is not None else ConformanceEnvironment()
    if isinstance(scheme, (WongLamScheme, SignEachScheme)):
        return _flat_profile(n, 1.0)
    if isinstance(scheme, (RohatgiScheme, OnlineRohatgiScheme)):
        return {i: q for i, q in
                enumerate(rohatgi_analysis.q_profile(n, p), start=1)}
    if isinstance(scheme, (EmssScheme, GenericOffsetScheme)):
        exact = exact_periodic_q_profile(n, list(scheme.offsets), p)
        # send position s <-> signature-rooted index n + 1 - s
        return {s: exact[n - s] for s in range(1, n + 1)}
    if isinstance(scheme, SaidaScheme):
        return {i: q for i, q in enumerate(
            saida_analysis.q_profile(n, scheme.threshold(n), p), start=1)}
    if isinstance(scheme, TeslaScheme):
        t_disclose = scheme.parameters.disclosure_delay
        return {i: tesla_analysis.q_i(i, n, p, t_disclose,
                                      env.delay_mean, env.delay_std)
                for i in range(1, n + 1)}
    graph = scheme.build_graph(n)
    if graph is not None and graph.n <= 16:
        return exhaustive_q_profile(graph, p)
    raise AnalysisError(
        f"no analytic q_i model for {scheme.name} at n = {n}; register "
        f"one in repro.analysis.conformance")


def recurrence_q_profile(scheme: Scheme, n: int,
                         p: float) -> Optional[Dict[int, float]]:
    """Eq. 9/10 independence-approximation ``q_i`` in send order.

    Returns ``None`` for schemes whose conformance model *is* already
    the paper's closed form (Rohatgi, SAIDA, TESLA, …) — only offset
    schemes and augmented chains have a recurrence that approximates,
    rather than equals, the exact profile.  The suite checks the
    returned profile upper-bounds :func:`analytic_q_profile` and
    matches it at positions within ``max(offsets)`` (resp. ``a``) of
    the signature, where dependence paths cannot yet share vertices.
    """
    if isinstance(scheme, (EmssScheme, GenericOffsetScheme)):
        solved = solve_recurrence(n, list(scheme.offsets), p)
        return {s: solved.q[n - s] for s in range(1, n + 1)}
    if isinstance(scheme, AugmentedChainScheme):
        profile = ac_analysis.q_profile(n, scheme.a, scheme.b, p)
        result = {n: 1.0}  # the signature packet, sent last
        for s in range(1, n):
            result[s] = profile.q_of_reversed_index(n - s)
        return result
    return None


# ---------------------------------------------------------------------
# Wire side
# ---------------------------------------------------------------------

def _conformance_signer() -> Signer:
    return HmacStubSigner(key=b"conformance", signature_size=128)


def _run_saida_trials(scheme: SaidaScheme, n: int, p: float, trials: int,
                      seed: int) -> SimulationStats:
    """SAIDA wire trials (needs its share-reassembling receiver)."""
    signer = _conformance_signer()
    stats = SimulationStats()
    for trial in range(trials):
        loss = BernoulliLoss(p, seed=seed + trial * 7919)
        channel = Channel(loss=loss, delay=ConstantDelay(0.0))
        run_saida_session(scheme, n, 1, channel, signer=signer, stats=stats)
    return stats


def _run_online_trials(scheme: OnlineRohatgiScheme, n: int, p: float,
                       trials: int, seed: int) -> SimulationStats:
    """Online-chain wire trials: strict in-order OTS verification.

    The packet stream is built once (sender output is trial-invariant)
    and re-transmitted through a fresh channel per trial; each trial
    verifies with a fresh receiver holding the block's key pairs.
    """
    signer = _conformance_signer()
    payloads = make_payloads(n)
    packets = scheme.make_block(payloads, signer)
    keypairs = scheme._last_keypairs
    stats = SimulationStats()
    for trial in range(trials):
        loss = BernoulliLoss(p, seed=seed + trial * 7919)
        channel = Channel(loss=loss, delay=ConstantDelay(0.0))
        deliveries = channel.transmit(packets)
        receiver = OnlineChainReceiver(signer, keypairs)
        for delivery in deliveries:
            receiver.receive(delivery.packet)
        delivered = {d.packet.seq for d in deliveries}
        for packet in packets:
            position = packet.seq  # base_seq = 1
            received = packet.seq in delivered
            verified = received and bool(receiver.verified.get(packet.seq))
            stats.record(position, received, verified)
        stats.sent += channel.sent
        stats.dropped += channel.dropped
    return stats


def wire_q_stats(scheme: Scheme, n: int, p: float, trials: int,
                 seed: int = 7,
                 env: Optional[ConformanceEnvironment] = None
                 ) -> SimulationStats:
    """Wire-level empirical statistics for ``trials`` blocks of ``n``.

    Dispatches each scheme family to the session runner that speaks its
    wire format; positions in the returned
    :class:`~repro.simulation.stats.SimulationStats` are 1-based send
    order, aligned with :func:`analytic_q_profile`.
    """
    env = env if env is not None else ConformanceEnvironment()
    if isinstance(scheme, TeslaScheme):
        return run_tesla_trials(scheme.parameters, n, 0, trials, p,
                                delay_mean=env.delay_mean,
                                delay_std=env.delay_std, seed=seed)
    if isinstance(scheme, SaidaScheme):
        return _run_saida_trials(scheme, n, p, trials, seed)
    if isinstance(scheme, OnlineRohatgiScheme):
        return _run_online_trials(scheme, n, p, trials, seed)
    config = WireTrialConfig(block_size=n, blocks_per_trial=1,
                             trials=trials, loss_rate=p, seed=seed)
    return run_wire_trials(scheme, config, 0, trials)


def _deviation_rows(stats: SimulationStats, analytic: Dict[int, float],
                    label: str) -> List[dict]:
    """Per-position comparison rows against an analytic profile.

    Each row carries the empirical estimate, the model value, the
    binomial standard error, the absolute deviation in SE units
    (``deviation_se``, thresholded by two-sided checks) and the
    one-sided ``shortfall_se`` — how far the wire result falls *below*
    the model, the quantity lower-bound checks threshold.
    """
    rows: List[dict] = []
    for position, tally in sorted(stats.tallies.items()):
        if tally.received == 0:
            continue
        if position not in analytic:
            raise AnalysisError(
                f"{label}: wire position {position} missing from "
                f"the analytic profile")
        wire_q = tally.verified / tally.received
        model_q = analytic[position]
        # SE from the *model* q keeps the threshold meaningful at the
        # boundaries (empirical q of exactly 0 or 1 has zero plug-in
        # variance); floor at one count to avoid zero-width intervals.
        spread = max(model_q * (1.0 - model_q), 1.0 / tally.received)
        se = float(np.sqrt(spread / tally.received))
        rows.append({
            "position": position,
            "received": tally.received,
            "wire_q": wire_q,
            "model_q": model_q,
            "se": se,
            "deviation_se": abs(wire_q - model_q) / se,
            "shortfall_se": max(0.0, (model_q - wire_q) / se),
        })
    if not rows:
        raise AnalysisError(f"{label}: no positions ever received")
    return rows


#: Public name: callers outside the conformance suite (e.g. the live
#: serving layer's 3-SE acceptance check) compare their own stats
#: against an analytic profile with the same rows and thresholds.
deviation_rows = _deviation_rows


def conformance_deviations(scheme: Scheme, n: int, p: float, trials: int,
                           seed: int = 7,
                           env: Optional[ConformanceEnvironment] = None
                           ) -> List[dict]:
    """Per-position comparison rows: wire ``q_i`` vs analytic ``q_i``.

    Each row carries the empirical estimate, the model value, the
    binomial standard error of the estimate and the deviation in SE
    units — the quantity the conformance suite thresholds at 3.
    """
    stats = wire_q_stats(scheme, n, p, trials, seed=seed, env=env)
    analytic = analytic_q_profile(scheme, n, p, env=env)
    return _deviation_rows(stats, analytic, scheme.name)


# ---------------------------------------------------------------------
# Adversarial side: security-invariant conformance
# ---------------------------------------------------------------------

#: Attack-mix names with a conformance case (same tuple the CLI
#: validates ``--attack`` against).
ADVERSARIAL_MIXES = KNOWN_ATTACK_MIXES

#: How each (mix, scheme) pair is held to the effective-loss model.
#: ``two-sided`` (the default for pairs not listed) demands the
#: attacked ``q_i`` match the analytic profile at ``p_eff`` within 3
#: SE both ways — corruption behaves exactly like loss.  Pairs listed
#: as ``lower-bound`` are schemes whose receivers *salvage* authentic
#: content out of partially tampered deliveries (a bit flip confined
#: to a SAIDA share or a TESLA key-disclosure field destroys that
#: field, but the payload stays verifiable through redundancy
#: elsewhere), so corrupted-as-lost is conservative and only the
#: one-sided shortfall is thresholded.  ``skip`` marks pairs whose
#: analytic model is perturbed by a non-loss fault dimension
#: entirely: TESLA's Eq. 6 ``ξ_i`` depends on arrival *timing*, which
#: the dos mix's reorder jitter shifts.  Soundness is asserted for
#: every pair regardless of policy.
COMPLETENESS_POLICY: Dict[tuple, tuple] = {
    ("pollution", "saida"): (
        "lower-bound",
        "leave-one-out reconstruction salvages packets whose flips land "
        "in the share, and tampered packets still donate intact shares"),
    ("pollution", "tesla"): (
        "lower-bound",
        "flips confined to the key-disclosure field leave the MAC "
        "verifiable once a later packet re-discloses the key"),
    ("dos", "tesla"): (
        "skip",
        "reorder jitter shifts arrival times, perturbing the Eq. 6 "
        "safety term independently of loss"),
    ("storm", "saida"): (
        "lower-bound",
        "leave-one-out reconstruction salvages packets whose flips land "
        "in the share, and tampered packets still donate intact shares"),
    ("storm", "tesla"): (
        "lower-bound",
        "flips confined to the key-disclosure field leave the MAC "
        "verifiable once a later packet re-discloses the key"),
}


def attack_mix(name: str) -> AttackPlan:
    """Build a fresh :class:`AttackPlan` for a named conformance mix.

    ``pollution`` models a content-forging attacker: bit flips in the
    authenticated region, sequence-colliding forged injections and
    replays — pressure on trust-state integrity.  ``dos`` models a
    resource attacker: truncation, heavier replay and reorder jitter —
    pressure on buffers and decoders.  ``storm`` models the
    churn-storm adversary: a dense seq-colliding forgery burst over
    the first deliveries after every (re)seed — a bootstrap window,
    i.e. a fresh join race per trial or per (receiver, block) — over
    light corruption and replay.  Rates are fixed so the effective
    loss rate is reproducible across the suite, the
    ``ext-adversarial`` experiment and CI.
    """
    if name == "pollution":
        return AttackPlan((
            BitFlipCorruption(0.10),
            ForgedInjection(0.15, collide=True),
            ReplayDuplication(0.10),
        ))
    if name == "dos":
        return AttackPlan((
            TruncationCorruption(0.10),
            ReplayDuplication(0.15, copies=2),
            ReorderJitter(0.02),
        ))
    if name == "storm":
        return AttackPlan((
            BitFlipCorruption(0.05),
            BootstrapBurstForgery(burst_rate=0.6, window=8,
                                  tail_rate=0.05, collide=True),
            ReplayDuplication(0.05),
        ))
    raise AnalysisError(
        f"unknown attack mix {name!r} (known: {', '.join(ADVERSARIAL_MIXES)})")


def effective_loss_rate(p: float, plan: AttackPlan) -> float:
    """``p_eff = 1 - (1-p)(1-c)``: corruption composed onto loss.

    The adversarial conformance model treats a corrupted delivery as a
    lost one (it can never verify), so an attacked scheme is compared
    against its own analytic profile evaluated at ``p_eff``.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"loss rate must be in [0, 1], got {p}")
    return 1.0 - (1.0 - p) * (1.0 - plan.corruption_rate)


def adversarial_wire_stats(scheme: Scheme, n: int, p: float,
                           plan: AttackPlan, trials: int, seed: int = 7,
                           env: Optional[ConformanceEnvironment] = None,
                           workers: Optional[int] = None,
                           signer: Optional[Signer] = None
                           ) -> SimulationStats:
    """Attacked wire-level statistics for ``trials`` blocks of ``n``.

    The adversarial counterpart of :func:`wire_q_stats`: one driver
    covers every scheme family.  ``workers`` shards the trials across
    a process pool (bit-for-bit identical to the serial run).
    ``signer`` overrides the block signer — a
    :class:`~repro.crypto.batch.StreamBatchSigner` runs the whole
    matrix over batch attachments instead of plain signatures.
    """
    env = env if env is not None else ConformanceEnvironment()
    if workers is not None and workers > 1:
        from repro.parallel.wire import parallel_adversarial_trials
        return parallel_adversarial_trials(
            scheme, n, p, plan, trials, seed=seed,
            delay_mean=env.delay_mean, delay_std=env.delay_std,
            workers=workers, signer=signer)
    return run_adversarial_trials(scheme, n, p, plan, 0, trials, seed=seed,
                                  delay_mean=env.delay_mean,
                                  delay_std=env.delay_std, signer=signer)


def adversarial_conformance_report(name: str, n: int, p: float, mix: str,
                                   trials: int, seed: int = 7,
                                   env: Optional[ConformanceEnvironment]
                                   = None,
                                   workers: Optional[int] = None,
                                   batch_size: int = 1) -> dict:
    """Security-invariant conformance for one (scheme, mix) pair.

    Two invariants, reported as one dict:

    * **soundness** — no forged or corrupted content was ever
      accepted: ``counters["forged_accepted"]`` must be 0 and ``sound``
      records that;
    * **completeness** — the attack gains the adversary nothing beyond
      loss: the attacked empirical ``q_i`` matches the scheme's
      analytic profile at :func:`effective_loss_rate` per the pair's
      :data:`COMPLETENESS_POLICY` (``conformant`` is ``None`` for
      skipped pairs).

    ``passed`` folds both together.  With ``batch_size > 1`` the block
    signer is wrapped in a :class:`~repro.crypto.batch.\
StreamBatchSigner`, so every signature on the attacked wire is a batch
    attachment — the invariants must hold over the batch construction
    exactly as over plain signatures.
    """
    scheme = default_scheme(name)
    plan = attack_mix(mix)
    p_eff = effective_loss_rate(p, plan)
    signer: Optional[Signer] = None
    if batch_size > 1:
        signer = StreamBatchSigner(
            HmacStubSigner(key=b"adversarial-wire", signature_size=128),
            batch_size, seed=seed)
    stats = adversarial_wire_stats(scheme, n, p, plan, trials, seed=seed,
                                   env=env, workers=workers, signer=signer)
    policy, reason = COMPLETENESS_POLICY.get((mix, name), ("two-sided", ""))
    report = {
        "scheme": name,
        "mix": mix,
        "batch_size": batch_size,
        "n": n,
        "trials": trials,
        "loss_rate": p,
        "effective_loss_rate": p_eff,
        "policy": policy,
        "policy_reason": reason,
        "sound": stats.forged_accepted == 0,
        "counters": {
            "sent": stats.sent,
            "dropped": stats.dropped,
            "corrupted": stats.corrupted,
            "injected": stats.injected,
            "replayed": stats.replayed,
            "undecodable": stats.undecodable,
            "forged_rejected": stats.forged_rejected,
            "replays_dropped": stats.replays_dropped,
            "forged_accepted": stats.forged_accepted,
        },
    }
    if policy == "skip":
        report["rows"] = []
        report["max_deviation_se"] = None
        report["conformant"] = None
    else:
        analytic = analytic_q_profile(scheme, n, p_eff, env=env)
        rows = _deviation_rows(stats, analytic, f"{name}/{mix}")
        key = "deviation_se" if policy == "two-sided" else "shortfall_se"
        worst = max(row[key] for row in rows)
        report["rows"] = rows
        report["max_deviation_se"] = worst
        report["conformant"] = worst <= 3.0
    report["passed"] = report["sound"] and report["conformant"] is not False
    return report
