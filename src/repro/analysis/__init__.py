"""Analytic evaluation of every scheme (paper Sections 3.2 and 4)."""

from repro.analysis import (
    augmented_chain,
    delay,
    emss,
    exact_chain,
    exact_chain_markov,
    exact_periodic,
    rohatgi,
    saida,
    tesla,
    wong_lam,
)
from repro.analysis.compare import (
    TeslaEnvironment,
    analytic_q_min,
    overhead_delay_table,
    sweep_block_size,
    sweep_loss,
)
from repro.analysis.montecarlo import (
    McResult,
    graph_monte_carlo,
    graph_monte_carlo_model,
    tesla_lambda_monte_carlo,
)

__all__ = [
    "augmented_chain",
    "delay",
    "emss",
    "exact_chain",
    "exact_chain_markov",
    "exact_periodic",
    "rohatgi",
    "saida",
    "tesla",
    "wong_lam",
    "TeslaEnvironment",
    "analytic_q_min",
    "overhead_delay_table",
    "sweep_block_size",
    "sweep_loss",
    "McResult",
    "graph_monte_carlo",
    "graph_monte_carlo_model",
    "tesla_lambda_monte_carlo",
]
