"""Exact chain analysis under Markov (bursty) loss — the paper's
future work, solved analytically.

The conclusion of the paper: "It is also interesting to extend the
derivations to other loss models like the m-state Markov model."  For
EMSS ``E_{m,1}`` (offsets ``{1..m}``) the extension is exact: under an
m-state Markov loss channel, the pair

    (channel state, current run of unverifiable packets)

is itself a Markov chain — the run evolves exactly as in
:mod:`repro.analysis.exact_chain`, but the per-packet loss probability
now depends on the channel state, and the two components are
*correlated* (a long run is evidence of a BAD channel state), which is
precisely what burst loss changes.  Evaluating the joint distribution
packet by packet gives exact ``q_i`` in ``O(n · s · m)`` for ``s``
channel states.

The per-packet probabilities condition correctly on receipt:
``q_i = P{received and run < m} / P{received}``, where both
probabilities weigh channel states by their loss rates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.network.loss import GilbertElliottLoss

__all__ = [
    "markov_chain_q_profile",
    "markov_chain_q_min",
    "gilbert_elliott_q_min",
]


def _stationary(transition: np.ndarray) -> np.ndarray:
    states = transition.shape[0]
    a = np.vstack([transition.T - np.eye(states), np.ones(states)])
    b = np.zeros(states + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    return np.clip(pi, 0.0, None) / np.clip(pi, 0.0, None).sum()


def markov_chain_q_profile(n: int, m: int,
                           transition: Sequence[Sequence[float]],
                           loss_rates: Sequence[float],
                           initial: Optional[Sequence[float]] = None
                           ) -> List[float]:
    """Exact ``[q_1 .. q_n]`` of ``E_{m,1}`` under Markov loss.

    Parameters
    ----------
    n:
        Block size including ``P_sign`` (assumed received; its slot
        still advances the channel state).
    m:
        Offset reach: the scheme is EMSS ``E_{m,1}``.
    transition:
        Row-stochastic channel transition matrix.
    loss_rates:
        Per-channel-state loss probability.
    initial:
        Distribution over channel states at the first packet; defaults
        to the stationary distribution.

    Returns
    -------
    list of float
        ``q_i = P{verifiable | received}`` per packet
        (signature-rooted indexing).
    """
    if n < 1:
        raise AnalysisError(f"block size must be >= 1, got {n}")
    if m < 1:
        raise AnalysisError(f"offset reach must be >= 1, got {m}")
    matrix = np.asarray(transition, dtype=float)
    rates = np.asarray(loss_rates, dtype=float)
    states = rates.shape[0]
    if matrix.shape != (states, states):
        raise AnalysisError("transition matrix shape mismatch")
    if np.any(rates < 0) or np.any(rates > 1):
        raise AnalysisError("loss rates must lie in [0, 1]")
    if np.any(matrix < 0) or np.any(np.abs(matrix.sum(axis=1) - 1) > 1e-9):
        raise AnalysisError("transition matrix must be row-stochastic")
    if initial is None:
        channel = _stationary(matrix)
    else:
        channel = np.asarray(initial, dtype=float)
        if channel.shape != (states,) or abs(channel.sum() - 1) > 1e-9:
            raise AnalysisError("initial distribution malformed")
    # joint[s, r] = P{channel state s, unverifiable run r}, r in 0..m
    # (r = m absorbing).  P_sign occupies the first slot: received by
    # assumption, so the run starts at 0; the channel still steps.
    joint = np.zeros((states, m + 1))
    joint[:, 0] = channel
    joint = np.einsum("sr,st->tr", joint, matrix)
    profile = [1.0]
    for _ in range(2, n + 1):
        receive = 1.0 - rates  # per-state receipt probability
        p_received = float((joint.sum(axis=1) * receive).sum())
        p_verifiable = float((joint[:, :m].sum(axis=1) * receive).sum())
        if p_received > 0:
            profile.append(p_verifiable / p_received)
        else:
            # Receipt has probability zero (all-loss states): fall back
            # to the unweighted run distribution, matching the iid
            # convention "could this packet verify if it arrived".
            profile.append(float(joint[:, :m].sum()))
        # Advance the run component, then the channel component.
        advanced = np.zeros_like(joint)
        for r in range(m):
            advanced[:, 0] += joint[:, r] * receive       # verified: reset
            advanced[:, r + 1] += joint[:, r] * rates     # lost: extend
        advanced[:, m] += joint[:, m]                     # absorbing
        joint = np.einsum("sr,st->tr", advanced, matrix)
    return profile


def markov_chain_q_min(n: int, m: int,
                       transition: Sequence[Sequence[float]],
                       loss_rates: Sequence[float]) -> float:
    """Exact ``q_min`` of ``E_{m,1}`` under Markov loss."""
    return min(markov_chain_q_profile(n, m, transition, loss_rates))


def gilbert_elliott_q_min(n: int, m: int, loss_rate: float,
                          mean_burst: float) -> float:
    """Exact ``q_min`` of ``E_{m,1}`` on a Gilbert–Elliott channel.

    Convenience wrapper: parameterize by mean loss rate and mean burst
    length, as the burst experiments do.
    """
    model = GilbertElliottLoss.from_rate_and_burst(loss_rate, mean_burst)
    transition = [
        [1.0 - model.p_good_to_bad, model.p_good_to_bad],
        [model.p_bad_to_good, 1.0 - model.p_bad_to_good],
    ]
    return markov_chain_q_min(n, m, transition, [0.0, 1.0])
