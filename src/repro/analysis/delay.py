"""Receiver-delay distributions: the random component of Section 3.

The paper splits receiver delay into a deterministic part ``t_d``
(Eq. 4 — a graph property, see :mod:`repro.core.metrics`) and a random
part from network jitter: with i.i.d. per-packet delays ``t_r``, the
worst-case total delay is

    ``D_worst = t_d(worst) + t_r(P_k) − t_r(P_i)``

for the arrival that completes verification vs the packet's own
arrival, and "the pdf of D_worst can then be easily determined from
the joint distribution of the random delays".  Under the paper's
Gaussian model (Eq. 5) the difference of two independent
``N(μ, σ²)`` variables is ``N(0, 2σ²)``, so

    ``D_worst ~ N(t_d·T_transmit, 2σ²)``.

This module provides that distribution and quantile/CDF helpers, and
is validated against the simulator's measured verification delays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.graph import DependenceGraph
from repro.core.metrics import max_deterministic_delay
from repro.exceptions import AnalysisError
from repro.network.delay import gaussian_cdf

__all__ = ["DelayDistribution", "worst_delay_distribution"]

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class DelayDistribution:
    """A Gaussian receiver-delay law ``N(mean, std²)``.

    Attributes
    ----------
    mean:
        Deterministic component in seconds (``t_d · T_transmit``).
    std:
        Standard deviation of the random component (``σ·√2`` for the
        difference of two iid per-packet jitters).
    """

    mean: float
    std: float

    def cdf(self, t: float) -> float:
        """``P{D_worst <= t}``."""
        if self.std == 0.0:
            return 1.0 if t >= self.mean else 0.0
        return gaussian_cdf((t - self.mean) / self.std)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (bisection on the CDF)."""
        if not 0.0 < q < 1.0:
            raise AnalysisError(f"quantile must be in (0, 1), got {q}")
        if self.std == 0.0:
            return self.mean
        lo = self.mean - 10.0 * self.std
        hi = self.mean + 10.0 * self.std
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def buffer_time_for(self, coverage: float) -> float:
        """Delay budget covering a ``coverage`` fraction of packets.

        The provisioning question behind the paper's buffer
        discussion: how long must a receiver be prepared to wait so
        only ``1 − coverage`` of verifications miss the budget?
        """
        return self.quantile(coverage)


def worst_delay_distribution(graph: DependenceGraph, t_transmit: float,
                             jitter_std: float) -> DelayDistribution:
    """The ``D_worst`` law for a scheme graph under Gaussian jitter.

    Parameters
    ----------
    graph:
        The scheme's dependence-graph; its Eq. 4 deterministic delay
        (in slots) sets the mean.
    t_transmit:
        Seconds per packet slot.
    jitter_std:
        ``σ`` of the per-packet end-to-end delay (Eq. 5); the mean
        network delay cancels in the difference.
    """
    if t_transmit <= 0:
        raise AnalysisError(f"t_transmit must be > 0, got {t_transmit}")
    if jitter_std < 0:
        raise AnalysisError(f"jitter std must be >= 0, got {jitter_std}")
    slots = max_deterministic_delay(graph)
    return DelayDistribution(mean=slots * t_transmit,
                             std=jitter_std * _SQRT2)
