"""Reed–Solomon erasure coding over GF(256).

The SAIDA-style baseline spreads a block's authentication information
(signature + hash list) over its packets so that *any* ``k`` of the
``n`` packets suffice to reconstruct it.  That is precisely an
``(n, k)`` Reed–Solomon erasure code:

* **encode** — pad the payload to ``k`` equal fragments; the ``j``-th
  bytes of the fragments are the coefficients of a degree-``k−1``
  polynomial over GF(256), evaluated at ``n`` distinct non-zero field
  points to give the ``j``-th byte of each share;
* **decode** — any ``k`` shares give ``k`` evaluations per byte
  position; Lagrange interpolation recovers the coefficients.

This is an *erasure* decoder (the channel tells us which shares are
missing — lost packets), not an error decoder; in the multicast loss
setting that is exactly the model.  Runtime is ``O(k²)`` field
operations per byte position, ample for authentication blobs of a few
kilobytes.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

from repro.crypto.gf256 import gf_add, gf_div, gf_mul
from repro.exceptions import CryptoError

__all__ = ["rs_encode", "rs_decode", "Share"]

#: A share: (index, data).  Index ``i`` encodes evaluation point
#: ``i + 1`` (zero is not a valid evaluation point).
Share = Tuple[int, bytes]

_LENGTH_HEADER = struct.Struct(">I")


def _evaluation_point(index: int) -> int:
    return index + 1


def rs_encode(data: bytes, n: int, k: int) -> List[bytes]:
    """Encode ``data`` into ``n`` shares, any ``k`` of which recover it.

    Parameters
    ----------
    data:
        Payload (length prefixed internally so padding is removable).
    n:
        Total shares; ``n <= 255`` (distinct non-zero field points).
    k:
        Reconstruction threshold, ``1 <= k <= n``.

    Returns
    -------
    list of bytes
        ``n`` equal-length shares; the share for index ``i`` must be
        presented to :func:`rs_decode` with that index.
    """
    if not 1 <= k <= n:
        raise CryptoError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > 255:
        raise CryptoError(f"GF(256) supports at most 255 shares, got {n}")
    framed = _LENGTH_HEADER.pack(len(data)) + data
    fragment_length = (len(framed) + k - 1) // k
    framed = framed.ljust(k * fragment_length, b"\x00")
    fragments = [framed[i * fragment_length:(i + 1) * fragment_length]
                 for i in range(k)]
    shares = []
    points = [_evaluation_point(i) for i in range(n)]
    for point in points:
        # Horner evaluation of the coefficient polynomial per byte.
        share = bytearray(fragment_length)
        for j in range(fragment_length):
            acc = 0
            for fragment in reversed(fragments):
                acc = gf_add(gf_mul(acc, point), fragment[j])
            share[j] = acc
        shares.append(bytes(share))
    return shares


def rs_decode(shares: Sequence[Share], k: int) -> bytes:
    """Recover the payload from any ``k`` (index, data) shares.

    Raises
    ------
    CryptoError
        On fewer than ``k`` shares, duplicate/invalid indices, or
        inconsistent share lengths.  A *wrong-content* share produces
        garbage output — integrity is the caller's signature check, as
        in SAIDA.
    """
    chosen: Dict[int, bytes] = {}
    for index, payload in shares:
        if index < 0 or index > 254:
            raise CryptoError(f"invalid share index {index}")
        if index in chosen:
            continue
        chosen[index] = bytes(payload)
        if len(chosen) == k:
            break
    if len(chosen) < k:
        raise CryptoError(f"need {k} distinct shares, got {len(chosen)}")
    lengths = {len(v) for v in chosen.values()}
    if len(lengths) != 1:
        raise CryptoError("shares have inconsistent lengths")
    fragment_length = lengths.pop()
    indices = sorted(chosen)
    points = [_evaluation_point(i) for i in indices]
    values = [chosen[i] for i in indices]
    # Lagrange interpolation: coefficient recovery per byte position.
    # Build the interpolation matrix once (independent of position).
    # c = V^{-1} y where V is the Vandermonde of the points; we invert
    # implicitly via Lagrange basis polynomials expanded to coefficients.
    basis = _lagrange_bases(points)
    framed = bytearray(k * fragment_length)
    for j in range(fragment_length):
        for coefficient_index in range(k):
            acc = 0
            for share_index in range(k):
                acc = gf_add(acc, gf_mul(basis[share_index][coefficient_index],
                                         values[share_index][j]))
            framed[coefficient_index * fragment_length + j] = acc
    (length,) = _LENGTH_HEADER.unpack_from(bytes(framed), 0)
    body = bytes(framed[_LENGTH_HEADER.size:_LENGTH_HEADER.size + length])
    if length > len(framed) - _LENGTH_HEADER.size:
        raise CryptoError("corrupt share set: impossible length header")
    return body


def _lagrange_bases(points: Sequence[int]) -> List[List[int]]:
    """Coefficients of each Lagrange basis polynomial L_i(x).

    ``L_i`` is 1 at ``points[i]`` and 0 at the others; the recovered
    polynomial is ``Σ y_i · L_i``, so its ``c``-th coefficient is
    ``Σ y_i · bases[i][c]``.
    """
    k = len(points)
    bases: List[List[int]] = []
    for i, x_i in enumerate(points):
        # numerator polynomial: product of (x - x_j) for j != i.
        coefficients = [1]  # constant polynomial 1
        denominator = 1
        for j, x_j in enumerate(points):
            if j == i:
                continue
            # multiply by (x + x_j)  (== x - x_j in GF(2^8))
            next_coefficients = [0] * (len(coefficients) + 1)
            for degree, coefficient in enumerate(coefficients):
                next_coefficients[degree + 1] = gf_add(
                    next_coefficients[degree + 1], coefficient)
                next_coefficients[degree] = gf_add(
                    next_coefficients[degree], gf_mul(coefficient, x_j))
            coefficients = next_coefficients
            denominator = gf_mul(denominator, gf_add(x_i, x_j))
        scaled = [gf_div(c, denominator) for c in coefficients]
        scaled += [0] * (k - len(scaled))
        bases.append(scaled[:k])
    return bases
