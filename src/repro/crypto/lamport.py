"""Lamport one-time signatures.

Included as the hash-based alternative signature algorithm: Boneh et
al. (cited by the paper) prove that efficient multicast authentication
*requires* signatures; Lamport signatures show what "signature" means
under hash-only assumptions and anchor the large-``l_sign`` end of the
overhead tradeoff in our Fig. 10 reproduction.

Construction (Lamport 1979): the private key is ``2 x 256`` random
values; the public key is their hashes.  To sign, reveal for each bit
of ``SHA-256(message)`` the private value selected by that bit.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import List, Optional, Tuple


__all__ = ["LamportKeyPair"]

_BITS = 256
_VALUE_SIZE = 32


def _hash(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _message_bits(message: bytes) -> List[int]:
    digest = _hash(message)
    return [(digest[i // 8] >> (7 - i % 8)) & 1 for i in range(_BITS)]


def _derive_values(seed: bytes) -> List[Tuple[bytes, bytes]]:
    """Derive the 2x256 private values deterministically from ``seed``."""
    values = []
    for i in range(_BITS):
        zero = _hash(seed + b"0" + i.to_bytes(2, "big"))
        one = _hash(seed + b"1" + i.to_bytes(2, "big"))
        values.append((zero, one))
    return values


@dataclass(frozen=True)
class LamportKeyPair:
    """A Lamport one-time key pair.

    Attributes
    ----------
    private_values:
        256 pairs of 32-byte secrets.
    public_values:
        The hashes of the corresponding secrets.
    """

    private_values: Tuple[Tuple[bytes, bytes], ...]
    public_values: Tuple[Tuple[bytes, bytes], ...]

    @property
    def signature_size(self) -> int:
        """Signatures reveal one 32-byte value per message bit."""
        return _BITS * _VALUE_SIZE

    @classmethod
    def generate(cls, seed: Optional[bytes] = None) -> "LamportKeyPair":
        """Generate a key pair, optionally deterministically from ``seed``."""
        if seed is None:
            seed = secrets.token_bytes(32)
        private = _derive_values(seed)
        public = [(_hash(zero), _hash(one)) for zero, one in private]
        return cls(tuple(private), tuple(public))

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` by revealing one secret per digest bit."""
        parts = [
            self.private_values[i][bit]
            for i, bit in enumerate(_message_bits(message))
        ]
        return b"".join(parts)

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a Lamport signature; wrong-size input returns ``False``."""
        if len(signature) != self.signature_size:
            return False
        for i, bit in enumerate(_message_bits(message)):
            value = signature[i * _VALUE_SIZE:(i + 1) * _VALUE_SIZE]
            if _hash(value) != self.public_values[i][bit]:
                return False
        return True

    def public_fingerprint(self) -> bytes:
        """A 32-byte digest of the public key, for bootstrap packets."""
        h = hashlib.sha256()
        for zero, one in self.public_values:
            h.update(zero)
            h.update(one)
        return h.digest()
