"""Arithmetic over GF(2^8) — the field under the erasure code.

The SAIDA-style erasure-coded authentication baseline needs a
Reed–Solomon code; Reed–Solomon needs a finite field.  This module
implements GF(256) with the AES polynomial ``x^8+x^4+x^3+x+1`` (0x11B)
via log/antilog tables built from the generator 0x03 at import time —
multiplications and inversions are table lookups.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import CryptoError

__all__ = ["gf_add", "gf_mul", "gf_div", "gf_inv", "gf_pow", "EXP", "LOG"]

_POLY = 0x11B
_GENERATOR = 0x03

# EXP[i] = generator^i (doubled length so gf_mul needs no modulo);
# LOG[x] = discrete log of x (LOG[0] unused).
EXP: List[int] = [0] * 512
LOG: List[int] = [0] * 256

_value = 1
for _i in range(255):
    EXP[_i] = _value
    LOG[_value] = _i
    # Multiply by the generator 0x03 = x + 1: v*3 = (v<<1) ^ v,
    # reduced modulo the field polynomial.
    doubled = _value << 1
    if doubled & 0x100:
        doubled ^= _POLY
    _value = doubled ^ _value
for _i in range(255, 512):
    EXP[_i] = EXP[_i - 255]


def gf_add(a: int, b: int) -> int:
    """Addition (= subtraction) in GF(256): XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiplication via log tables."""
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; 0 has none."""
    if a == 0:
        raise CryptoError("0 has no inverse in GF(256)")
    return EXP[255 - LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Division ``a / b``."""
    if b == 0:
        raise CryptoError("division by zero in GF(256)")
    if a == 0:
        return 0
    return EXP[(LOG[a] - LOG[b]) % 255]


def gf_pow(a: int, exponent: int) -> int:
    """``a ** exponent`` (exponent >= 0)."""
    if exponent < 0:
        raise CryptoError("negative exponents unsupported")
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return EXP[(LOG[a] * exponent) % 255]
