"""TESLA one-way key chains.

TESLA's loss robustness comes from its key chain: the sender picks a
random final key ``K_N`` and derives the chain backwards,
``K_{i-1} = F(K_i)``, publishing a signed commitment to ``K_0``.  Keys
are *disclosed* in forward order, so a receiver that missed the
disclosure of ``K_i`` can recover it from any later key ``K_j`` (j > i)
by applying ``F`` ``j - i`` times — this is the paper's
``λ_i = 1 - p^{n+1-i}`` (any one of the remaining disclosures
suffices).  MAC keys are domain-separated from chain keys via a second
PRF ``F'`` so that a disclosed chain key never equals a MAC key.
"""

from __future__ import annotations

import secrets
from typing import Optional

from repro.crypto.mac import Prf
from repro.exceptions import CryptoError

__all__ = ["KeyChain", "KeyChainCommitment"]

_CHAIN_PRF = Prf(label=b"tesla-chain", output_size=16)
_MAC_PRF = Prf(label=b"tesla-mac", output_size=16)


class KeyChainCommitment:
    """Receiver-side anchor: a trusted key at a known chain index.

    Starts as the signed commitment to ``K_0`` from the bootstrap
    packet, then ratchets forward as later keys are authenticated.
    """

    def __init__(self, index: int, key: bytes) -> None:
        self.index = index
        self.key = key

    def authenticate(self, claimed_index: int, claimed_key: bytes) -> bool:
        """Check ``claimed_key`` against the anchor and ratchet on success.

        A key claimed for index ``j > anchor`` is valid iff applying the
        chain PRF ``j - anchor`` times to it yields the anchored key.
        Keys at or before the anchor are checked without ratcheting.
        """
        if claimed_index < self.index:
            # The chain runs backwards (K_{i-1} = F(K_i)), so an *earlier*
            # key is derivable from the anchor: walk the anchor back.
            steps = self.index - claimed_index
            return _CHAIN_PRF.iterate(self.key, steps) == claimed_key
        steps = claimed_index - self.index
        if _CHAIN_PRF.iterate(claimed_key, steps) != self.key:
            return False
        self.index = claimed_index
        self.key = claimed_key
        return True


class KeyChain:
    """Sender-side one-way key chain of length ``length``.

    Index 0 is the committed anchor (never used for MACs); indices
    ``1..length`` key the MAC intervals.

    Parameters
    ----------
    length:
        Number of usable MAC intervals.
    seed:
        Optional fixed final key (``K_length``) for reproducibility.
    """

    def __init__(self, length: int, seed: Optional[bytes] = None) -> None:
        if length < 1:
            raise CryptoError(f"key chain length must be >= 1, got {length}")
        final = seed if seed is not None else secrets.token_bytes(16)
        keys = [final]
        for _ in range(length):
            keys.append(_CHAIN_PRF.apply(keys[-1]))
        keys.reverse()  # keys[i] is K_i; keys[0] is the commitment.
        self._keys = keys
        self.length = length

    def key(self, index: int) -> bytes:
        """Return chain key ``K_index`` (0 = commitment)."""
        if not 0 <= index <= self.length:
            raise CryptoError(f"chain index {index} out of range [0, {self.length}]")
        return self._keys[index]

    def mac_key(self, index: int) -> bytes:
        """Return the MAC key ``K'_index = F'(K_index)`` for interval ``index``."""
        if not 1 <= index <= self.length:
            raise CryptoError(f"MAC interval {index} out of range [1, {self.length}]")
        return _MAC_PRF.apply(self._keys[index])

    @property
    def commitment(self) -> bytes:
        """``K_0``, the value signed in the bootstrap packet."""
        return self._keys[0]

    @staticmethod
    def derive_mac_key(chain_key: bytes) -> bytes:
        """Receiver-side ``F'``: derive the MAC key from a chain key."""
        return _MAC_PRF.apply(chain_key)

    @staticmethod
    def walk_back(chain_key: bytes, steps: int) -> bytes:
        """Receiver-side ``F``: derive ``K_{i-steps}`` from ``K_i``."""
        return _CHAIN_PRF.iterate(chain_key, steps)
