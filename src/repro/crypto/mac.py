"""Message authentication codes and key derivation for TESLA.

TESLA (Perrig et al.) authenticates each packet with an HMAC whose key
is disclosed later.  Two independent functions are needed:

* the MAC itself, ``MAC = H_k(M)`` in the paper's Section 1, and
* a pseudo-random function (PRF) family used both to walk the key chain
  backwards (``K_{i-1} = F(K_i)``) and to derive the per-interval MAC
  key from the chain key (``K'_i = F'(K_i)``) so that disclosing a chain
  key never discloses a MAC key directly.

Both are built from HMAC here, which is the standard instantiation.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.crypto.hashing import HashFunction, sha256
from repro.exceptions import CryptoError

__all__ = ["Mac", "Prf", "hmac_sha256", "random_key", "constant_time_equal"]


def random_key(size: int = 16) -> bytes:
    """Return ``size`` cryptographically random bytes."""
    if size < 1:
        raise CryptoError(f"key size must be positive, got {size}")
    return secrets.token_bytes(size)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison (wraps :func:`hmac.compare_digest`)."""
    return hmac.compare_digest(a, b)


@dataclass(frozen=True)
class Mac:
    """An HMAC-based message authentication code with optional truncation.

    Parameters
    ----------
    hash_function:
        Underlying hash; the HMAC tag is truncated to its
        ``digest_size`` so that truncated registry entries (e.g.
        ``sha256/10``) yield truncated tags.
    """

    hash_function: HashFunction = sha256

    @property
    def tag_size(self) -> int:
        """Size in bytes of tags produced by :meth:`tag`."""
        return self.hash_function.digest_size

    def tag(self, key: bytes, message: bytes) -> bytes:
        """Compute the MAC tag of ``message`` under ``key``."""
        if not key:
            raise CryptoError("MAC key must be non-empty")
        full = hmac.new(key, message, hashlib.sha256).digest()
        return full[: self.tag_size]

    def verify(self, key: bytes, message: bytes, tag: bytes) -> bool:
        """Return ``True`` iff ``tag`` authenticates ``message`` under ``key``."""
        if len(tag) != self.tag_size:
            return False
        return constant_time_equal(self.tag(key, message), tag)


@dataclass(frozen=True)
class Prf:
    """A pseudo-random function family ``F_label: key -> key``.

    The ``label`` domain-separates independent PRFs derived from the
    same HMAC construction.  TESLA uses two: ``F`` (label ``b"chain"``)
    to derive the previous chain key, and ``F'`` (label ``b"mac"``) to
    derive MAC keys from chain keys.
    """

    label: bytes
    output_size: int = 16

    def apply(self, key: bytes) -> bytes:
        """Apply the PRF to ``key``, producing an ``output_size``-byte key."""
        if not key:
            raise CryptoError("PRF input key must be non-empty")
        out = hmac.new(key, self.label, hashlib.sha256).digest()
        return out[: self.output_size]

    def iterate(self, key: bytes, times: int) -> bytes:
        """Apply the PRF ``times`` times in sequence."""
        if times < 0:
            raise CryptoError(f"iteration count must be >= 0, got {times}")
        current = key
        for _ in range(times):
            current = self.apply(current)
        return current


hmac_sha256 = Mac(sha256)
