"""Textbook RSA signatures implemented from scratch.

The paper's signature-amortization schemes assume "a digital signature
algorithm" with a key pair held by the sender and distributed public
key; the concrete algorithm only matters through its signature length
``l_sign`` and its cost (which motivates amortization in the first
place).  No third-party crypto package is available offline, so this
module implements RSA end to end:

* Miller–Rabin probabilistic primality testing,
* random prime generation with a small-prime sieve prefilter,
* key generation (two distinct primes, ``e = 65537``, CRT parameters),
* deterministic PKCS#1 v1.5-style signature padding over SHA-256,
* sign (with CRT speedup) and verify.

This is a faithful *functional* substitute, not a hardened production
implementation — no blinding or constant-time arithmetic — which is
fine for a research reproduction where the adversary model is packet
loss, not side channels.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.exceptions import CryptoError

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair", "is_probable_prime"]

# Primes below 1000, used to cheaply reject most composite candidates
# before the Miller-Rabin rounds.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359,
    367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607,
    613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683,
    691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773,
    787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863,
    877, 881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967,
    971, 977, 983, 991, 997,
]

# ASN.1 DigestInfo prefix for SHA-256, as in PKCS#1 v1.5 (RFC 8017).
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test.

    Parameters
    ----------
    n:
        Candidate integer.
    rounds:
        Number of random bases; the error probability is at most
        ``4**-rounds`` for composite ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits, odd and with
    the top two bits set (so products of two such primes have full size)."""
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def _mod_inverse(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _pad_digest(digest: bytes, size: int) -> int:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 ``digest`` into ``size`` bytes."""
    payload = _SHA256_DIGEST_INFO + digest
    if size < len(payload) + 11:
        raise CryptoError(
            f"modulus too small for PKCS#1 padding: need {len(payload) + 11} bytes"
        )
    padding = b"\xff" * (size - len(payload) - 3)
    return int.from_bytes(b"\x00\x01" + padding + b"\x00" + payload, "big")


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        """Size of the modulus (and thus of signatures) in bytes."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes,
               hash_function: HashFunction = sha256) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``.

        A wrong-length signature returns ``False`` rather than raising:
        in the packet-loss setting, corrupt authentication data must be
        handled as a verification failure, not a crash.
        """
        if len(signature) != self.size_bytes:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        expected = _pad_digest(hash_function.digest(message), self.size_bytes)
        return pow(s, self.e, self.n) == expected


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(self.n, self.e)

    @property
    def size_bytes(self) -> int:
        """Size of the modulus (and thus of signatures) in bytes."""
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes, hash_function: HashFunction = sha256) -> bytes:
        """Produce a deterministic PKCS#1 v1.5 signature of ``message``."""
        m = _pad_digest(hash_function.digest(message), self.size_bytes)
        # CRT: compute m^d mod p and mod q separately, then recombine.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = _mod_inverse(self.q, self.p)
        sp = pow(m % self.p, dp, self.p)
        sq = pow(m % self.q, dq, self.q)
        h = (q_inv * (sp - sq)) % self.p
        s = sq + h * self.q
        return s.to_bytes(self.size_bytes, "big")


def generate_keypair(bits: int = 1024, e: int = 65537,
                     _primes: Optional[Tuple[int, int]] = None) -> RsaPrivateKey:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Parameters
    ----------
    bits:
        Modulus size.  1024 is plenty for tests and simulation; use
        2048+ if you care about actual security margins.
    e:
        Public exponent (default 65537).
    _primes:
        Test hook: a fixed ``(p, q)`` pair, bypassing prime generation.
    """
    if bits < 256:
        raise CryptoError(f"modulus too small: {bits} bits (need >= 256)")
    if e < 3 or e % 2 == 0:
        raise CryptoError(f"invalid public exponent: {e}")
    while True:
        if _primes is not None:
            p, q = _primes
        else:
            p = _random_prime(bits // 2)
            q = _random_prime(bits - bits // 2)
        if p == q:
            if _primes is not None:
                raise CryptoError("p and q must be distinct")
            continue
        phi = (p - 1) * (q - 1)
        g, _, _ = _extended_gcd(e, phi)
        if g != 1:
            if _primes is not None:
                raise CryptoError("e shares a factor with phi(n)")
            continue
        n = p * q
        d = _mod_inverse(e, phi)
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
