"""Merkle hash trees, the substrate of the Wong–Lam authentication tree.

In the Wong–Lam scheme ("Authentication Tree" in the paper's Section
2.2) the hashes of the packets in a block form the leaves of a binary
tree; internal nodes hash their children; the root is signed.  Each
packet then carries its *authentication path* — the sibling hashes from
its leaf to the root — so every packet is individually verifiable
regardless of which other packets are lost.  That per-packet path of
``ceil(log2 n)`` hashes is exactly the "high overhead" the paper
attributes to the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.exceptions import CryptoError

__all__ = ["MerkleTree", "MerkleProof"]

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


@dataclass(frozen=True)
class MerkleProof:
    """An authentication path for one leaf.

    Attributes
    ----------
    leaf_index:
        Position of the proven leaf.
    siblings:
        Sibling hashes from the leaf level up to (excluding) the root,
        each tagged with whether the sibling sits on the left.
    """

    leaf_index: int
    siblings: Tuple[Tuple[bytes, bool], ...]

    @property
    def size_bytes(self) -> int:
        """Wire size of the proof (hashes only)."""
        return sum(len(h) for h, _ in self.siblings)

    def __len__(self) -> int:
        return len(self.siblings)


class MerkleTree:
    """A binary Merkle tree over a sequence of leaf payloads.

    Leaves and internal nodes are domain-separated (prefix bytes) to
    rule out second-preimage tricks between the two levels.  Odd nodes
    at any level are promoted unchanged, so the tree accepts any leaf
    count >= 1.

    Parameters
    ----------
    leaves:
        Raw leaf payloads (packet bytes in Wong–Lam).
    hash_function:
        Hash used throughout; its size determines proof overhead.
    """

    def __init__(self, leaves: Sequence[bytes],
                 hash_function: HashFunction = sha256) -> None:
        if not leaves:
            raise CryptoError("Merkle tree needs at least one leaf")
        self._hash = hash_function
        leaf_hashes = [hash_function.digest(_LEAF_PREFIX + leaf) for leaf in leaves]
        # levels[0] is the leaf level; levels[-1] is [root].
        self._levels: List[List[bytes]] = [leaf_hashes]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            above = []
            for i in range(0, len(below) - 1, 2):
                combined = _NODE_PREFIX + below[i] + below[i + 1]
                above.append(hash_function.digest(combined))
            if len(below) % 2 == 1:
                above.append(below[-1])
            self._levels.append(above)

    @property
    def leaf_count(self) -> int:
        """Number of leaves the tree was built over."""
        return len(self._levels[0])

    @property
    def root(self) -> bytes:
        """The root hash; this is what Wong–Lam signs."""
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self._levels) - 1

    def proof(self, leaf_index: int) -> MerkleProof:
        """Build the authentication path for ``leaf_index``."""
        if not 0 <= leaf_index < self.leaf_count:
            raise CryptoError(
                f"leaf index {leaf_index} out of range [0, {self.leaf_count})"
            )
        siblings: List[Tuple[bytes, bool]] = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling = index ^ 1
            if sibling < len(level):
                siblings.append((level[sibling], sibling < index))
            index //= 2
        return MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings))

    def verify(self, leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Recompute the root from ``leaf`` and ``proof`` and compare."""
        return self.verify_static(leaf, proof, root, self._hash)

    @staticmethod
    def verify_static(leaf: bytes, proof: MerkleProof, root: bytes,
                      hash_function: HashFunction = sha256) -> bool:
        """Verification without a tree instance (receiver side)."""
        current = hash_function.digest(_LEAF_PREFIX + leaf)
        for sibling, sibling_is_left in proof.siblings:
            if sibling_is_left:
                combined = _NODE_PREFIX + sibling + current
            else:
                combined = _NODE_PREFIX + current + sibling
            current = hash_function.digest(combined)
        return current == root
