"""Cryptographic substrate: hashes, MACs, signatures, trees, key chains.

Everything the paper's schemes assume — "a hash function", "a MAC",
"a digital signature", "a pseudo-random function" — is implemented here
from the Python standard library only (``hashlib``/``hmac``/``secrets``
plus from-scratch RSA arithmetic).
"""

from repro.crypto.batch import (
    BatchAttachment,
    BatchSigner,
    BatchVerifier,
    StreamBatchSigner,
    batch_attachment_size,
    decode_batch_attachment,
    encode_batch_attachment,
    is_batch_attachment,
)
from repro.crypto.gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.crypto.hashing import (
    HashFunction,
    available_hashes,
    get_hash,
    register_hash,
    sha1,
    sha256,
    truncated,
)
from repro.crypto.keychain import KeyChain, KeyChainCommitment
from repro.crypto.lamport import LamportKeyPair
from repro.crypto.mac import Mac, Prf, constant_time_equal, hmac_sha256, random_key
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.reed_solomon import rs_decode, rs_encode
from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    is_probable_prime,
)
from repro.crypto.signatures import (
    HmacStubSigner,
    LamportSigner,
    RsaSigner,
    Signer,
    default_signer,
)

__all__ = [
    "BatchAttachment",
    "BatchSigner",
    "BatchVerifier",
    "StreamBatchSigner",
    "batch_attachment_size",
    "decode_batch_attachment",
    "encode_batch_attachment",
    "is_batch_attachment",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
    "rs_decode",
    "rs_encode",
    "HashFunction",
    "available_hashes",
    "get_hash",
    "register_hash",
    "sha1",
    "sha256",
    "truncated",
    "KeyChain",
    "KeyChainCommitment",
    "LamportKeyPair",
    "Mac",
    "Prf",
    "constant_time_equal",
    "hmac_sha256",
    "random_key",
    "MerkleProof",
    "MerkleTree",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "is_probable_prime",
    "HmacStubSigner",
    "LamportSigner",
    "RsaSigner",
    "Signer",
    "default_signer",
]
