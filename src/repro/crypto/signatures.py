"""Uniform signer/verifier interface over concrete signature algorithms.

Schemes in :mod:`repro.schemes` only need four things from a signature
algorithm: ``sign``, ``verify``, the signature size ``l_sign`` (which
drives the paper's overhead model, Eq. 3) and a name.  This module
defines that protocol and adapters for the two algorithms shipped with
the library (from-scratch RSA and Lamport one-time signatures), plus a
fast insecure stand-in for large Monte Carlo simulations where we model
loss, not forgery.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.lamport import LamportKeyPair
from repro.crypto.rsa import RsaPrivateKey, generate_keypair
from repro.exceptions import CryptoError

__all__ = [
    "Signer",
    "RsaSigner",
    "LamportSigner",
    "HmacStubSigner",
    "default_signer",
]


@runtime_checkable
class Signer(Protocol):
    """The signature-algorithm interface consumed by schemes.

    Attributes
    ----------
    name:
        Human-readable algorithm name for reports.
    signature_size:
        ``l_sign`` in bytes — the per-signature wire overhead.
    """

    name: str
    signature_size: int

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; the result has length ``signature_size``."""
        ...

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check ``signature`` over ``message``; never raises on bad input."""
        ...


@dataclass
class RsaSigner:
    """Adapter exposing :mod:`repro.crypto.rsa` through :class:`Signer`."""

    private_key: RsaPrivateKey
    hash_function: HashFunction = sha256
    name: str = "rsa"

    @property
    def signature_size(self) -> int:
        """Signatures are exactly one modulus in size."""
        return self.private_key.size_bytes

    @classmethod
    def generate(cls, bits: int = 1024) -> "RsaSigner":
        """Generate a fresh key pair and wrap it."""
        return cls(private_key=generate_keypair(bits))

    def sign(self, message: bytes) -> bytes:
        return self.private_key.sign(message, self.hash_function)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.private_key.public_key.verify(
            message, signature, self.hash_function
        )


@dataclass
class LamportSigner:
    """One-time Lamport signatures behind the :class:`Signer` interface.

    Lamport signatures are *one-time*: signing two different messages
    with the same key leaks the key.  :meth:`sign` therefore enforces a
    single use.  They illustrate the other end of the ``l_sign``
    spectrum — enormous signatures, hash-only assumptions.
    """

    keypair: LamportKeyPair
    name: str = "lamport"
    _used: bool = field(default=False, repr=False)

    @property
    def signature_size(self) -> int:
        return self.keypair.signature_size

    @classmethod
    def generate(cls, seed: bytes = b"") -> "LamportSigner":
        """Generate a fresh one-time key pair (optionally seeded)."""
        return cls(keypair=LamportKeyPair.generate(seed or None))

    def sign(self, message: bytes) -> bytes:
        if self._used:
            raise CryptoError("Lamport key already used; one-time signatures only")
        self._used = True
        return self.keypair.sign(message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.keypair.verify(message, signature)


@dataclass(frozen=True)
class HmacStubSigner:
    """A keyed-hash stand-in for a signature, for high-volume simulation.

    Monte Carlo experiments sign thousands of blocks; real RSA would
    dominate runtime without changing any loss-related observable.
    This signer produces an HMAC tag padded to a configurable
    ``signature_size`` so the *overhead accounting* still matches a real
    algorithm.  It is NOT a signature (any key holder can forge) and is
    clearly named to avoid misuse.
    """

    key: bytes
    signature_size: int = 128
    name: str = "hmac-stub"

    def sign(self, message: bytes) -> bytes:
        tag = hmac.new(self.key, message, "sha256").digest()
        if self.signature_size < len(tag):
            return tag[: self.signature_size]
        return tag + b"\x00" * (self.signature_size - len(tag))

    def verify(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != self.signature_size:
            return False
        return hmac.compare_digest(self.sign(message), signature)


def default_signer(fast: bool = True) -> Signer:
    """Return a reasonable default signer.

    Parameters
    ----------
    fast:
        When ``True`` (default) return an :class:`HmacStubSigner` with
        RSA-1024-sized output, suitable for loss simulation.  When
        ``False`` generate a real RSA-1024 signer.
    """
    if fast:
        return HmacStubSigner(key=b"repro-default-simulation-key")
    return RsaSigner.generate(1024)
