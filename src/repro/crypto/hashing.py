"""Hash-function registry used throughout the library.

Hash-chained authentication schemes amortize one signature over a block
of packets by embedding packet hashes in other packets.  The *length*
of the hash (``l_hash`` in the paper's Eq. 3) is a first-class modeling
parameter: the paper's overhead analysis depends on it, and deployed
schemes frequently truncate hashes (e.g. EMSS in Perrig et al. uses
80-bit truncated hashes).

This module exposes a small, explicit registry of hash functions with
optional truncation.  All hashing in the library goes through
:class:`HashFunction` so that analysis code and wire-format code agree
on sizes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from repro.exceptions import CryptoError

__all__ = [
    "HashFunction",
    "get_hash",
    "register_hash",
    "available_hashes",
    "sha256",
    "sha1",
    "truncated",
]

_DigestFactory = Callable[[], "hashlib._Hash"]


@dataclass(frozen=True)
class HashFunction:
    """A named hash function with a fixed digest size.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"sha256"`` or ``"sha256/10"`` for a
        truncated variant.
    digest_size:
        Size of the produced digest in bytes.  For truncated variants
        this is the truncated size.
    _factory:
        Zero-argument callable returning a hashlib-style object.
    """

    name: str
    digest_size: int
    _factory: _DigestFactory

    def digest(self, data: bytes) -> bytes:
        """Return the (possibly truncated) digest of ``data``."""
        h = self._factory()
        h.update(data)
        return h.digest()[: self.digest_size]

    def hexdigest(self, data: bytes) -> str:
        """Return the digest of ``data`` as a hex string."""
        return self.digest(data).hex()

    def chain(self, parts: Iterable[bytes]) -> bytes:
        """Hash the concatenation of ``parts``.

        This is the "hash-and-concatenate" primitive of the paper's
        Section 2.2: the hash of a packet is computed over its payload
        concatenated with the hashes it carries.
        """
        h = self._factory()
        for part in parts:
            h.update(part)
        return h.digest()[: self.digest_size]

    def truncated(self, size: int) -> "HashFunction":
        """Return a truncated variant of this hash function.

        Parameters
        ----------
        size:
            Truncated digest size in bytes; must satisfy
            ``1 <= size <= self.digest_size``.
        """
        if not 1 <= size <= self.digest_size:
            raise CryptoError(
                f"cannot truncate {self.name} ({self.digest_size} B) to {size} B"
            )
        if size == self.digest_size:
            return self
        base = self.name.split("/", 1)[0]
        return HashFunction(f"{base}/{size}", size, self._factory)


_REGISTRY: Dict[str, HashFunction] = {}


def register_hash(function: HashFunction) -> None:
    """Add ``function`` to the global registry under its own name."""
    _REGISTRY[function.name] = function


def get_hash(name: str) -> HashFunction:
    """Look up a hash function by registry name.

    Truncated variants may be requested on the fly with the
    ``"<base>/<bytes>"`` syntax, e.g. ``get_hash("sha256/10")`` for an
    80-bit truncated SHA-256 as used by EMSS.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    if "/" in name:
        base_name, _, size_text = name.partition("/")
        try:
            size = int(size_text)
        except ValueError as exc:
            raise CryptoError(f"malformed truncated hash name: {name!r}") from exc
        base = get_hash(base_name)
        function = base.truncated(size)
        register_hash(function)
        return function
    raise CryptoError(f"unknown hash function: {name!r}")


def available_hashes() -> Dict[str, int]:
    """Return a mapping of registered hash names to digest sizes."""
    return {name: fn.digest_size for name, fn in sorted(_REGISTRY.items())}


sha256 = HashFunction("sha256", 32, hashlib.sha256)
sha1 = HashFunction("sha1", 20, hashlib.sha1)
_md5 = HashFunction("md5", 16, hashlib.md5)

register_hash(sha256)
register_hash(sha1)
register_hash(_md5)


def truncated(base: str, size: int) -> HashFunction:
    """Convenience wrapper: ``truncated("sha256", 10)``."""
    return get_hash(base).truncated(size)
