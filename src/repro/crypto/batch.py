"""Batch signing: one signature amortized over many block digests.

The paper's chain constructions amortize a signature *inside* a block;
MABS (Multicast Authentication based on Batch Signature, PAPERS.md)
amortizes *across* blocks: accumulate the digests of N pending blocks,
build a :class:`~repro.crypto.merkle.MerkleTree` over them, sign the
root once, and attach to every block a compact proof — its Merkle
authentication path plus the shared root signature.  Verifying N
blocks then costs N cheap hash walks and a *single* public-key
verification (cached), instead of N signatures.

Three moving parts:

* :class:`BatchSigner` — the sender-side accumulator.  ``append``
  collects leaf messages (a block's ``auth_bytes``); ``flush`` builds
  the tree, signs the domain-separated ``(leaf_count, root)`` message
  with the wrapped signer and returns one encoded
  :class:`BatchAttachment` per leaf, in append order.
* :class:`BatchVerifier` — a :class:`~repro.crypto.signatures.Signer`-
  protocol verifier that recognizes batch attachments by magic prefix,
  recomputes the root from the message and the proof, and checks the
  root signature through a bounded ``(root, signature)`` cache so a
  whole batch costs one real verification.  Non-batch signatures fall
  through to the wrapped signer unchanged, so the same verifier serves
  batched and per-block senders.
* the wire codec — a strict, size-capped, *canonical* encoding of the
  attachment.  Every structural fact (sibling count, side bits) is
  recomputed from ``(leaf_index, leaf_count)`` and must match exactly,
  so each attachment has exactly one valid byte form and any single-bit
  mutation is rejected, raising through the existing
  :class:`~repro.exceptions.WireDecodeError` taxonomy.

:class:`StreamBatchSigner` adapts the construction to harnesses that
need a synchronous drop-in ``Signer``: each ``sign`` call embeds the
message in a deterministic ``batch_size``-leaf tree (the other leaves
standing in for concurrent streams' block digests, derived from the
seed and the message so sharded trials stay bit-for-bit identical).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.signatures import Signer
from repro.exceptions import (
    CryptoError,
    HeaderFormatError,
    OverlongBlobError,
    TrailingBytesError,
    TruncatedPacketError,
)

__all__ = [
    "BATCH_MAGIC",
    "MAX_PROOF_SIBLINGS",
    "MAX_BATCH_LEAVES",
    "BatchAttachment",
    "encode_batch_attachment",
    "decode_batch_attachment",
    "is_batch_attachment",
    "batch_attachment_size",
    "expected_proof_sides",
    "BatchSigner",
    "BatchVerifier",
    "StreamBatchSigner",
]

#: First bytes of every encoded batch attachment.  Verifiers route on
#: it: anything else is handed to the wrapped signer unchanged.
BATCH_MAGIC = b"BSG\x01"

#: Hard cap on the authentication-path length — a 2^32-leaf tree needs
#: 32 siblings, so nothing legitimate ever exceeds it and a hostile
#: count cannot drive unbounded decode work.
MAX_PROOF_SIBLINGS = 32

#: Hard cap on the declared leaf count (matches the proof-sibling cap).
MAX_BATCH_LEAVES = 1 << MAX_PROOF_SIBLINGS

#: Hash sizes accepted on the wire (sha256 .. sha512 and truncations).
_MAX_HASH_BYTES = 64

#: Root-signature blob cap, aligned with the packet wire cap.
_MAX_ROOT_SIG_BYTES = 1 << 20

#: Domain separator for root signatures: a batch root can never be
#: confused with a directly signed block digest.
_ROOT_DOMAIN = b"repro-batch-root-v1:"

_U32 = struct.Struct(">I")


def _root_message(leaf_count: int, root: bytes) -> bytes:
    """The byte string a batch root signature actually covers.

    The declared leaf count is bound into the signature: two different
    counts can describe the *same* proof structure for one leaf (e.g.
    a leaf at index 2 of 5 and of 7 walk identical side sequences), so
    a count left outside the signed message would be malleable.
    """
    return _ROOT_DOMAIN + _U32.pack(leaf_count) + root


@dataclass(frozen=True)
class BatchAttachment:
    """One block's share of a batch signature.

    ``leaf_index`` / ``leaf_count`` locate the block's digest in the
    signed tree, ``proof`` is its authentication path and
    ``root_signature`` the wrapped signer's signature over the
    domain-separated root (shared by every attachment of the batch).
    """

    leaf_index: int
    leaf_count: int
    proof: MerkleProof
    root_signature: bytes

    @property
    def size_bytes(self) -> int:
        """Encoded wire size of this attachment."""
        return (len(BATCH_MAGIC) + 4 + 4 + 1
                + sum(1 + 1 + len(h) for h, _ in self.proof.siblings)
                + 4 + len(self.root_signature))


def expected_proof_sides(leaf_index: int,
                         leaf_count: int) -> Tuple[bool, ...]:
    """The canonical side-flag sequence for a leaf's authentication path.

    Recomputed purely from ``(leaf_index, leaf_count)`` by replaying
    the tree shape (odd nodes promote unchanged, exactly like
    :class:`~repro.crypto.merkle.MerkleTree`): one entry per level
    where the node *has* a sibling, ``True`` when the sibling sits on
    the left.  Decode validates an attachment's structure against this,
    which makes the encoding canonical and any bit flip in the index,
    count or side bytes detectable.
    """
    if not 0 <= leaf_index < leaf_count:
        raise CryptoError(
            f"leaf index {leaf_index} out of range [0, {leaf_count})")
    sides: List[bool] = []
    index, size = leaf_index, leaf_count
    while size > 1:
        sibling = index ^ 1
        if sibling < size:
            sides.append(sibling < index)
        index //= 2
        size = size // 2 + size % 2
    return tuple(sides)


def batch_attachment_size(batch_size: int, hash_size: int,
                          signature_size: int) -> int:
    """Nominal encoded size of an attachment for a full batch."""
    sides = expected_proof_sides(0, max(batch_size, 1))
    return (len(BATCH_MAGIC) + 4 + 4 + 1
            + len(sides) * (1 + 1 + hash_size)
            + 4 + signature_size)


def encode_batch_attachment(attachment: BatchAttachment) -> bytes:
    """Serialize an attachment into its canonical wire form."""
    sides = expected_proof_sides(attachment.leaf_index,
                                 attachment.leaf_count)
    siblings = attachment.proof.siblings
    if len(siblings) != len(sides) or any(
            got != want for (_, got), want in zip(siblings, sides)):
        raise CryptoError(
            "proof structure does not match (leaf_index, leaf_count)")
    if len(attachment.root_signature) > _MAX_ROOT_SIG_BYTES:
        raise CryptoError("root signature exceeds the wire cap")
    parts = [BATCH_MAGIC,
             _U32.pack(attachment.leaf_index),
             _U32.pack(attachment.leaf_count),
             bytes([len(siblings)])]
    for digest, sibling_is_left in siblings:
        if not 1 <= len(digest) <= _MAX_HASH_BYTES:
            raise CryptoError(
                f"sibling hash of {len(digest)} bytes outside [1, "
                f"{_MAX_HASH_BYTES}]")
        parts.append(bytes([1 if sibling_is_left else 0, len(digest)]))
        parts.append(digest)
    parts.append(_U32.pack(len(attachment.root_signature)))
    parts.append(attachment.root_signature)
    return b"".join(parts)


def is_batch_attachment(blob: Optional[bytes]) -> bool:
    """Whether ``blob`` claims to be a batch attachment (magic prefix)."""
    return blob is not None and blob.startswith(BATCH_MAGIC)


class _Cursor:
    """Strict forward-only reader over an attachment buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int, what: str) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise TruncatedPacketError(
                f"batch attachment truncated reading {what}: need "
                f"{count} bytes at offset {self.offset}, have "
                f"{len(self.data) - self.offset}")
        piece = self.data[self.offset:end]
        self.offset = end
        return piece


def decode_batch_attachment(data: bytes) -> BatchAttachment:
    """Strict canonical decode; raises the ``WireDecodeError`` taxonomy.

    Every declared length is capped before allocation, the sibling
    structure must match :func:`expected_proof_sides` exactly, and no
    trailing bytes are tolerated — so encode/decode round-trips
    canonically and a decoded attachment re-encodes to the same bytes.
    """
    cursor = _Cursor(data)
    magic = cursor.take(len(BATCH_MAGIC), "magic")
    if magic != BATCH_MAGIC:
        raise HeaderFormatError(
            f"bad batch-attachment magic {magic!r}")
    leaf_index = _U32.unpack(cursor.take(4, "leaf index"))[0]
    leaf_count = _U32.unpack(cursor.take(4, "leaf count"))[0]
    if leaf_count < 1 or leaf_count > MAX_BATCH_LEAVES:
        raise HeaderFormatError(
            f"batch leaf count {leaf_count} outside [1, {MAX_BATCH_LEAVES}]")
    if leaf_index >= leaf_count:
        raise HeaderFormatError(
            f"batch leaf index {leaf_index} >= leaf count {leaf_count}")
    sides = expected_proof_sides(leaf_index, leaf_count)
    sibling_count = cursor.take(1, "sibling count")[0]
    if sibling_count > MAX_PROOF_SIBLINGS:
        raise OverlongBlobError(
            f"proof declares {sibling_count} siblings, cap is "
            f"{MAX_PROOF_SIBLINGS}")
    if sibling_count != len(sides):
        raise HeaderFormatError(
            f"proof declares {sibling_count} siblings; a leaf at "
            f"{leaf_index}/{leaf_count} has exactly {len(sides)}")
    siblings: List[Tuple[bytes, bool]] = []
    hash_size: Optional[int] = None
    for level, expected_side in enumerate(sides):
        side_byte, length = cursor.take(2, f"sibling {level} header")
        if side_byte not in (0, 1):
            raise HeaderFormatError(
                f"sibling {level} side byte must be 0 or 1, got {side_byte}")
        if bool(side_byte) != expected_side:
            raise HeaderFormatError(
                f"sibling {level} side contradicts leaf position "
                f"{leaf_index}/{leaf_count}")
        if not 1 <= length <= _MAX_HASH_BYTES:
            raise OverlongBlobError(
                f"sibling {level} hash declares {length} bytes, outside "
                f"[1, {_MAX_HASH_BYTES}]")
        if hash_size is None:
            hash_size = length
        elif length != hash_size:
            raise HeaderFormatError(
                f"sibling {level} hash size {length} differs from the "
                f"proof's {hash_size}")
        siblings.append((cursor.take(length, f"sibling {level} hash"),
                         bool(side_byte)))
    sig_length = _U32.unpack(cursor.take(4, "root signature length"))[0]
    if sig_length > _MAX_ROOT_SIG_BYTES:
        raise OverlongBlobError(
            f"root signature declares {sig_length} bytes, cap is "
            f"{_MAX_ROOT_SIG_BYTES}")
    root_signature = cursor.take(sig_length, "root signature")
    if cursor.offset != len(data):
        raise TrailingBytesError(
            f"{len(data) - cursor.offset} trailing bytes after batch "
            f"attachment")
    return BatchAttachment(
        leaf_index=leaf_index, leaf_count=leaf_count,
        proof=MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings)),
        root_signature=root_signature)


class BatchSigner:
    """Sender-side batch accumulator: N block digests, one signature.

    Parameters
    ----------
    signer:
        The real signer; its one signature per flush covers every
        appended message.
    hash_function:
        Tree hash; must match the verifier's.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256) -> None:
        self._signer = signer
        self._hash = hash_function
        self._messages: List[bytes] = []
        self.signs = 0
        self.last_root: Optional[bytes] = None

    @property
    def pending(self) -> int:
        """Messages appended since the last flush."""
        return len(self._messages)

    def append(self, message: bytes) -> int:
        """Queue one leaf message; returns its index in the open batch."""
        self._messages.append(bytes(message))
        return len(self._messages) - 1

    def flush(self) -> List[bytes]:
        """Sign the pending batch; encoded attachments in append order.

        Returns an empty list when nothing is pending.  The underlying
        signer runs exactly once per non-empty flush.
        """
        if not self._messages:
            return []
        tree = MerkleTree(self._messages, self._hash)
        count = len(self._messages)
        root_signature = self._signer.sign(_root_message(count, tree.root))
        self.signs += 1
        self.last_root = tree.root
        attachments = [
            encode_batch_attachment(BatchAttachment(
                leaf_index=index, leaf_count=count,
                proof=tree.proof(index), root_signature=root_signature))
            for index in range(count)
        ]
        self._messages = []
        return attachments


class BatchVerifier:
    """Signer-protocol verifier for batch attachments (and passthrough).

    ``verify`` routes on the magic prefix: batch attachments are
    strictly decoded, the root recomputed from the message's leaf hash
    and the proof, and the root signature checked through a bounded
    cache keyed on ``(leaf_count, root, signature)`` — so the N blocks
    of a batch cost one real public-key verification.  Caching the
    exact triple (not the root alone) keeps a tampered signature or
    count from poisoning the verdict of the genuine one.

    Everything that is not a batch attachment is delegated to the
    wrapped signer unchanged, so one verifier instance serves batched
    and per-block senders alike.  ``sign`` is intentionally refused —
    this is the public half.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256,
                 max_cached_roots: int = 1024) -> None:
        if max_cached_roots < 1:
            raise CryptoError(
                f"need a positive root cache, got {max_cached_roots}")
        self._signer = signer
        self._hash = hash_function
        self._max_cached = max_cached_roots
        self._cache: Dict[Tuple[int, bytes, bytes], bool] = {}
        self.name = f"batch+{signer.name}"
        self.signature_size = signer.signature_size
        self.root_verifies = 0
        self.cache_hits = 0
        self.decode_failures = 0
        self.proof_failures = 0
        self.passthrough_verifies = 0

    def sign(self, message: bytes) -> bytes:
        raise CryptoError("BatchVerifier is verify-only; sign with a "
                          "BatchSigner")

    def verify(self, message: bytes, signature: bytes) -> bool:
        if signature is None:
            return False
        if not is_batch_attachment(signature):
            self.passthrough_verifies += 1
            return self._signer.verify(message, signature)
        try:
            attachment = decode_batch_attachment(signature)
        except Exception:
            self.decode_failures += 1
            return False
        root = self._walk(message, attachment.proof)
        key = (attachment.leaf_count, root, attachment.root_signature)
        verdict = self._cache.get(key)
        if verdict is None:
            verdict = self._signer.verify(
                _root_message(attachment.leaf_count, root),
                attachment.root_signature)
            self.root_verifies += 1
            if len(self._cache) >= self._max_cached:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = verdict
        else:
            self.cache_hits += 1
        if not verdict:
            self.proof_failures += 1
        return verdict

    def _walk(self, leaf: bytes, proof: MerkleProof) -> bytes:
        current = self._hash.digest(b"\x00" + leaf)
        for sibling, sibling_is_left in proof.siblings:
            if sibling_is_left:
                current = self._hash.digest(b"\x01" + sibling + current)
            else:
                current = self._hash.digest(b"\x01" + current + sibling)
        return current


class StreamBatchSigner:
    """Drop-in ``Signer`` modelling one stream's slice of a batch.

    Harnesses like the adversarial conformance runner need a
    synchronous ``sign``: the signature must come back before the next
    packet is built, so cross-call accumulation is impossible without
    breaking their per-trial determinism contract.  This adapter signs
    each message as one leaf of a ``batch_size``-leaf tree whose other
    leaves stand in for concurrent streams' block digests — exactly the
    multi-stream scenario MABS batches across — derived from the seed
    and the message itself, so the output is a pure function of
    ``(seed, message)`` and sharded trials remain bit-for-bit
    reproducible.

    The attachments exercise the full receive path (strict decode,
    proof walk, domain-separated root signature, caching); only the
    sender-side amortization is synthetic.
    """

    def __init__(self, signer: Signer, batch_size: int, seed: int = 0,
                 hash_function: HashFunction = sha256) -> None:
        if batch_size < 1:
            raise CryptoError(f"batch size must be >= 1, got {batch_size}")
        self._signer = signer
        self._hash = hash_function
        self.batch_size = batch_size
        self._seed_bytes = b"stream-batch:%d:" % seed
        self._verifier = BatchVerifier(signer, hash_function)
        self.name = f"batch{batch_size}+{signer.name}"
        self.signature_size = batch_attachment_size(
            batch_size, hash_function.digest_size, signer.signature_size)

    def sign(self, message: bytes) -> bytes:
        anchor = self._hash.digest(self._seed_bytes + message)
        position = anchor[0] % self.batch_size
        leaves: List[bytes] = []
        for slot in range(self.batch_size - 1):
            leaves.append(self._hash.digest(
                self._seed_bytes + anchor + b"%d" % slot))
        leaves.insert(position, message)
        tree = MerkleTree(leaves, self._hash)
        root_signature = self._signer.sign(
            _root_message(self.batch_size, tree.root))
        return encode_batch_attachment(BatchAttachment(
            leaf_index=position, leaf_count=self.batch_size,
            proof=tree.proof(position), root_signature=root_signature))

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self._verifier.verify(message, signature)

    @property
    def verifier(self) -> BatchVerifier:
        """The verifier half (cache statistics live here)."""
        return self._verifier
