"""Command-line entry point: run the paper's experiments from a shell.

Installed as ``repro-experiments``::

    repro-experiments --list
    repro-experiments fig8 fig9
    repro-experiments --all --fast
    repro-experiments fig10 --json > fig10.json
    repro-experiments fig9 --metrics-out metrics.json --profile
    repro-experiments fig8 --trace-out trace.jsonl
    repro-experiments bench-report .benchmarks --out BENCH_today.json
    repro-experiments bench-diff BENCH_BASELINE.json BENCH_today.json
    repro-experiments design-table build --out table.json --workers 4
    repro-experiments design-table show table.json
    repro-experiments serve --receivers 8 --ramp 20:0.3 --attack pollution
    repro-experiments loadgen --receivers 64 --attack pollution \
        --metrics-out soak.json --lifecycle-out lifecycle.jsonl

Observability flags (see ``docs/observability.md``): ``--metrics-out``
writes one run manifest + metrics snapshot per experiment,
``--trace-out`` streams span begin/end records as JSON lines, and
``--profile`` prints the top cumulative spans after the run.  All
three are bit-for-bit neutral: results are identical with or without
them.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult

__all__ = ["main", "result_to_dict"]

PROFILE_TOP = 12


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable view of an experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "series": {
            label: {"x": list(series.x), "y": list(series.y)}
            for label, series in result.series.items()
        },
        "notes": result.notes,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures and tables of 'A graph-theoretical "
            "analysis of multicast authentication' (ICDCS 2003)."
        ),
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list), or the "
                             "'bench-report', 'bench-diff', 'design-table', "
                             "'serve' and 'loadgen' subcommands")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sweep resolution")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list experiment ids and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit results as a JSON array")
    parser.add_argument("--report", metavar="PATH", dest="report_path",
                        help="write a full markdown report to PATH")
    parser.add_argument("--workers", type=int, metavar="N", default=None,
                        help=(
                            "process-pool size for Monte-Carlo sweeps "
                            "(default: all CPUs, or $REPRO_WORKERS; 1 = "
                            "serial, identical output for any value)"
                        ))
    parser.add_argument("--attack", metavar="MIXES", default=None,
                        help=(
                            "comma-separated attack mixes for the "
                            "adversarial experiment (known: pollution, dos; "
                            "default: all) — e.g. --attack pollution"
                        ))
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help=(
                            "write per-experiment run manifests and metric "
                            "snapshots (counters, span timings, histograms) "
                            "as JSON to FILE"
                        ))
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="stream span begin/end records to FILE as "
                             "JSON lines")
    parser.add_argument("--profile", action="store_true",
                        help=f"print the top {PROFILE_TOP} cumulative spans "
                             "after the run")
    return parser


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench-report",
        description=(
            "Fold pytest-benchmark JSON output (from 'pytest benchmarks/ "
            "--benchmark-autosave' or --benchmark-json) into a single "
            "BENCH_<date>.json trajectory file."
        ),
    )
    parser.add_argument("directory", nargs="?", default=".benchmarks",
                        help="directory holding pytest-benchmark JSON "
                             "files (default: .benchmarks)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="output path (default: BENCH_<date>.json)")
    return parser


def _bench_report_main(argv: List[str]) -> int:
    from repro.exceptions import AnalysisError
    from repro.obs.bench import write_bench_report

    args = _build_bench_parser().parse_args(argv)
    try:
        out_path = write_bench_report(args.directory, args.out)
    except AnalysisError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"benchmark trajectory written to {out_path}")
    return 0


def _build_bench_diff_parser() -> argparse.ArgumentParser:
    from repro.obs.bench import DEFAULT_REGRESSION_THRESHOLD

    parser = argparse.ArgumentParser(
        prog="repro-experiments bench-diff",
        description=(
            "Compare two bench-report trajectory files and exit non-zero "
            "when any benchmark regressed beyond the threshold — the CI "
            "performance gate."
        ),
    )
    parser.add_argument("baseline", help="baseline bench-report JSON "
                                         "(e.g. BENCH_BASELINE.json)")
    parser.add_argument("current", help="bench-report JSON to judge")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_REGRESSION_THRESHOLD, metavar="F",
                        help="allowed fractional slowdown before a "
                             "benchmark counts as regressed (default "
                             f"{DEFAULT_REGRESSION_THRESHOLD:g} = "
                             f"{DEFAULT_REGRESSION_THRESHOLD:.0%})")
    parser.add_argument("--metric", choices=("min", "mean"), default="min",
                        help="headline stat to compare (default min: "
                             "noise-robust)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full diff as JSON")
    parser.add_argument("--fail-on-missing", action="store_true",
                        dest="fail_on_missing",
                        help="also exit non-zero when a baseline "
                             "benchmark is absent from the current "
                             "report (a silently-dropped benchmark "
                             "cannot regress)")
    return parser


def _bench_diff_main(argv: List[str]) -> int:
    from repro.exceptions import AnalysisError
    from repro.obs.bench import diff_bench_reports, load_bench_report

    args = _build_bench_diff_parser().parse_args(argv)
    try:
        baseline = load_bench_report(args.baseline)
        current = load_bench_report(args.current)
        diff = diff_bench_reports(baseline, current,
                                  threshold=args.threshold,
                                  metric=f"{args.metric}_s")
    except AnalysisError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(f"compared {len(diff['compared'])} benchmarks on "
              f"{diff['metric']} (threshold {diff['threshold']:.0%})")
        for row in diff["compared"]:
            marker = " "
            if row in diff["regressions"]:
                marker = "!"
            elif row in diff["improvements"]:
                marker = "+"
            print(f"  {marker} {row['name']}: {row['baseline_s']:.6g}s -> "
                  f"{row['current_s']:.6g}s (x{row['ratio']:.2f})")
        for name in diff["missing"]:
            print(f"  ? missing from current: {name}")
        for name in diff["added"]:
            print(f"  * new benchmark: {name}")
    failed = False
    if diff["regressions"]:
        print(f"FAIL: {len(diff['regressions'])} benchmark(s) regressed "
              f"beyond {diff['threshold']:.0%}", file=sys.stderr)
        failed = True
    if args.fail_on_missing and diff["missing"]:
        print(f"FAIL: {len(diff['missing'])} baseline benchmark(s) "
              f"missing from current report: "
              f"{', '.join(diff['missing'])}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("no regressions beyond threshold", file=sys.stderr)
    return 0


def _build_design_table_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments design-table",
        description=(
            "Build and inspect precomputed design tables: the whole "
            "(p x n x q_target x delay) lattice evaluated offline so "
            "the live control plane answers scheme selection with an "
            "O(1) lookup (see docs/design_service.md)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build", help="evaluate the lattice and write a table file")
    build.add_argument("--out", metavar="FILE", default="design_table.json",
                       help="output path (default design_table.json)")
    build.add_argument("--p-grid", metavar="P[,P...]", default=None,
                       help="comma-separated loss-rate grid (default: the "
                            "controller grid)")
    build.add_argument("--block-sizes", metavar="N[,N...]", default="12",
                       help="comma-separated block sizes (default 12)")
    build.add_argument("--q-targets", metavar="Q[,Q...]", default="0.75",
                       help="comma-separated q_min targets (default 0.75)")
    build.add_argument("--delay-budgets", metavar="D[,D...]", default="8",
                       help="comma-separated delay budgets in packet "
                            "slots (default 8)")
    build.add_argument("--families", metavar="F[,F...]",
                       default="emss,ac,offset",
                       help="comma-separated design families "
                            "(default emss,ac,offset)")
    build.add_argument("--seed", type=int, default=7, metavar="S",
                       help="seed-tree root for the sampled families "
                            "(default 7)")
    build.add_argument("--mc-trials", type=int, default=1500, metavar="N",
                       dest="mc_trials",
                       help="Monte Carlo trials per sampled-family cell "
                            "(default 1500)")
    build.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-pool size (default: all CPUs; "
                            "output is byte-identical for any value)")

    show = commands.add_parser(
        "show", help="validate a table file and print its summary")
    show.add_argument("table", help="design-table JSON file to inspect")
    show.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the summary as JSON")
    return parser


def _parse_axis(text: str, caster) -> tuple:
    return tuple(caster(part.strip())
                 for part in text.split(",") if part.strip())


def _design_table_main(argv: List[str]) -> int:
    from repro.design import DesignTable, TableSpec
    from repro.design.table import DEFAULT_TABLE_P_GRID
    from repro.exceptions import ReproError

    args = _build_design_table_parser().parse_args(argv)
    try:
        if args.command == "build":
            p_grid = (DEFAULT_TABLE_P_GRID if args.p_grid is None
                      else _parse_axis(args.p_grid, float))
            spec = TableSpec(
                p_grid=p_grid,
                block_sizes=_parse_axis(args.block_sizes, int),
                q_targets=_parse_axis(args.q_targets, float),
                delay_budgets=_parse_axis(args.delay_budgets, int),
                families=_parse_axis(args.families, str),
                seed=args.seed,
                mc_trials=args.mc_trials,
            )
            table = DesignTable.build(spec, workers=args.workers)
            table.save(args.out)
            print(f"design table written to {args.out}: "
                  f"{len(table.cells)} cells "
                  f"({table.feasible_count()} feasible), "
                  f"hash {table.content_hash}")
            return 0
        table = DesignTable.load(args.table)
        summary = table.describe()
        if args.as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"design table {args.table}: schema "
                  f"v{summary['schema_version']}, "
                  f"hash {summary['content_hash']}")
            print(f"  cells    : {summary['cells']} "
                  f"({summary['feasible']} feasible)")
            for family, stats in summary["families"].items():
                print(f"  {family:<9}: {stats['feasible']}/"
                      f"{stats['cells']} feasible")
            spec = summary["spec"]
            print(f"  p_grid   : {', '.join(str(p) for p in spec['p_grid'])}")
            print(f"  n        : "
                  f"{', '.join(str(n) for n in spec['block_sizes'])}")
            print(f"  q targets: "
                  f"{', '.join(str(q) for q in spec['q_targets'])}")
            print(f"  delay    : "
                  f"{', '.join(str(d) for d in spec['delay_budgets'])}")
        return 0
    except (ReproError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2


def _run_one(experiment_id: str, fast: bool, workers: int,
             collect: Optional[list]) -> ExperimentResult:
    """Run one experiment, instrumented when ``collect`` is a list.

    With instrumentation on, the experiment runs under a fresh registry
    and appends ``{"manifest", "metrics"}`` to ``collect``; disabled
    runs skip every observability code path (null-registry fast path).
    """
    if collect is None:
        return ALL_EXPERIMENTS[experiment_id](fast=fast)

    from repro.obs import (MetricsRegistry, RunManifest, set_registry, span)

    registry = MetricsRegistry()
    clock = RunManifest.start("experiment", experiment_id,
                              parameters={"fast": fast}, workers=workers)
    previous = set_registry(registry)
    try:
        with span(f"experiment.{experiment_id}"):
            result = ALL_EXPERIMENTS[experiment_id](fast=fast)
    finally:
        set_registry(previous)
    manifest = clock.finish(registry)
    collect.append({"manifest": manifest.to_dict(),
                    "metrics": registry.snapshot()})
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    raw_argv = list(sys.argv[1:]) if argv is None else list(argv)
    if raw_argv and raw_argv[0] == "bench-report":
        return _bench_report_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "bench-diff":
        return _bench_diff_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "design-table":
        return _design_table_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(raw_argv[1:])
    if raw_argv and raw_argv[0] == "loadgen":
        from repro.serve.cli import loadgen_main

        return loadgen_main(raw_argv[1:])
    args = _build_parser().parse_args(raw_argv)
    from repro.exceptions import AnalysisError
    from repro.parallel import resolve_workers, set_default_workers

    try:
        workers = resolve_workers(args.workers)  # validates flag and env
    except AnalysisError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.workers is not None:
        set_default_workers(args.workers)
    if args.attack is not None:
        from repro.faults import set_default_attack

        try:
            set_default_attack(
                [m.strip() for m in args.attack.split(",") if m.strip()])
        except AnalysisError as error:
            print(str(error), file=sys.stderr)
            return 2
    if args.list_only:
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0
    ids = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run; pass experiment ids or --all (see --list)",
              file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    instrument = bool(args.metrics_out or args.profile)
    collected: Optional[list] = [] if instrument else None
    trace_sink = None
    if args.trace_out:
        from repro.obs import TraceSink, set_trace_sink

        trace_sink = TraceSink(args.trace_out)
        set_trace_sink(trace_sink)
    try:
        if args.report_path:
            from repro.experiments.report import write_report

            write_report(args.report_path, ALL_EXPERIMENTS, fast=args.fast,
                         only=ids)
            print(f"report written to {args.report_path}")
            return 0
        if args.as_json:
            payload = [
                result_to_dict(_run_one(experiment_id, args.fast, workers,
                                        collected))
                for experiment_id in ids
            ]
            print(json.dumps(payload, indent=2))
        else:
            for experiment_id in ids:
                result = _run_one(experiment_id, args.fast, workers,
                                  collected)
                print(result.render())
                print()
    finally:
        if trace_sink is not None:
            from repro.obs import set_trace_sink

            set_trace_sink(None)
            trace_sink.close()

    if collected is not None:
        from repro.obs import MetricsRegistry, profile_report, write_json_file

        if args.metrics_out:
            write_json_file(args.metrics_out,
                            {"format": 1, "runs": collected})
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
        if args.profile:
            merged = MetricsRegistry.merge_all(
                MetricsRegistry.from_snapshot(entry["metrics"])
                for entry in collected)
            print(file=sys.stderr)
            print(profile_report(merged, top=PROFILE_TOP), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
