"""Command-line entry point: run the paper's experiments from a shell.

Installed as ``repro-experiments``::

    repro-experiments --list
    repro-experiments fig8 fig9
    repro-experiments --all --fast
    repro-experiments fig10 --json > fig10.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult

__all__ = ["main", "result_to_dict"]


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable view of an experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "series": {
            label: {"x": list(series.x), "y": list(series.y)}
            for label, series in result.series.items()
        },
        "notes": result.notes,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures and tables of 'A graph-theoretical "
            "analysis of multicast authentication' (ICDCS 2003)."
        ),
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sweep resolution")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list experiment ids and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit results as a JSON array")
    parser.add_argument("--report", metavar="PATH", dest="report_path",
                        help="write a full markdown report to PATH")
    parser.add_argument("--workers", type=int, metavar="N", default=None,
                        help=(
                            "process-pool size for Monte-Carlo sweeps "
                            "(default: all CPUs, or $REPRO_WORKERS; 1 = "
                            "serial, identical output for any value)"
                        ))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    from repro.exceptions import AnalysisError
    from repro.parallel import resolve_workers, set_default_workers

    try:
        resolve_workers(args.workers)  # validates flag and $REPRO_WORKERS
    except AnalysisError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.workers is not None:
        set_default_workers(args.workers)
    if args.list_only:
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0
    ids = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not ids:
        print("nothing to run; pass experiment ids or --all (see --list)",
              file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.report_path:
        from repro.experiments.report import write_report

        write_report(args.report_path, ALL_EXPERIMENTS, fast=args.fast,
                     only=ids)
        print(f"report written to {args.report_path}")
        return 0
    if args.as_json:
        payload = [
            result_to_dict(ALL_EXPERIMENTS[experiment_id](fast=args.fast))
            for experiment_id in ids
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for experiment_id in ids:
        result = ALL_EXPERIMENTS[experiment_id](fast=args.fast)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
