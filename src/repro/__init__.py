"""repro — dependence-graph analysis of multicast authentication.

A full reproduction of Aldar C-F. Chan, *A graph-theoretical analysis
of multicast authentication* (ICDCS 2003): the dependence-graph
framework, the five analyzed schemes (Gennaro-Rohatgi, Wong-Lam
authentication trees, EMSS, augmented chains, TESLA) implemented down
to the bytes, analytic evaluators for every equation and figure, a
packet-level loss/delay simulator that validates them, and the
Section 5 graph-design toolkit.

Quickstart
----------
>>> from repro import EmssScheme, analytic_q_min
>>> scheme = EmssScheme(m=2, d=1)
>>> 0.9 < analytic_q_min(scheme, n=100, p=0.2) < 1.0
True
"""

from repro.analysis import (
    TeslaEnvironment,
    analytic_q_min,
    graph_monte_carlo,
    overhead_delay_table,
    sweep_block_size,
    sweep_loss,
)
from repro.core import (
    DependenceGraph,
    TeslaDependenceGraph,
    compute_metrics,
    lambda_bounds,
    solve_recurrence,
)
from repro.exceptions import (
    AnalysisError,
    CryptoError,
    DesignError,
    GraphError,
    PacketFormatError,
    ReproError,
    SchemeParameterError,
    SimulationError,
    VerificationError,
    WireDecodeError,
)
from repro.faults import (
    AdversarialChannel,
    AttackPlan,
    BitFlipCorruption,
    FaultModel,
    ForgedInjection,
    ReorderJitter,
    ReplayDuplication,
    TruncationCorruption,
)
from repro.packets import Packet, packet_from_wire
from repro.parallel import (
    parallel_graph_monte_carlo,
    parallel_multicast,
    parallel_wire_monte_carlo,
    set_default_workers,
    sweep,
)
from repro.schemes import (
    AugmentedChainScheme,
    EmssScheme,
    GenericOffsetScheme,
    RandomGraphScheme,
    RohatgiScheme,
    Scheme,
    SignEachScheme,
    TeslaParameters,
    TeslaReceiver,
    TeslaScheme,
    TeslaSender,
    WongLamScheme,
    available_schemes,
    make_scheme,
    paper_comparison_schemes,
)
from repro.simulation import (
    ChainReceiver,
    SimulationStats,
    StreamSender,
    run_chain_session,
    run_individual_session,
    run_tesla_session,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TeslaEnvironment",
    "analytic_q_min",
    "graph_monte_carlo",
    "overhead_delay_table",
    "sweep_block_size",
    "sweep_loss",
    "DependenceGraph",
    "TeslaDependenceGraph",
    "compute_metrics",
    "lambda_bounds",
    "solve_recurrence",
    "AnalysisError",
    "CryptoError",
    "DesignError",
    "GraphError",
    "PacketFormatError",
    "ReproError",
    "SchemeParameterError",
    "SimulationError",
    "VerificationError",
    "WireDecodeError",
    "AdversarialChannel",
    "AttackPlan",
    "BitFlipCorruption",
    "FaultModel",
    "ForgedInjection",
    "ReorderJitter",
    "ReplayDuplication",
    "TruncationCorruption",
    "Packet",
    "packet_from_wire",
    "parallel_graph_monte_carlo",
    "parallel_wire_monte_carlo",
    "parallel_multicast",
    "set_default_workers",
    "sweep",
    "AugmentedChainScheme",
    "EmssScheme",
    "GenericOffsetScheme",
    "RandomGraphScheme",
    "RohatgiScheme",
    "Scheme",
    "SignEachScheme",
    "TeslaParameters",
    "TeslaReceiver",
    "TeslaScheme",
    "TeslaSender",
    "WongLamScheme",
    "available_schemes",
    "make_scheme",
    "paper_comparison_schemes",
    "ChainReceiver",
    "SimulationStats",
    "StreamSender",
    "run_chain_session",
    "run_individual_session",
    "run_tesla_session",
]
