"""The sending half of a live session.

:class:`SenderService` owns the stream state (sequence numbers, block
ids, the pacing clock) but — unlike the offline
:class:`~repro.simulation.sender.StreamSender` — takes the scheme *per
block*, because the adaptive controller may re-parameterize between
blocks.  Each block is packetized once, then pushed through one
impairment channel per receiver (independent loss draws, optionally an
:class:`~repro.faults.AdversarialChannel` with a per-(receiver, block)
reseeded plan) and onto the transport, followed by a control frame
carrying the block's ground truth.

Seed derivation, all from one root seed:

* loss for receiver ``r`` (0-based), block ``b``:
  ``seed + 7919 * (r + 1) + 104729 * (b + 1)``;
* attack plan for the same pair: the loss seed plus ``15485863``
  (:meth:`~repro.faults.AttackPlan.reseed` spreads it further across
  the plan's members).

Fresh models per (receiver, block) make every cell of the session an
independent, reproducible sample — the same property the Monte-Carlo
trial runners get from their per-trial seeds — and per-phase counter
folds stay exact because all accounting is integer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.crypto.batch import BatchSigner
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SimulationError
from repro.faults import AdversarialChannel, AttackPlan, WireDelivery
from repro.network.channel import Channel
from repro.network.clock import Clock
from repro.network.delay import ConstantDelay
from repro.network.loss import BernoulliLoss
from repro.obs import get_registry
from repro.obs.lifecycle import NOISE_SEQ, get_lifecycle
from repro.packets import Packet
from repro.schemes.base import Scheme
from repro.serve.transport import ControlFrame, Transport, encode_control

__all__ = ["BlockTruth", "SenderService", "default_channel_factory"]

#: Histogram bounds for blocks amortized per root signature.
_BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Histogram bounds for encoded batch-attachment sizes (bytes).
_PROOF_BYTES_BOUNDS = (64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0)

_LOSS_STRIDE_RECEIVER = 7919
_LOSS_STRIDE_BLOCK = 104729
_ATTACK_OFFSET = 15485863


@dataclass(frozen=True)
class BlockTruth:
    """Ground truth of one block as one receiver's channel produced it.

    ``intact`` holds the sequence numbers whose *untampered* bytes the
    transport accepted for this receiver (genuine kind, not dropped by
    queue backpressure); ``digests`` maps every sequence the sender
    emitted to the hex digest of its authentic bytes.  Together they
    are what the receiver-side audit and the per-phase ``q_i`` tallies
    score against.
    """

    receiver_id: str
    block_id: int
    base_seq: int
    last_seq: int
    phase: str
    scheme: str
    intact: FrozenSet[int]
    digests: Mapping[int, str]
    sent: int
    dropped: int
    corrupted: int
    injected: int
    replayed: int
    queue_dropped: int


def default_channel_factory(seed: int,
                            attack_plan_factory: Optional[
                                Callable[[], AttackPlan]] = None
                            ) -> Callable[[int, int, float], Channel]:
    """Seeded per-(receiver, block) channel construction.

    Returns a factory ``(receiver_index, block_id, loss_rate) ->``
    :class:`~repro.network.channel.Channel` (or an
    :class:`~repro.faults.AdversarialChannel` wrapping one when an
    attack-plan factory is supplied).  Every call builds fresh models
    with the documented seed derivation, so a session's channel bank
    is fully determined by the root seed.
    """

    def build(receiver_index: int, block_id: int, loss_rate: float):
        cell_seed = (seed + _LOSS_STRIDE_RECEIVER * (receiver_index + 1)
                     + _LOSS_STRIDE_BLOCK * (block_id + 1))
        channel = Channel(loss=BernoulliLoss(loss_rate, seed=cell_seed),
                          delay=ConstantDelay(0.0))
        if attack_plan_factory is None:
            return channel
        plan = attack_plan_factory()
        plan.reseed(cell_seed + _ATTACK_OFFSET)
        return AdversarialChannel(channel, plan)

    return build


class _DeferredSigner:
    """Placeholder signer for blocks whose signature arrives at flush.

    ``auth_bytes`` excludes the signature field, so packetizing with an
    empty sentinel leaves every digest and carried hash final; the
    batch flush later swaps the sentinel for the real attachment.
    """

    def __init__(self, inner: Signer) -> None:
        self.name = inner.name
        self.signature_size = inner.signature_size
        self._inner = inner

    def sign(self, message: bytes) -> bytes:
        return b""

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self._inner.verify(message, signature)


@dataclass
class _PendingBlock:
    """One packetized block waiting for its batch flush."""

    block_id: int
    base_seq: int
    last_seq: int
    scheme_name: str
    phase: str
    loss_rate: float
    stamped: List[Packet]
    digests: Dict[int, str]
    control_time: float


class SenderService:
    """Signs, packetizes and streams blocks over a transport.

    With ``batch_size > 1`` the service runs in batch-signing mode
    (:mod:`repro.crypto.batch`): blocks are packetized and paced
    immediately but held back from the transport with a placeholder
    signature; once ``batch_size`` blocks are pending — or the oldest
    pending block has waited ``flush_deadline`` virtual seconds — one
    Merkle root covering every pending signature packet is signed and
    each packet's placeholder is replaced by its proof-carrying
    attachment before the blocks stream out.  Because channel draws are
    seeded per (receiver, block) and send times are stamped at
    packetization, the loss pattern, digests and receiver verdicts are
    identical to per-block signing on the same seed.

    Parameters
    ----------
    transport:
        Delivery fabric (started by the caller).
    receiver_ids:
        Subscribed receivers, in the canonical (sorted) order the
        session uses everywhere.
    signer:
        Block-signature signer.
    channel_factory:
        ``(receiver_index, block_id, loss_rate) -> Channel`` — see
        :func:`default_channel_factory`.
    clock:
        Pacing clock; block transmission advances it by
        ``packets * t_transmit``.
    t_transmit:
        Seconds between consecutive packet transmissions (Eq. 4's
        clock unit).
    hash_function:
        Must match the receivers'.
    batch_size:
        Blocks amortized per root signature; ``1`` (default) signs
        every block directly, exactly as before.
    flush_deadline:
        Virtual seconds the oldest pending block may wait before a
        partial batch is flushed anyway (bounds latency); ``None``
        flushes only on a full batch or at end of session.
    receiver_indices:
        Receiver id -> channel-seeding index.  Defaults to each id's
        position in ``receiver_ids``; churn sessions pass the
        membership universe's indices instead, so a receiver's loss
        and attack draws are pinned to its identity rather than to
        the shifting roster order (and a no-churn session seeds
        exactly as before).
    """

    def __init__(self, transport: Transport, receiver_ids: Sequence[str],
                 signer: Signer,
                 channel_factory: Callable[[int, int, float], Channel],
                 clock: Clock, t_transmit: float = 0.001,
                 hash_function: HashFunction = sha256,
                 batch_size: int = 1,
                 flush_deadline: Optional[float] = None,
                 receiver_indices: Optional[Mapping[str, int]] = None
                 ) -> None:
        if not receiver_ids:
            raise SimulationError("need at least one receiver")
        if t_transmit <= 0:
            raise SimulationError(
                f"t_transmit must be > 0, got {t_transmit}")
        if batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {batch_size}")
        if flush_deadline is not None and flush_deadline <= 0:
            raise SimulationError(
                f"flush_deadline must be > 0, got {flush_deadline}")
        self.transport = transport
        self.receiver_ids = list(receiver_ids)
        if receiver_indices is None:
            self._index_of = {receiver_id: index
                              for index, receiver_id
                              in enumerate(self.receiver_ids)}
        else:
            missing = [r for r in self.receiver_ids
                       if r not in receiver_indices]
            if missing:
                raise SimulationError(
                    f"receiver_indices is missing {', '.join(missing)}")
            self._index_of = dict(receiver_indices)
        self.signer = signer
        self.channel_factory = channel_factory
        self.clock = clock
        self.t_transmit = t_transmit
        self.hash_function = hash_function
        self.batch_size = batch_size
        self.flush_deadline = flush_deadline
        self._batch = BatchSigner(signer, hash_function)
        #: Instance counters mirroring the ``serve.batch.*`` registry
        #: series — readable even when metrics are disabled, which is
        #: what the health sentinels difference per block.
        self.batch_signs = 0
        self.batch_flushes = 0
        self._pending: List[_PendingBlock] = []
        self._pending_since: Optional[float] = None
        self._next_seq = 1
        self._next_block = 0
        self._send_clock = 0.0  # virtual send-time base, paper pacing
        #: Redundant-path copies suppressed across all topology
        #: channels of the session (0 on independent channels).
        self.duplicates_suppressed = 0

    @property
    def next_block_id(self) -> int:
        """Block id the next :meth:`send_block` will use."""
        return self._next_block

    def add_receiver(self, receiver_id: str,
                     index: Optional[int] = None) -> None:
        """Start streaming to a late joiner from the next block on.

        ``index`` pins the joiner's channel-seeding index (the
        membership universe position); without it the joiner gets the
        next unused index.  The canonical sorted roster order is
        preserved, so transmit order — and therefore virtual-time
        interleaving — is a pure function of the active set.
        """
        if receiver_id in self.receiver_ids:
            raise SimulationError(
                f"receiver {receiver_id!r} already subscribed")
        if index is None:
            # A preloaded universe mapping pins the index; otherwise
            # the joiner extends the roster.
            index = self._index_of.get(
                receiver_id, 1 + max(self._index_of.values(), default=-1))
        self._index_of[receiver_id] = index
        bisect.insort(self.receiver_ids, receiver_id)

    def remove_receiver(self, receiver_id: str) -> None:
        """Stop streaming to a leaver (its seeding index stays reserved)."""
        if receiver_id not in self.receiver_ids:
            raise SimulationError(
                f"receiver {receiver_id!r} is not subscribed")
        self.receiver_ids.remove(receiver_id)

    async def send_block(self, scheme: Scheme, payloads: Sequence[bytes],
                         loss_rate: float, phase: str
                         ) -> Dict[str, BlockTruth]:
        """Packetize one block with ``scheme`` and stream it to everyone.

        Returns per-receiver ground truth; the control frame each
        receiver gets carries its own ``intact`` set plus the shared
        digest map.
        """
        pending = self._packetize(scheme, payloads, loss_rate, phase,
                                  self.signer)
        truths = await self._transmit_block(pending)
        await self.clock.sleep(len(pending.stamped) * self.t_transmit)
        return truths

    async def submit_block(self, scheme: Scheme, payloads: Sequence[bytes],
                           loss_rate: float, phase: str
                           ) -> Dict[int, Dict[str, BlockTruth]]:
        """Queue one block, flushing per the batch policy.

        In per-block mode (``batch_size == 1``) this is exactly
        :meth:`send_block`.  In batch mode the block is packetized with
        a placeholder signature and held; the return value maps the
        block ids flushed *by this call* (possibly none, possibly
        several) to their per-receiver ground truth.
        """
        if self.batch_size == 1:
            block_id = self._next_block
            truths = await self.send_block(scheme, payloads, loss_rate,
                                           phase)
            return {block_id: truths}
        pending = self._packetize(scheme, payloads, loss_rate, phase,
                                  _DeferredSigner(self.signer))
        self._pending.append(pending)
        if self._pending_since is None:
            self._pending_since = self.clock.now()
        await self.clock.sleep(len(pending.stamped) * self.t_transmit)
        deadline_hit = (
            self.flush_deadline is not None
            and self.clock.now() - self._pending_since >= self.flush_deadline)
        if len(self._pending) >= self.batch_size or deadline_hit:
            return await self.flush_pending()
        return {}

    async def flush_pending(self) -> Dict[int, Dict[str, BlockTruth]]:
        """Sign one Merkle root over all pending blocks and stream them."""
        if not self._pending:
            return {}
        pending_blocks = self._pending
        self._pending = []
        self._pending_since = None
        signature_slots = []  # (pending_index, packet_index)
        for p_index, pending in enumerate(pending_blocks):
            for k_index, packet in enumerate(pending.stamped):
                if packet.signature is not None:
                    self._batch.append(packet.auth_bytes())
                    signature_slots.append((p_index, k_index))
        attachments = self._batch.flush()
        self.batch_signs += 1
        self.batch_flushes += 1
        registry = get_registry()
        if registry.enabled:
            registry.count("serve.batch.signs", 1)
            registry.count("serve.batch.flushes", 1)
            registry.observe("serve.batch.blocks_per_signature",
                             float(len(pending_blocks)),
                             bounds=_BATCH_SIZE_BOUNDS)
            for attachment in attachments:
                registry.observe("serve.batch.proof_bytes",
                                 float(len(attachment)),
                                 bounds=_PROOF_BYTES_BOUNDS)
        for (p_index, k_index), attachment in zip(signature_slots,
                                                  attachments):
            pending = pending_blocks[p_index]
            pending.stamped[k_index] = replace(pending.stamped[k_index],
                                               signature=attachment)
        results: Dict[int, Dict[str, BlockTruth]] = {}
        for pending in pending_blocks:
            results[pending.block_id] = await self._transmit_block(pending)
        return results

    def _packetize_at(self, scheme: Scheme, payloads: Sequence[bytes],
                      loss_rate: float, phase: str, signer: Signer,
                      block_id: int, base_seq: int,
                      send_base: float) -> _PendingBlock:
        """Build and stamp one block at explicit coordinates (no state).

        The grouped transmit path packetizes the *same* block id, seq
        range and send times once per subtree scheme; committing the
        stream state is the caller's job.
        """
        if not payloads:
            raise SimulationError("empty block")
        packets = scheme.make_block(list(payloads), signer,
                                    self.hash_function, block_id=block_id,
                                    base_seq=base_seq)
        stamped = []
        send_clock = send_base
        for packet in packets:
            stamped.append(packet.with_send_time(send_clock))
            send_clock += self.t_transmit
        digests = {
            packet.seq: self.hash_function.digest(packet.auth_bytes()).hex()
            for packet in stamped
        }
        return _PendingBlock(
            block_id=block_id, base_seq=base_seq,
            last_seq=base_seq + len(packets) - 1,
            scheme_name=scheme.name, phase=phase, loss_rate=loss_rate,
            stamped=stamped, digests=digests,
            control_time=send_clock)

    def _packetize(self, scheme: Scheme, payloads: Sequence[bytes],
                   loss_rate: float, phase: str,
                   signer: Signer) -> _PendingBlock:
        """Build and stamp one block; advances seq/block/send-time state."""
        pending = self._packetize_at(scheme, payloads, loss_rate, phase,
                                     signer, self._next_block,
                                     self._next_seq, self._send_clock)
        self._next_block += 1
        self._next_seq += len(pending.stamped)
        self._send_clock = pending.control_time
        return pending

    async def _transmit_to_receiver(self, pending: _PendingBlock,
                                    index: int,
                                    receiver_id: str) -> BlockTruth:
        """Push one packetized block through one receiver's channel."""
        block_id = pending.block_id
        base_seq = pending.base_seq
        last_seq = pending.last_seq
        stamped = pending.stamped
        digests = pending.digests
        registry = get_registry()
        tracer = get_lifecycle()
        channel = self.channel_factory(index, block_id, pending.loss_rate)
        if isinstance(channel, AdversarialChannel):
            deliveries = channel.transmit_wire(stamped)
            corrupted = channel.corrupted
            injected = channel.injected
            replayed = channel.replayed
        else:
            deliveries = [
                WireDelivery(arrival_time=delivery.arrival_time,
                             data=delivery.packet.to_wire(),
                             kind="genuine", seq_hint=delivery.packet.seq,
                             block_hint=delivery.packet.block_id)
                for delivery in channel.transmit(stamped)
            ]
            corrupted = injected = replayed = 0
        inner = getattr(channel, "channel", channel)
        duplicates = getattr(inner, "duplicates_suppressed", 0)
        self.duplicates_suppressed += duplicates
        if tracer.enabled:
            surviving = {d.seq_hint for d in deliveries
                         if d.seq_hint is not None}
            for packet in stamped:
                tracer.record(receiver_id, block_id, packet.seq,
                              "sign", "signed", packet.send_time,
                              scheme=pending.scheme_name)
                tracer.record(receiver_id, block_id, packet.seq,
                              "frame", "framed", packet.send_time)
                if packet.seq not in surviving:
                    tracer.record(receiver_id, block_id, packet.seq,
                                  "transport", "drop", packet.send_time)
            for delivery in deliveries:
                seq = (delivery.seq_hint if delivery.seq_hint is not None
                       else NOISE_SEQ)
                tag = delivery.attack_tag
                if tag is None:
                    tracer.record(receiver_id, block_id, seq,
                                  "transport", "deliver",
                                  delivery.arrival_time)
                else:
                    tracer.record(receiver_id, block_id, seq,
                                  "transport", "deliver",
                                  delivery.arrival_time, kind=tag)
        transport_dropped = await self.transport.send(receiver_id,
                                                      deliveries)
        dropped_genuine = {d.seq_hint for d in transport_dropped
                           if d.kind == "genuine"}
        intact = frozenset(
            d.seq_hint for d in deliveries
            if d.kind == "genuine" and d.seq_hint is not None
            and d.seq_hint not in dropped_genuine)
        truth = BlockTruth(
            receiver_id=receiver_id, block_id=block_id,
            base_seq=base_seq, last_seq=last_seq, phase=pending.phase,
            scheme=pending.scheme_name, intact=intact, digests=digests,
            sent=channel.sent, dropped=channel.dropped,
            corrupted=corrupted, injected=injected, replayed=replayed,
            queue_dropped=len(transport_dropped),
        )
        frame = ControlFrame(
            block_id=block_id, base_seq=base_seq, last_seq=last_seq,
            scheme=pending.scheme_name, phase=pending.phase,
            intact=tuple(sorted(intact)),
            digests=tuple(sorted(digests.items())),
        )
        control = WireDelivery(
            arrival_time=pending.control_time, data=encode_control(frame),
            kind="control", seq_hint=None)
        await self.transport.send(receiver_id, [control])
        if registry.enabled:
            registry.count("serve.packets.sent", channel.sent)
            registry.count("serve.packets.dropped", channel.dropped)
            if duplicates:
                registry.count("serve.topology.duplicates", duplicates)
            if corrupted or injected or replayed:
                registry.count("serve.attack.corrupted", corrupted)
                registry.count("serve.attack.injected", injected)
                registry.count("serve.attack.replayed", replayed)
        return truth

    async def _transmit_block(self, pending: _PendingBlock
                              ) -> Dict[str, BlockTruth]:
        """Push one packetized block through every receiver's channel."""
        truths: Dict[str, BlockTruth] = {}
        for receiver_id in self.receiver_ids:
            truths[receiver_id] = await self._transmit_to_receiver(
                pending, self._index_of[receiver_id], receiver_id)
        return truths

    async def send_block_grouped(self, schemes_by_group: Mapping[str, Scheme],
                                 group_of: Mapping[str, str],
                                 payloads: Sequence[bytes], loss_rate: float,
                                 phases_by_group: Mapping[str, str]
                                 ) -> Dict[str, BlockTruth]:
        """One block, packetized per subtree scheme, one seq range.

        Every group's packetization shares the block id, base sequence
        and send times (EMSS packet counts are independent of
        ``(m, d)``, so the layouts line up slot for slot); each
        receiver's channel then carries its own subtree's packets.
        Stream state advances exactly once, so block ids, sequence
        numbers and virtual time stay identical to the ungrouped path.
        """
        if self.batch_size != 1:
            raise SimulationError(
                "grouped transmit requires per-block signing "
                "(batch_size == 1)")
        if not schemes_by_group:
            raise SimulationError("need at least one scheme group")
        for receiver_id in self.receiver_ids:
            group = group_of.get(receiver_id)
            if group is None or group not in schemes_by_group:
                raise SimulationError(
                    f"receiver {receiver_id!r} has no scheme group")
        block_id = self._next_block
        base_seq = self._next_seq
        send_base = self._send_clock
        pendings: Dict[str, _PendingBlock] = {}
        packet_count: Optional[int] = None
        for group in sorted(schemes_by_group):
            pending = self._packetize_at(
                schemes_by_group[group], payloads, loss_rate,
                phases_by_group[group], self.signer, block_id, base_seq,
                send_base)
            if packet_count is None:
                packet_count = len(pending.stamped)
            elif len(pending.stamped) != packet_count:
                raise SimulationError(
                    f"group {group!r} packetized {len(pending.stamped)} "
                    f"packets, expected {packet_count}; grouped schemes "
                    f"must share a block layout")
            pendings[group] = pending
        self._next_block += 1
        self._next_seq += packet_count
        self._send_clock = send_base + packet_count * self.t_transmit
        truths: Dict[str, BlockTruth] = {}
        for receiver_id in self.receiver_ids:
            truths[receiver_id] = await self._transmit_to_receiver(
                pendings[group_of[receiver_id]],
                self._index_of[receiver_id], receiver_id)
        await self.clock.sleep(packet_count * self.t_transmit)
        return truths

    async def send_final(self) -> None:
        """End the session: flush any partial batch, then signal EOF."""
        await self.flush_pending()
        frame = ControlFrame(block_id=-1, base_seq=0, last_seq=0,
                             scheme="", phase="", final=True)
        data = encode_control(frame)
        for receiver_id in self.receiver_ids:
            await self.transport.send(receiver_id, [
                WireDelivery(arrival_time=self._send_clock, data=data,
                             kind="control", seq_hint=None)])
