"""``repro.serve`` — live multicast authentication serving.

Everything below :mod:`repro.simulation` treats a block as an offline
artifact: build it, push it through a channel, tally.  This package
is the *online* counterpart the ROADMAP's north star asks for — an
asyncio service that signs and streams blocks to N concurrent
receivers and re-designs its dependence graph on the fly:

* :mod:`repro.serve.transport` — pluggable delivery fabrics: an
  in-process :class:`LocalTransport` with bounded per-receiver queues
  (deterministic under virtual time, the test substrate) and a real
  :class:`UdpTransport` over asyncio datagram endpoints; both speak
  :class:`~repro.faults.WireDelivery` plus JSON control frames that
  can never collide with packet bytes;
* :mod:`repro.serve.sender` — :class:`SenderService`: packetizes each
  block with the *current* scheme, pushes it through one impairment
  channel per receiver (optionally an
  :class:`~repro.faults.AdversarialChannel`), and publishes the
  ground truth the end-to-end soundness audit needs;
* :mod:`repro.serve.receiver` — :class:`ReceiverSession` /
  :class:`ReceiverPool`: defensive wire ingestion via
  :meth:`~repro.simulation.stream_receiver.StreamReceiver.ingest_wire`,
  per-block loss reports through a
  :class:`~repro.network.loss.LossEstimator`, canonical JSON-line
  transcripts;
* :mod:`repro.serve.adaptive` — :class:`AdaptiveController`: folds
  the pool's loss reports into
  :mod:`repro.design.optimizer` and re-selects scheme parameters per
  block against a ``q_min``/overhead budget;
* :mod:`repro.serve.membership` — :class:`MembershipPlan`: seeded,
  validated join/leave/crash trajectories executed at block
  boundaries (late joiners bootstrap per :data:`BOOTSTRAP_RULES`),
  plus the bootstrap-window forgery wrapper
  :func:`storm_channel_factory`;
* :mod:`repro.serve.service` — :func:`run_live_session`: the
  block-barrier orchestration loop tying the four together, emitting
  a :class:`~repro.obs.RunManifest` and per-phase
  :class:`~repro.simulation.stats.SimulationStats`;
* :mod:`repro.serve.loadgen` — soak-run driver behind the
  ``repro-experiments loadgen`` CLI and the CI soak job.

Determinism contract: with the local transport every source of time
is a :class:`~repro.network.clock.VirtualClock`, every RNG seed is
derived from the config seed, and the sender waits for all receivers'
block reports before starting the next block — so two runs of the
same config produce byte-identical per-receiver transcripts at any
receiver count.
"""

from repro.serve.adaptive import AdaptationEvent, AdaptiveController
from repro.serve.loadgen import run_loadgen
from repro.serve.membership import (
    BOOTSTRAP_RULES,
    MembershipEvent,
    MembershipPlan,
    parse_churn_spec,
    storm_channel_factory,
)
from repro.serve.receiver import LossReport, ReceiverPool, ReceiverSession
from repro.serve.sender import BlockTruth, SenderService
from repro.serve.service import ServeConfig, SessionResult, run_live_session
from repro.serve.transport import (
    ControlFrame,
    LocalTransport,
    Transport,
    UdpTransport,
    decode_control,
    encode_control,
)

__all__ = [
    "AdaptationEvent",
    "AdaptiveController",
    "BOOTSTRAP_RULES",
    "BlockTruth",
    "ControlFrame",
    "LocalTransport",
    "LossReport",
    "MembershipEvent",
    "MembershipPlan",
    "ReceiverPool",
    "ReceiverSession",
    "SenderService",
    "ServeConfig",
    "SessionResult",
    "Transport",
    "UdpTransport",
    "decode_control",
    "encode_control",
    "parse_churn_spec",
    "run_live_session",
    "run_loadgen",
    "storm_channel_factory",
]
