"""The receiving half of a live session.

Each :class:`ReceiverSession` consumes one transport subscription,
feeds data frames through the defensive
:meth:`~repro.simulation.stream_receiver.StreamReceiver.ingest_wire`
path, and on every control frame closes out the block: evicts buffers,
audits what verified against the sender's authentic digests (the
``forged_accepted`` soundness invariant), tallies per-phase
:class:`~repro.simulation.stats.SimulationStats`, appends a canonical
transcript line, updates its :class:`~repro.network.loss.LossEstimator`
and emits a :class:`LossReport` upstream.

Transcript lines are canonical JSON (sorted keys, fixed separators)
over values that derive only from seeds and virtual time — the
byte-identity surface the determinism regression pins.

:class:`ReceiverPool` fans N sessions out as asyncio tasks and gives
the service a per-block barrier: :meth:`ReceiverPool.wait_block`
resolves once every session has reported the block, which is what
makes bounded-queue drops and adaptation decisions deterministic.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SimulationError
from repro.faults import ATTACK_KINDS, WireDelivery
from repro.network.loss import LossEstimator
from repro.obs import get_registry
from repro.obs.lifecycle import NOISE_SEQ, get_lifecycle
from repro.serve.transport import ControlFrame, Transport, decode_control
from repro.simulation.stats import SimulationStats
from repro.simulation.stream_receiver import StreamReceiver

__all__ = ["LossReport", "ReceiverSession", "ReceiverPool"]


@dataclass(frozen=True)
class LossReport:
    """One receiver's per-block feedback to the adaptive loop.

    ``subtree`` names the distribution-tree branch the receiver sits
    behind (its root-child on the primary tree) when the session runs
    over a topology; independent-channel sessions leave it equal to
    the receiver id, so folding by subtree degenerates to folding per
    receiver.

    ``verified`` counts the block's slots that actually authenticated
    (arrived *and* verified) — the numerator the health plane's SLO
    monitors test against the design's ``q`` target.
    """

    receiver_id: str
    block_id: int
    expected: int
    received: int
    window_rate: float
    ewma_rate: float
    subtree: str = ""
    verified: int = 0

    @property
    def block_loss_rate(self) -> float:
        """Fraction of this block's packets that never arrived."""
        if self.expected == 0:
            return 0.0
        return 1.0 - self.received / self.expected


class ReceiverSession:
    """One live receiver: defensive ingestion, accounting, reporting.

    Parameters
    ----------
    receiver_id:
        Stable identity used in reports and transcripts.
    signer:
        Verifier for block signatures (public part suffices).
    hash_function:
        Must match the sender's.
    estimator:
        Loss estimator fed one observation per expected packet slot;
        a fresh default-window estimator if omitted.
    max_buffered:
        DoS cap forwarded to the underlying verifier.
    subtree:
        Distribution-tree branch label stamped on every
        :class:`LossReport`; defaults to the receiver id (independent
        channels — every receiver is its own branch).
    """

    def __init__(self, receiver_id: str, signer: Signer,
                 hash_function: HashFunction = sha256,
                 estimator: Optional[LossEstimator] = None,
                 max_buffered: Optional[int] = None,
                 subtree: Optional[str] = None) -> None:
        self.receiver_id = receiver_id
        self.subtree = subtree if subtree is not None else receiver_id
        self._hash = hash_function
        self.stream = StreamReceiver(signer, hash_function,
                                     max_buffered=max_buffered)
        self.estimator = estimator if estimator is not None else LossEstimator()
        self.transcript: List[str] = []
        self.stats: Dict[str, SimulationStats] = {}
        self.reports: List[LossReport] = []
        self.forged_accepted = 0
        self.blocks_closed = 0

    async def run(self, transport: Transport,
                  report_sink: Callable[[LossReport], "asyncio.Future"]
                  ) -> None:
        """Consume the subscription until the final control frame."""
        async for delivery in transport.subscribe(self.receiver_id):
            frame = decode_control(delivery.data)
            if frame is None:
                self._ingest_data(delivery)
                continue
            if frame.final:
                break
            report = self.close_block(frame, now=delivery.arrival_time)
            await report_sink(report)

    #: Verifier ingest taxonomy -> lifecycle ``ingest`` stage status.
    _INGEST_STATUS = {
        "verified": "decode",
        "buffered": "buffer",
        "forged-reject": "reject",
        "slot-reject": "reject",
        "replay-drop": "replay",
        "undecodable": "undecodable",
    }

    def _ingest_data(self, delivery: WireDelivery) -> None:
        """Defensive ingest of one data frame, with lifecycle tracing."""
        self.stream.ingest_wire(delivery.data, delivery.arrival_time)
        tracer = get_lifecycle()
        if not tracer.enabled:
            return
        verifier = self.stream.verifier
        status = self._INGEST_STATUS.get(verifier.last_ingest)
        if status is None:
            return  # frame did not reach the verifier's taxonomy
        packet = verifier.last_ingest_packet
        if packet is not None:
            block_id, seq = packet.block_id, packet.seq
        else:
            # Undecodable garbage: attribute to the open block's noise
            # slot — there is no packet to name.
            block_id, seq = self.blocks_closed, NOISE_SEQ
        attrs = {}
        if delivery.kind in ATTACK_KINDS:
            attrs["kind"] = delivery.kind
        if verifier.last_ingest == "slot-reject":
            attrs["detail"] = "slot-full"
        tracer.record(self.receiver_id, block_id, seq, "ingest", status,
                      delivery.arrival_time, **attrs)

    def close_block(self, frame: ControlFrame,
                    now: Optional[float] = None) -> LossReport:
        """Settle one finished block against its control frame.

        ``now`` is the control frame's arrival time; verdicts for
        non-verified slots are stamped with it so lifecycle traces stay
        monotone.  When omitted (direct harness calls) the latest event
        time seen inside the block is used instead.
        """
        verifier = self.stream.verifier
        digests = dict(frame.digests)
        intact = set(frame.intact)
        expected = frame.last_seq - frame.base_seq + 1
        arrived = 0
        verified_count = 0
        events: List[list] = []
        stats = self.stats.setdefault(frame.phase, SimulationStats())
        tracer = get_lifecycle()
        close_time = now
        if close_time is None:
            close_time = 0.0
            for seq in range(frame.base_seq, frame.last_seq + 1):
                outcome = verifier.outcomes.get(seq)
                if outcome is not None:
                    close_time = max(close_time, outcome.arrival_time,
                                     outcome.verified_time or 0.0)
        for seq in range(frame.base_seq, frame.last_seq + 1):
            outcome = verifier.outcomes.get(seq)
            verified = outcome is not None and outcome.verified
            if outcome is not None:
                arrived += 1
            if verified:
                verified_count += 1
                accepted = verifier.accepted_digest(seq)
                authentic = digests.get(seq)
                if (accepted is None or authentic is None
                        or accepted.hex() != authentic):
                    # Attacker content survived verification: the
                    # invariant every security test keys on.
                    self.forged_accepted += 1
                    stats.forged_accepted += 1
            position = seq - frame.base_seq + 1
            # Adversarial tally convention (run_adversarial_trials):
            # "received" means the authentic bytes made it through
            # untampered, or the slot verified anyway.
            received_for_stats = seq in intact or verified
            delay = outcome.delay if verified else None
            stats.record(position, received_for_stats, verified, delay)
            if verified:
                status = "v"
                when = outcome.verified_time
            elif outcome is not None:
                status = "a"
                when = None
            else:
                status = "l"
                when = None
            events.append([seq, status, when])
            if tracer.enabled:
                if verified:
                    tracer.record(self.receiver_id, frame.block_id, seq,
                                  "verify", "verified",
                                  outcome.verified_time, delay=outcome.delay)
                elif outcome is not None:
                    attrs = {"forged": True} if outcome.forged else {}
                    tracer.record(self.receiver_id, frame.block_id, seq,
                                  "verify", "arrived", close_time, **attrs)
                else:
                    tracer.record(self.receiver_id, frame.block_id, seq,
                                  "verify", "lost", close_time)
        self.estimator.observe_block(expected - arrived, expected)
        released = self.stream.finish_block(frame.block_id, frame.last_seq)
        self.blocks_closed += 1
        record = {
            "r": self.receiver_id,
            "b": frame.block_id,
            "phase": frame.phase,
            "scheme": frame.scheme,
            "delivered": len(released),
            "events": events,
        }
        self.transcript.append(
            json.dumps(record, sort_keys=True, separators=(",", ":")))
        report = LossReport(
            receiver_id=self.receiver_id, block_id=frame.block_id,
            expected=expected, received=arrived,
            window_rate=self.estimator.window_rate,
            ewma_rate=self.estimator.ewma_rate,
            subtree=self.subtree,
            verified=verified_count,
        )
        self.reports.append(report)
        registry = get_registry()
        if registry.enabled:
            registry.count("serve.block.closes", 1)
            registry.count(f"serve.{self.receiver_id}.delivered",
                           len(released))
            registry.count(f"serve.{self.receiver_id}.arrived", arrived)
        return report

    def transcript_bytes(self) -> bytes:
        """The canonical transcript: one JSON line per closed block."""
        return ("\n".join(self.transcript) + "\n").encode("utf-8")


class ReceiverPool:
    """Concurrent receiver sessions plus the per-block barrier.

    The pool owns the session *roster*, which churn makes dynamic:
    :meth:`admit` brings a late joiner up mid-session, :meth:`retire`
    detaches a graceful leaver (its task drains and exits), and
    :meth:`crash` kills a member mid-block.  ``sessions`` keeps every
    member that ever ran — departed receivers' transcripts, stats and
    audits stay part of the session record — while the barrier in
    :meth:`wait_block` releases on the *currently running* set only,
    so departures can never wedge it.

    Failure safety: a session task that raises records the first
    error, cancels its sibling tasks, and surfaces through
    :meth:`wait_block` / :meth:`join` — a crashing receiver fails the
    session loudly instead of hanging the barrier.

    Parameters
    ----------
    receiver_ids:
        Initial session identities, one task each.
    signer:
        Shared verifier (stateless verification; safe to share).
    hash_function, estimator_factory, max_buffered:
        Forwarded to each session (including later admissions);
        ``estimator_factory`` builds one private estimator per
        receiver.
    subtree_of:
        Receiver id -> distribution-tree branch label; receivers not
        in the mapping (or all of them, when it is omitted) report
        under their own id.
    """

    def __init__(self, receiver_ids: Sequence[str], signer: Signer,
                 hash_function: HashFunction = sha256,
                 estimator_factory: Optional[
                     Callable[[], LossEstimator]] = None,
                 max_buffered: Optional[int] = None,
                 subtree_of: Optional[Mapping[str, str]] = None) -> None:
        if not receiver_ids:
            raise SimulationError("need at least one receiver")
        if len(set(receiver_ids)) != len(receiver_ids):
            raise SimulationError("receiver ids must be unique")
        self._signer = signer
        self._hash = hash_function
        self._estimator_factory = estimator_factory
        self._max_buffered = max_buffered
        self._subtree_of = subtree_of if subtree_of is not None else {}
        self.sessions: Dict[str, ReceiverSession] = {}
        for receiver_id in receiver_ids:
            self.sessions[receiver_id] = self._build_session(receiver_id)
        self._reports: Dict[int, Dict[str, LossReport]] = {}
        self._events: Dict[int, asyncio.Event] = {}
        self._active: Dict[str, asyncio.Task] = {}
        self._transport: Optional[Transport] = None
        self._started = False
        self._failure: Optional[BaseException] = None
        self._failed = asyncio.Event()

    def _build_session(self, receiver_id: str) -> ReceiverSession:
        estimator = (self._estimator_factory()
                     if self._estimator_factory is not None
                     else LossEstimator())
        return ReceiverSession(
            receiver_id, self._signer, self._hash, estimator=estimator,
            max_buffered=self._max_buffered,
            subtree=self._subtree_of.get(receiver_id))

    def start(self, transport: Transport) -> None:
        """Spawn one task per session (requires a running event loop)."""
        if self._started:
            raise SimulationError("pool already started")
        self._started = True
        self._transport = transport
        for session in self.sessions.values():
            self._spawn(session)

    def _spawn(self, session: ReceiverSession) -> None:
        task = asyncio.create_task(
            session.run(self._transport, self._on_report),
            name=f"serve-{session.receiver_id}")
        self._active[session.receiver_id] = task
        task.add_done_callback(
            lambda done, rid=session.receiver_id: self._on_task_done(
                rid, done))

    def _on_task_done(self, receiver_id: str, task: asyncio.Task) -> None:
        if self._active.get(receiver_id) is task:
            del self._active[receiver_id]
        if task.cancelled():
            return
        error = task.exception()
        if error is None:
            return
        if self._failure is None:
            self._failure = error
        self._failed.set()
        # Cancel the siblings: one broken receiver must not leave the
        # rest of the pool (and the barrier) waiting forever.
        for other in self._active.values():
            other.cancel()

    @property
    def active_ids(self) -> List[str]:
        """Currently running session identities, sorted."""
        return sorted(self._active)

    # -- membership ----------------------------------------------------

    def admit(self, receiver_id: str) -> ReceiverSession:
        """Bring a late joiner up (its transport endpoint must exist).

        The new session joins the barrier set immediately; its first
        block is whichever streams next.
        """
        if receiver_id in self.sessions:
            raise SimulationError(
                f"receiver {receiver_id!r} already has a session "
                f"(members never rejoin under one identity)")
        session = self._build_session(receiver_id)
        self.sessions[receiver_id] = session
        if self._started:
            self._spawn(session)
        return session

    async def retire(self, receiver_id: str) -> None:
        """Detach a graceful leaver: drain its task and keep its record.

        Call after the transport endpoint is closed — the close
        sentinel is what ends the subscription.  The leaver's
        transcript, stats and audit counters stay in ``sessions``.
        """
        task = self._active.pop(receiver_id, None)
        if task is None:
            if receiver_id not in self.sessions:
                raise SimulationError(f"unknown receiver {receiver_id!r}")
            return  # already finished (e.g. failure path)
        await task

    async def crash(self, receiver_id: str) -> None:
        """Kill a member mid-block: cancel its task, abandon its queue.

        The victim never settles the in-flight block — no report, no
        transcript line — exactly a process that died without notice.
        """
        task = self._active.pop(receiver_id, None)
        if task is None:
            raise SimulationError(
                f"receiver {receiver_id!r} is not running")
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    # -- the barrier ---------------------------------------------------

    async def _on_report(self, report: LossReport) -> None:
        per_block = self._reports.setdefault(report.block_id, {})
        per_block[report.receiver_id] = report
        self._maybe_release(report.block_id)

    def _maybe_release(self, block_id: int) -> None:
        per_block = self._reports.get(block_id, {})
        if self._active and set(self._active) <= set(per_block):
            self._event(block_id).set()

    def _event(self, block_id: int) -> asyncio.Event:
        event = self._events.get(block_id)
        if event is None:
            event = asyncio.Event()
            self._events[block_id] = event
        return event

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise self._failure

    async def wait_block(self, block_id: int) -> List[LossReport]:
        """Barrier: every *running* session's report, sorted by id.

        Re-evaluates the running set on entry (a crash just before
        settling shrinks it) and races the barrier against session
        failure — a receiver that raises mid-block surfaces here
        instead of deadlocking the loop.
        """
        self._check_failure()
        self._maybe_release(block_id)
        event = self._event(block_id)
        if not event.is_set():
            barrier = asyncio.ensure_future(event.wait())
            failed = asyncio.ensure_future(self._failed.wait())
            try:
                await asyncio.wait((barrier, failed),
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                barrier.cancel()
                failed.cancel()
            self._check_failure()
        self._events.pop(block_id, None)
        reports = self._reports.pop(block_id, {})
        return [reports[receiver_id] for receiver_id in sorted(reports)]

    async def join(self) -> None:
        """Wait for the surviving session tasks (after the final frame).

        Surfaces the first session error and cancels the rest — the
        teardown counterpart of :meth:`wait_block`'s failure race.
        """
        self._check_failure()
        tasks = list(self._active.values())
        if not tasks:
            return
        done, pending = await asyncio.wait(
            tasks, return_when=asyncio.FIRST_EXCEPTION)
        failure: Optional[BaseException] = None
        for task in done:
            if task.cancelled():
                continue
            error = task.exception()
            if error is not None and failure is None:
                failure = error
        if failure is not None:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
            raise failure

    def merged_stats(self) -> Dict[str, SimulationStats]:
        """Per-phase stats folded across receivers (sorted, exact)."""
        merged: Dict[str, SimulationStats] = {}
        for receiver_id in sorted(self.sessions):
            for phase, stats in self.sessions[receiver_id].stats.items():
                base = merged.get(phase)
                merged[phase] = stats if base is None else base.merge(stats)
        return merged

    @property
    def forged_accepted(self) -> int:
        """Total attacker content accepted across the pool (must be 0)."""
        return sum(s.forged_accepted for s in self.sessions.values())
