"""``repro-experiments serve`` / ``loadgen`` subcommand implementations.

Both build a :class:`~repro.serve.service.ServeConfig` from flags and
run one live session; they differ in posture.  ``serve`` is the
interactive face — run a session, print a readable per-phase summary
and the adaptation trace.  ``loadgen`` is the soak face CI drives —
always instrumented, writes a validatable metrics artifact, prints a
machine-readable JSON summary, and exits non-zero the moment any
attacker content verifies (the ``forged_accepted`` gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.exceptions import ReproError
from repro.serve.loadgen import LoadgenResult, ObsOptions, run_loadgen
from repro.serve.service import ServeConfig

__all__ = ["serve_main", "loadgen_main", "config_from_args",
           "obs_from_args"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {text!r}")
    return value


def _ramp_step(text: str) -> Tuple[int, float]:
    """Parse a ``BLOCK:RATE`` loss-schedule step."""
    try:
        block_text, rate_text = text.split(":", 1)
        return int(block_text), float(rate_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BLOCK:RATE (e.g. 20:0.3), got {text!r}")


def _build_parser(prog: str, soak: bool) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Run a live multicast authentication session: an asyncio "
            "sender streams signed blocks to concurrent receivers over "
            "a pluggable transport while an adaptive controller "
            "re-selects scheme parameters from loss feedback."
        ),
    )
    parser.add_argument("--receivers", type=int, default=8, metavar="N",
                        help="concurrent receiver sessions (default 8)")
    parser.add_argument("--blocks", type=int, default=20, metavar="N",
                        help="blocks to stream (default 20)")
    parser.add_argument("--block-size", type=int, default=12, metavar="N",
                        help="payloads per block (default 12)")
    parser.add_argument("--payload-size", type=int, default=32, metavar="B",
                        help="payload bytes (default 32)")
    parser.add_argument("--loss", type=float, default=0.05, metavar="P",
                        help="channel loss rate from block 0 (default 0.05)")
    parser.add_argument("--ramp", type=_ramp_step, action="append",
                        default=[], metavar="BLOCK:RATE",
                        help="add a loss-schedule step (repeatable), "
                             "e.g. --ramp 20:0.3")
    parser.add_argument("--attack", default=None, metavar="MIX",
                        help="adversarial mix on every channel "
                             "(pollution, dos or storm; default none)")
    parser.add_argument("--churn", default=None, metavar="SPEC",
                        help="dynamic membership: late joins, graceful "
                             "leaves and mid-block crashes from a seeded "
                             "plan (storm[:J,L,C], flood:BLOCK or "
                             "flap:COUNT; default none)")
    parser.add_argument("--topology", default=None, metavar="SPEC",
                        help="stream over a distribution tree with "
                             "correlated per-link loss instead of "
                             "independent channels (star, spine:<groups>, "
                             "dualspine:<groups>; default none)")
    parser.add_argument("--trees", type=_positive_int, default=1,
                        metavar="K",
                        help="redundant edge-disjoint-biased trees per "
                             "packet, deduplicated at the receiver "
                             "(default 1; needs --topology)")
    parser.add_argument("--subtree-adaptive", action="store_true",
                        dest="subtree_adaptive",
                        help="run one adaptive controller per subtree "
                             "instead of pool-wide (needs --topology)")
    parser.add_argument("--design-table", default=None, metavar="FILE",
                        dest="design_table",
                        help="serve scheme selections from a precomputed "
                             "design table (see 'repro-experiments "
                             "design-table build') instead of running "
                             "the optimizer inline; uncovered points "
                             "still fall back inline, counted")
    parser.add_argument("--scheme-family", choices=("emss", "ac"),
                        default="emss", dest="scheme_family",
                        help="scheme family the controller designs "
                             "within (default emss)")
    parser.add_argument("--transport", choices=("local", "udp"),
                        default="local",
                        help="delivery fabric (default local: in-process, "
                             "deterministic virtual time)")
    parser.add_argument("--seed", type=int, default=7, metavar="S",
                        help="root of the deterministic seed tree")
    parser.add_argument("--queue-size", type=int, default=256, metavar="N",
                        help="per-receiver transport queue capacity")
    parser.add_argument("--q-min", type=float, default=0.75, metavar="Q",
                        dest="q_min_target",
                        help="authentication-probability target the "
                             "controller designs for (default 0.75)")
    parser.add_argument("--no-adaptive", action="store_true",
                        help="freeze the initial scheme parameters")
    parser.add_argument("--batch-size", type=_positive_int, default=1,
                        metavar="N",
                        help="blocks amortized per root signature: sign "
                             "one Merkle root over N blocks and attach "
                             "per-block proofs (default 1: sign every "
                             "block)")
    parser.add_argument("--flush-deadline", type=float, default=None,
                        metavar="S", dest="flush_deadline",
                        help="flush a partial batch once its oldest "
                             "block has waited S virtual seconds "
                             "(default: only full batches flush early)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        dest="timeout_s",
                        help="abort the session after S seconds")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the run manifest + metrics snapshot "
                             "as JSON to FILE" +
                             ("" if not soak else
                              " (validates with the standard schema)"))
    obs = parser.add_argument_group(
        "observability outputs",
        "deterministic artifacts: identical configs emit identical bytes")
    obs.add_argument("--lifecycle-out", metavar="FILE", default=None,
                     help="write per-packet lifecycle traces as JSON "
                          "lines (sign/frame/enqueue/transport/ingest/"
                          "verify)")
    obs.add_argument("--timeseries-out", metavar="FILE", default=None,
                     help="write per-receiver gauges on a fixed "
                          "virtual-time grid as JSON lines")
    obs.add_argument("--prom-out", metavar="FILE", default=None,
                     help="write a Prometheus text-format snapshot of "
                          "the run's metrics and final gauges")
    obs.add_argument("--perfetto-out", metavar="FILE", default=None,
                     help="write a Chrome trace-event JSON loadable in "
                          "Perfetto / chrome://tracing")
    obs.add_argument("--trace-sample", type=_positive_int, default=1,
                     metavar="N",
                     help="keep 1/N of the lifecycle traces, selected "
                          "deterministically by trace-ID hash "
                          "(default 1: keep all)")
    obs.add_argument("--timeseries-interval", type=float, default=0.05,
                     metavar="S",
                     help="virtual seconds between timeseries ticks "
                          "(default 0.05)")
    health = parser.add_argument_group(
        "online health plane",
        "streaming SLO monitors, envelope-drift detection and soundness "
        "sentinels evaluated at block boundaries; alerts are "
        "deterministic and byte-identical across reruns")
    health.add_argument("--alerts-out", metavar="FILE", default=None,
                        dest="alerts_out",
                        help="write health alerts as canonical JSON "
                             "lines (implies --health)")
    health.add_argument("--slo", metavar="SPEC", default=None,
                        help="SLO spec 'q:<target>[:<deficit>]' — monitor "
                             "per-receiver verified fraction against "
                             "<target> with a CUSUM that fires after "
                             "<deficit> cumulative packet shortfall "
                             "(default: the --q-min target, deficit 24; "
                             "implies --health)")
    health.add_argument("--health", action="store_true",
                        help="run the health monitors even without an "
                             "alerts file (alerts land in the summary, "
                             "manifest and Prometheus/Perfetto outputs)")
    health.add_argument("--strict-health", action="store_true",
                        dest="strict_health",
                        help="also exit non-zero (status 3) when "
                             "warning-severity alerts fired")
    if not soak:
        parser.add_argument("--json", action="store_true", dest="as_json",
                            help="emit the session summary as JSON")
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Translate parsed flags into a :class:`ServeConfig`."""
    schedule = [(0, args.loss)]
    for block_id, rate in sorted(args.ramp):
        if block_id == 0:
            schedule[0] = (0, rate)
        else:
            schedule.append((block_id, rate))
    return ServeConfig(
        receivers=args.receivers,
        blocks=args.blocks,
        block_size=args.block_size,
        payload_size=args.payload_size,
        loss_schedule=tuple(schedule),
        attack=args.attack,
        q_min_target=args.q_min_target,
        seed=args.seed,
        queue_size=args.queue_size,
        transport=args.transport,
        adaptive=not args.no_adaptive,
        timeout_s=args.timeout_s,
        batch_size=args.batch_size,
        flush_deadline=args.flush_deadline,
        topology=args.topology,
        trees=args.trees,
        subtree_adaptive=args.subtree_adaptive,
        churn=args.churn,
        design_table=args.design_table,
        scheme_family=args.scheme_family,
    )


def obs_from_args(args: argparse.Namespace) -> Optional[ObsOptions]:
    """Translate observability flags; ``None`` when nothing is requested."""
    if not (args.lifecycle_out or args.timeseries_out or args.prom_out
            or args.perfetto_out or args.alerts_out or args.slo
            or args.health):
        return None
    return ObsOptions(
        lifecycle_out=args.lifecycle_out,
        timeseries_out=args.timeseries_out,
        prom_out=args.prom_out,
        perfetto_out=args.perfetto_out,
        trace_sample=args.trace_sample,
        timeseries_interval=args.timeseries_interval,
        alerts_out=args.alerts_out,
        slo=args.slo,
        health=args.health,
    )


def _render_summary(summary: dict) -> str:
    lines = [
        f"live session: {summary['blocks']} blocks -> "
        f"{summary['receivers']} receivers over {summary['transport']}"
        + (f" under '{summary['attack']}' attack" if summary["attack"]
           else ""),
        f"  delivered payloads : {summary['delivered']}",
        f"  queue drops        : {summary['queue_drops']}",
        f"  forged accepted    : {summary['forged_accepted']}"
        + ("  (SOUNDNESS VIOLATION)" if summary["forged_accepted"] else ""),
        f"  schemes used       : {', '.join(summary['schemes_used'])}",
        f"  switches at blocks : "
        + (", ".join(str(b) for b in summary["adaptation_switches"])
           or "none"),
    ]
    for phase in summary["phases"]:
        q_min = phase["q_min"]
        q_text = "n/a" if q_min is None else f"{q_min:.4f}"
        lines.append(f"  {phase['phase']:<24} received={phase['received']:<6}"
                     f" q_min={q_text}")
    return "\n".join(lines)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments serve`` — run one session, print a summary."""
    args = _build_parser("repro-experiments serve", soak=False).parse_args(
        argv)
    try:
        config = config_from_args(args)
        result = run_loadgen(config, obs=obs_from_args(args))
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    session, summary = result.session, result.summary
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics_payload)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(_render_summary(summary))
    if session.forged_accepted != 0:
        return 1
    return _health_exit(result, args.strict_health)


def loadgen_main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments loadgen`` — instrumented soak with a gate."""
    args = _build_parser("repro-experiments loadgen", soak=True).parse_args(
        argv)
    try:
        config = config_from_args(args)
        result = run_loadgen(config, obs=obs_from_args(args))
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics_payload)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    print(json.dumps(result.summary, indent=2, sort_keys=True))
    if not result.ok:
        print(f"FAIL: forged_accepted="
              f"{result.session.forged_accepted} (must be 0)",
              file=sys.stderr)
        return 1
    return _health_exit(result, args.strict_health)


def _health_exit(result: LoadgenResult, strict: bool) -> int:
    """Exit status from the health plane: 0 ok, 1 critical, 3 strict."""
    if result.critical_alerts:
        print(f"FAIL: {result.critical_alerts} critical health alert(s)",
              file=sys.stderr)
        return 1
    if strict and result.warning_alerts:
        print(f"FAIL (strict-health): {result.warning_alerts} warning "
              f"health alert(s)", file=sys.stderr)
        return 3
    return 0


def _write_metrics(path: str, payload: dict) -> None:
    from repro.obs import write_json_file

    write_json_file(path, payload)
