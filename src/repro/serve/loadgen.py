"""Load generation: instrumented soak runs of the live service.

:func:`run_loadgen` is the programmatic face of ``repro-experiments
loadgen`` and the CI soak job: it runs one
:func:`~repro.serve.service.run_live_session` under a fresh
:class:`~repro.obs.MetricsRegistry`, then packages the sealed manifest
and metrics snapshot into the same ``{"format": 1, "runs": [...]}``
payload the sweep CLI emits — so the soak artifact validates with
:func:`~repro.obs.validate_metrics_file` like every other metrics
file — and distills the numbers the job gates on (``forged_accepted``
above all) into a flat summary dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.signatures import Signer
from repro.obs import MetricsRegistry, use_registry
from repro.obs.manifest import METRICS_FILE_VERSION
from repro.serve.service import ServeConfig, SessionResult, run_live_session

__all__ = ["LoadgenResult", "run_loadgen"]


@dataclass
class LoadgenResult:
    """One soak run: session results, metrics payload, gate summary."""

    session: SessionResult
    metrics_payload: dict
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The soak gate: no attacker content ever verified."""
        return self.session.forged_accepted == 0


def run_loadgen(config: ServeConfig,
                signer: Optional[Signer] = None) -> LoadgenResult:
    """Run one instrumented live session and package its artifacts."""
    registry = MetricsRegistry()
    with use_registry(registry):
        session = run_live_session(config, signer=signer)
    metrics_payload = {
        "format": METRICS_FILE_VERSION,
        "runs": [{
            "manifest": session.manifest.to_dict(),
            "metrics": registry.snapshot(),
        }],
    }
    phases: List[Dict[str, object]] = []
    for phase in sorted(session.stats):
        stats = session.stats[phase]
        received = sum(t.received for t in stats.tallies.values())
        phases.append({
            "phase": phase,
            "received": received,
            "q_min": stats.q_min if received else None,
            "forged_accepted": stats.forged_accepted,
        })
    switches = [event.block_id for event in session.events if event.switched]
    summary: Dict[str, object] = {
        "receivers": config.receivers,
        "blocks": config.blocks,
        "transport": config.transport,
        "attack": config.attack,
        "forged_accepted": session.forged_accepted,
        "delivered": session.delivered,
        "queue_drops": sum(session.queue_drops.values()),
        "schemes_used": session.schemes_used,
        "adaptation_switches": switches,
        "phases": phases,
    }
    return LoadgenResult(session=session, metrics_payload=metrics_payload,
                         summary=summary)
