"""Load generation: instrumented soak runs of the live service.

:func:`run_loadgen` is the programmatic face of ``repro-experiments
loadgen`` and the CI soak job: it runs one
:func:`~repro.serve.service.run_live_session` under a fresh
:class:`~repro.obs.MetricsRegistry`, then packages the sealed manifest
and metrics snapshot into the same ``{"format": 1, "runs": [...]}``
payload the sweep CLI emits — so the soak artifact validates with
:func:`~repro.obs.validate_metrics_file` like every other metrics
file — and distills the numbers the job gates on (``forged_accepted``
above all) into a flat summary dict.

With an :class:`ObsOptions` the run additionally emits the
deterministic observability artifacts: a packet-lifecycle JSON-lines
file, a gauge timeseries, a Perfetto/Chrome trace and a Prometheus
text snapshot.  All of them derive from seeds and virtual time only,
so CI diffs two runs of the same config byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.signatures import Signer
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import write_chrome_trace, write_prometheus
from repro.obs.health import (
    DEFAULT_SLO_DEFICIT,
    AlertSink,
    HealthMonitor,
    parse_slo_spec,
)
from repro.obs.lifecycle import LifecycleTracer
from repro.obs.manifest import METRICS_FILE_VERSION
from repro.obs.timeseries import TimeseriesSampler
from repro.serve.service import ServeConfig, SessionResult, run_live_session

__all__ = ["LoadgenResult", "ObsOptions", "run_loadgen"]


@dataclass(frozen=True)
class ObsOptions:
    """Where (and how densely) a loadgen run writes observability.

    Any output left ``None`` is skipped; ``trace_sample`` keeps
    ``1/N`` of the lifecycle traces (selected deterministically by
    trace-ID hash) and ``timeseries_interval`` is the virtual-time
    gauge grid in seconds.

    The health plane runs when any of ``alerts_out`` (canonical
    JSON-lines alert file), ``slo`` (a ``q:<target>[:<deficit>]``
    spec overriding the config's ``q_min_target``) or the ``health``
    toggle asks for it.
    """

    lifecycle_out: Optional[str] = None
    timeseries_out: Optional[str] = None
    prom_out: Optional[str] = None
    perfetto_out: Optional[str] = None
    trace_sample: int = 1
    timeseries_interval: float = 0.05
    alerts_out: Optional[str] = None
    slo: Optional[str] = None
    health: bool = False

    @property
    def wants_lifecycle(self) -> bool:
        """Whether any output needs the lifecycle tracer running."""
        return self.lifecycle_out is not None or self.perfetto_out is not None

    @property
    def wants_health(self) -> bool:
        """Whether the run should evaluate the health monitors."""
        return (self.health or self.alerts_out is not None
                or self.slo is not None)


@dataclass
class LoadgenResult:
    """One soak run: session results, metrics payload, gate summary."""

    session: SessionResult
    metrics_payload: dict
    summary: Dict[str, object] = field(default_factory=dict)
    health: Optional[HealthMonitor] = None

    @property
    def ok(self) -> bool:
        """The soak gate: no attacker content ever verified."""
        return self.session.forged_accepted == 0

    @property
    def critical_alerts(self) -> int:
        """Critical health alerts fired (0 when the plane was off)."""
        if self.health is None:
            return 0
        return self.health.counts()["critical"]

    @property
    def warning_alerts(self) -> int:
        """Warning health alerts fired (0 when the plane was off)."""
        if self.health is None:
            return 0
        return self.health.counts()["warning"]


def run_loadgen(config: ServeConfig,
                signer: Optional[Signer] = None,
                obs: Optional[ObsOptions] = None) -> LoadgenResult:
    """Run one instrumented live session and package its artifacts."""
    registry = MetricsRegistry()
    lifecycle: Optional[LifecycleTracer] = None
    timeseries: Optional[TimeseriesSampler] = None
    health: Optional[HealthMonitor] = None
    if obs is not None and obs.wants_lifecycle:
        lifecycle = LifecycleTracer(config.seed, sample=obs.trace_sample,
                                    sink=obs.lifecycle_out)
    if obs is not None and obs.timeseries_out is not None:
        timeseries = TimeseriesSampler(interval_s=obs.timeseries_interval,
                                       sink=obs.timeseries_out)
    if obs is not None and obs.wants_health:
        if obs.slo is not None:
            spec = parse_slo_spec(obs.slo)
            q_target: object = f"{spec.q_num}/{spec.q_den}"
            deficit = spec.deficit
        else:
            q_target = config.q_min_target
            deficit = DEFAULT_SLO_DEFICIT
        health = HealthMonitor(
            q_target=q_target, deficit=deficit,
            sink=AlertSink(obs.alerts_out) if obs.alerts_out else None)
    try:
        with use_registry(registry):
            session = run_live_session(config, signer=signer,
                                       lifecycle=lifecycle,
                                       timeseries=timeseries,
                                       health=health)
        if obs is not None and obs.perfetto_out is not None:
            # Export before flushing: flush drains the event buffer.
            write_chrome_trace(
                obs.perfetto_out, lifecycle.events(),
                alerts=([alert.to_dict() for alert in health.alerts]
                        if health is not None else None))
    finally:
        # Closing flushes whatever is still buffered — on the success
        # path and on every error path alike (satellite invariant: a
        # crashed instrumented run still leaves parseable JSON lines).
        if lifecycle is not None:
            lifecycle.close()
        if timeseries is not None:
            timeseries.close()
        if health is not None:
            health.close()
    metrics_payload = {
        "format": METRICS_FILE_VERSION,
        "runs": [{
            "manifest": session.manifest.to_dict(),
            "metrics": registry.snapshot(),
        }],
    }
    if obs is not None and obs.prom_out is not None:
        gauges: Dict[str, float] = {}
        if timeseries is not None:
            for receiver, row in sorted(timeseries.last_gauges().items()):
                for name, value in sorted(row.items()):
                    if name == "r" or isinstance(value, (str, bool)):
                        continue
                    gauges[f"serve_{receiver}_{name}"] = value
        if health is not None:
            for name, value in sorted(health.gauges().items()):
                gauges[f"health_{name}"] = value
        write_prometheus(obs.prom_out, registry=registry,
                         gauges=gauges or None)
    phases: List[Dict[str, object]] = []
    for phase in sorted(session.stats):
        stats = session.stats[phase]
        received = sum(t.received for t in stats.tallies.values())
        phases.append({
            "phase": phase,
            "received": received,
            "q_min": stats.q_min if received else None,
            "forged_accepted": stats.forged_accepted,
        })
    switches = [event.block_id for event in session.events if event.switched]
    summary: Dict[str, object] = {
        "receivers": config.receivers,
        "blocks": config.blocks,
        "transport": config.transport,
        "attack": config.attack,
        "forged_accepted": session.forged_accepted,
        "delivered": session.delivered,
        "queue_drops": sum(session.queue_drops.values()),
        "schemes_used": session.schemes_used,
        "adaptation_switches": switches,
        "phases": phases,
    }
    if config.topology is not None:
        summary["topology"] = config.topology
        summary["trees"] = config.trees
        summary["subtree_adaptive"] = config.subtree_adaptive
        summary["duplicates_suppressed"] = session.duplicates_suppressed
    if config.churn is not None:
        membership = session.manifest.parameters.get("membership", {})
        summary["churn"] = config.churn
        summary["membership_counts"] = membership.get("counts", {})
        summary["final_active"] = len(membership.get("final_active", []))
    if lifecycle is not None:
        summary["lifecycle_events"] = lifecycle.events_recorded
    if timeseries is not None:
        summary["timeseries_samples"] = len(timeseries.samples)
    if health is not None:
        summary["health"] = {
            "alerts": health.counts(),
            "kinds": health.counts_by_kind(),
            "worst_severity": health.worst_severity(),
            "slo_breaches": sum(s.breaches for s in health.slo.values()),
            "off_lattice_blocks": health.off_lattice_blocks,
            "refresh_requests": registry.counters.get(
                "design.refresh.requests", 0),
        }
    return LoadgenResult(session=session, metrics_payload=metrics_payload,
                         summary=summary, health=health)
