"""Closing the loop: loss feedback into the parameter optimizer.

The paper's complaint about EMSS/AC — "there is no effective way of
choosing these parameters" — was answered offline by
:mod:`repro.design.optimizer`.  :class:`AdaptiveController` makes the
choice *live*: it folds every receiver's per-block loss report into a
pool-wide :class:`~repro.network.loss.LossEstimator`, quantizes the
EWMA rate up onto a design grid, and re-selects the design whenever
the grid point moves.  Quantizing up keeps the adaptation
conservative (design for at least the observed loss) and, more
importantly, deterministic: tiny float differences in the estimate
cannot flip the chosen parameters, only a genuine grid-point crossing
can.

Selection prefers a precomputed
:class:`~repro.design.service.DesignService` when one is wired in
(``--design-table``): a grid-point crossing then costs one O(1) table
lookup instead of an inline optimizer run, with the inline search kept
only as a *counted* cold-miss fallback (``design.inline.calls`` /
``design.service.fallbacks`` on the live registry — a warm-table soak
asserts both stay zero).  Without a service the controller optimizes
inline exactly as before, byte-for-byte.

Every decision is recorded as an :class:`AdaptationEvent` so sessions
can assert on the switching behaviour (the acceptance test pins the
staircase p=0.05 → emss(1,2) ... p=0.3 → emss(2,1)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.design.grid import quantize_up
from repro.design.optimizer import ParameterChoice, optimize_ac, optimize_emss
from repro.design.service import DesignCoverageError, DesignService
from repro.exceptions import DesignError, SimulationError
from repro.network.loss import LossEstimator, PooledLossEstimator
from repro.obs.registry import get_registry
from repro.schemes.base import Scheme
from repro.schemes.registry import make_scheme
from repro.serve.receiver import LossReport

__all__ = ["AdaptationEvent", "AdaptiveController",
           "SubtreeAdaptiveController", "CONTROLLER_FAMILIES",
           "DEFAULT_P_GRID"]

DEFAULT_P_GRID = (0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5)

#: Design families the live controllers can fly: schemes whose
#: parameters are an integer pair the registry can instantiate from
#: a ``family(x,y)`` spec.  The wider zoo (offset policies,
#: probabilistic graphs) is served by the same table to offline
#: consumers via :class:`~repro.design.service.DesignService` directly.
CONTROLLER_FAMILIES = ("emss", "ac")


@dataclass(frozen=True)
class AdaptationEvent:
    """One controller decision, taken after observing ``block_id``.

    ``group`` names the subtree the decision applies to when a
    :class:`SubtreeAdaptiveController` took it; pool-wide decisions
    leave it ``None``.
    """

    block_id: int
    p_hat: float
    p_design: float
    scheme: str
    parameters: Tuple[int, int]
    predicted_q_min: float
    cost: float
    switched: bool
    feasible: bool = True
    group: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for :class:`~repro.obs.RunManifest` storage."""
        record = {
            "block_id": self.block_id,
            "p_hat": self.p_hat,
            "p_design": self.p_design,
            "scheme": self.scheme,
            "parameters": list(self.parameters),
            "predicted_q_min": self.predicted_q_min,
            "cost": self.cost,
            "switched": self.switched,
            "feasible": self.feasible,
        }
        if self.group is not None:
            record["group"] = self.group
        return record


class AdaptiveController:
    """Per-block scheme re-selection from pooled loss reports.

    Parameters
    ----------
    block_size:
        ``n`` handed to the optimizer (payloads per block).
    q_min_target:
        Authentication-probability floor the design must meet.
    estimator:
        Pool-wide loss estimator; a fresh one if omitted.
    p_grid:
        Sorted design grid; the EWMA estimate is quantized *up* to the
        nearest grid point.  Estimates above the top of the grid clamp
        to it.
    initial_p:
        Loss rate the session is designed for before any feedback.
    estimate:
        Which estimator view drives decisions: ``"window"`` (default —
        the exact rate over the last ``window`` packet slots pooled
        across receivers, stable under bursty per-block loss) or
        ``"ewma"`` (faster-reacting but, with block-granular feedback,
        dominated by each block's tail).
    slack_se:
        Statistical slack before quantizing: the design point is the
        smallest grid point not more than this many binomial standard
        errors *below* the estimate.  Without it, a channel running at
        exactly a grid-point rate hovers epsilon above it by sampling
        noise and flaps a full grid step.  ``0`` disables the slack.
    family:
        Scheme family the controller designs within: ``"emss"``
        (default) or ``"ac"`` (see :data:`CONTROLLER_FAMILIES`).
    design_service:
        Precomputed :class:`~repro.design.service.DesignService` to
        consult before any inline search.  Covered lookups (including
        authoritative infeasibility) never run an optimizer; uncovered
        points fall back inline and are counted
        (``design.service.fallbacks``).  ``None`` keeps the classic
        always-inline behaviour.
    m_values, d_values, max_delay_slots:
        Search space forwarded to
        :func:`~repro.design.optimizer.optimize_emss` (inline EMSS
        path; ``max_delay_slots`` also bounds table lookups and the
        inline AC search).
    a_values, b_values:
        Search space forwarded to
        :func:`~repro.design.optimizer.optimize_ac` (inline AC path).
    group:
        Subtree label stamped on every event this controller emits
        (``None`` for the classic pool-wide controller).
    membership_aware:
        Use a :class:`~repro.network.loss.PooledLossEstimator` keyed
        by receiver id instead of one flat window, so a member that
        leaves can be retired (:meth:`retire_receiver`) and its stale
        samples fold out of the pooled estimate immediately rather
        than aging out over the next ``window`` slots.
    """

    def __init__(self, block_size: int, q_min_target: float = 0.75,
                 estimator: Optional[LossEstimator] = None,
                 p_grid: Sequence[float] = DEFAULT_P_GRID,
                 initial_p: float = 0.05,
                 estimate: str = "window",
                 slack_se: float = 1.0,
                 family: str = "emss",
                 design_service: Optional[DesignService] = None,
                 m_values: Sequence[int] = tuple(range(1, 7)),
                 d_values: Sequence[int] = (1, 2, 4, 8),
                 a_values: Sequence[int] = tuple(range(2, 11)),
                 b_values: Sequence[int] = tuple(range(1, 11)),
                 max_delay_slots: Optional[int] = 8,
                 group: Optional[str] = None,
                 membership_aware: bool = False) -> None:
        if block_size < 1:
            raise SimulationError(f"block_size must be >= 1, got {block_size}")
        if not p_grid or list(p_grid) != sorted(set(p_grid)):
            raise SimulationError("p_grid must be sorted and duplicate-free")
        if estimate not in ("window", "ewma"):
            raise SimulationError(
                f"estimate must be 'window' or 'ewma', got {estimate!r}")
        if slack_se < 0:
            raise SimulationError(f"slack_se must be >= 0, got {slack_se}")
        if family not in CONTROLLER_FAMILIES:
            raise SimulationError(
                f"controller family must be one of "
                f"{', '.join(CONTROLLER_FAMILIES)}, got {family!r}")
        self.family = family
        self.design_service = design_service
        self.table_hits = 0
        self.table_misses = 0
        self.inline_calls = 0
        self.refresh_requests = 0
        self.estimate = estimate
        self.slack_se = slack_se
        self.group = group
        self.block_size = block_size
        self.q_min_target = q_min_target
        self.membership_aware = membership_aware
        if estimator is not None:
            if membership_aware and not isinstance(estimator,
                                                   PooledLossEstimator):
                raise SimulationError(
                    "membership_aware controllers need a "
                    "PooledLossEstimator")
            self.estimator = estimator
        elif membership_aware:
            self.estimator = PooledLossEstimator()
        else:
            self.estimator = LossEstimator()
        self.p_grid = tuple(p_grid)
        self.m_values = tuple(m_values)
        self.d_values = tuple(d_values)
        self.a_values = tuple(a_values)
        self.b_values = tuple(b_values)
        self.max_delay_slots = max_delay_slots
        self.events: List[AdaptationEvent] = []
        self._p_design = self.quantize(initial_p)
        self._choice = self._optimize(self._p_design)
        if self._choice is None:
            raise DesignError(
                f"initial design infeasible at p={self._p_design}")
        self._scheme = make_scheme(self._spec(self._choice))

    # ------------------------------------------------------------------

    def quantize(self, p_hat: float) -> float:
        """Round a loss estimate up onto the design grid (clamped)."""
        return quantize_up(p_hat, self.p_grid, clamp=True)

    @staticmethod
    def _spec(choice: ParameterChoice) -> str:
        x, y = choice.parameters
        return f"{choice.scheme}({x},{y})"

    def _optimize(self, p_design: float) -> Optional[ParameterChoice]:
        """Select parameters for ``p_design``: table first, inline last.

        A covered table cell is authoritative either way — a feasible
        cell becomes the choice, an infeasible one returns ``None``
        (keep flying, retry next block) without ever running an
        optimizer.  Only an *uncovered* request falls through to the
        inline search, and that fallback is counted so warm-table
        sessions can assert it never happened.
        """
        registry = get_registry()
        if self.design_service is not None:
            try:
                point = self.design_service.lookup(
                    p_design, self.block_size, self.q_min_target,
                    family=self.family,
                    max_delay_slots=self.max_delay_slots)
            except DesignCoverageError:
                self.table_misses += 1
                if registry.enabled:
                    registry.count("design.service.fallbacks")
            else:
                self.table_hits += 1
                if point is None:
                    return None
                return point.to_parameter_choice()
        self.inline_calls += 1
        if registry.enabled:
            registry.count("design.inline.calls")
        try:
            if self.family == "ac":
                return optimize_ac(self.block_size, p_design,
                                   self.q_min_target,
                                   a_values=self.a_values,
                                   b_values=self.b_values,
                                   max_delay_slots=self.max_delay_slots)
            return optimize_emss(self.block_size, p_design,
                                 self.q_min_target,
                                 m_values=self.m_values,
                                 d_values=self.d_values,
                                 max_delay_slots=self.max_delay_slots)
        except DesignError:
            return None

    # ------------------------------------------------------------------

    @property
    def scheme(self) -> Scheme:
        """The scheme the next block should be packetized with."""
        return self._scheme

    @property
    def choice(self) -> ParameterChoice:
        """The current optimizer selection."""
        return self._choice

    @property
    def p_design(self) -> float:
        """Grid point the current parameters were designed for."""
        return self._p_design

    def gauges(self) -> Dict[str, object]:
        """Current controller state as a flat timeseries row.

        Emitted under the :data:`~repro.obs.timeseries.CONTROLLER_ROW`
        pseudo-receiver so live dashboards can plot the adaptation
        staircase next to the per-receiver loss estimates.
        """
        m, d = self._choice.parameters
        last = self.events[-1] if self.events else None
        return {
            "p_hat": last.p_hat if last is not None else 0.0,
            "p_design": self._p_design,
            "scheme": self._spec(self._choice),
            "m": m,
            "d": d,
            "predicted_q_min": self._choice.q_min,
            "cost": self._choice.cost,
            "decisions": len(self.events),
            "switches": sum(1 for e in self.events if e.switched),
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "inline_fallbacks": self.inline_calls,
            "refresh_requests": self.refresh_requests,
        }

    def observe(self, block_id: int,
                reports: Sequence[LossReport]) -> AdaptationEvent:
        """Fold one block's reports; maybe re-select parameters.

        Reports are folded in sorted receiver order so the pooled
        estimator's state is independent of task scheduling.
        """
        pooled = isinstance(self.estimator, PooledLossEstimator)
        for report in sorted(reports, key=lambda r: r.receiver_id):
            lost = report.expected - report.received
            if pooled:
                self.estimator.observe_block(report.receiver_id, lost,
                                             report.expected)
            else:
                self.estimator.observe_block(lost, report.expected)
        if self.estimate == "window":
            p_hat = self.estimator.window_rate
        else:
            p_hat = self.estimator.ewma_rate
        fill = self.estimator.window_fill
        slack = 0.0
        if self.slack_se > 0 and fill > 0:
            slack = self.slack_se * math.sqrt(
                max(p_hat * (1.0 - p_hat), 1.0 / fill) / fill)
        p_design = self.quantize(max(0.0, p_hat - slack))
        switched = False
        feasible = True
        if p_design != self._p_design:
            choice = self._optimize(p_design)
            if choice is None:
                # Infeasible at the requested operating point: keep
                # flying on the current parameters rather than stall
                # the stream; the design point does not advance, so
                # the next block retries.
                feasible = False
            else:
                switched = choice.parameters != self._choice.parameters
                self._choice = choice
                self._p_design = p_design
                if switched:
                    self._scheme = make_scheme(self._spec(choice))
        event = AdaptationEvent(
            block_id=block_id, p_hat=p_hat, p_design=p_design,
            scheme=self._choice.scheme, parameters=self._choice.parameters,
            predicted_q_min=self._choice.q_min, cost=self._choice.cost,
            switched=switched, feasible=feasible, group=self.group,
        )
        self.events.append(event)
        return event

    def envelope_counts(self) -> Tuple[int, int]:
        """Exact pooled window counts ``(lost, fill)`` for drift checks.

        These are the integer counts inside the estimator's sliding
        window — the health plane's drift detector compares them
        against :meth:`lattice_top` in cross-multiplied integers so no
        float rounding can flip an off-lattice verdict.
        """
        return (self.estimator.window_lost, self.estimator.window_fill)

    def lattice_top(self) -> float:
        """Top of the design lattice this controller can serve.

        The design table's grid when a service is wired (its coverage
        is what "off-lattice" means operationally), the controller's
        own quantization grid otherwise.
        """
        if self.design_service is not None:
            return self.design_service.p_grid[-1]
        return self.p_grid[-1]

    def request_refresh(self) -> bool:
        """Counted re-lookup hook for off-lattice drift alerts.

        The health plane calls this when the observed envelope leaves
        the lattice: the controller re-runs its selection at the
        current design point (a table re-lookup when a service is
        wired — the seam a future *background table rebuild* lands in)
        and the request is counted on the instance and the live
        registry (``design.refresh.requests``), so soaks can assert
        the hook fired.  Returns whether a feasible selection came
        back.
        """
        self.refresh_requests += 1
        registry = get_registry()
        if registry.enabled:
            registry.count("design.refresh.requests")
        choice = self._optimize(self._p_design)
        if choice is None:
            return False
        if choice.parameters != self._choice.parameters:
            self._scheme = make_scheme(self._spec(choice))
        self._choice = choice
        return True

    def retire_receiver(self, receiver_id: str) -> bool:
        """Fold a departed member's samples out of the pooled estimate.

        Only meaningful with a membership-aware estimator — there the
        leaver's per-receiver window is dropped wholesale, so its last
        (possibly stale or partial) blocks cannot bias the next design
        decision.  Returns whether anything was removed; a flat
        estimator always answers ``False`` (samples age out instead).
        """
        if isinstance(self.estimator, PooledLossEstimator):
            return self.estimator.retire(receiver_id)
        return False


class SubtreeAdaptiveController:
    """Per-subtree scheme selection: one inner controller per branch.

    A shared spine edge degrades its whole subtree at once, so one
    pool-wide loss estimate either over-provisions the clean branches
    or under-protects the hot one.  This controller partitions
    :class:`~repro.serve.receiver.LossReport`\\ s by their ``subtree``
    label and runs an independent :class:`AdaptiveController` per
    branch — each subtree gets the cheapest EMSS design meeting the
    ``q_min`` target *at its own loss rate*.

    The interface mirrors :class:`AdaptiveController` where the serve
    loop needs it (``observe``, ``events``, ``gauges``); scheme access
    is per group via :meth:`schemes_by_group`, which the sender's
    grouped transmit path consumes.

    Parameters
    ----------
    groups:
        Subtree label -> receiver ids behind it (see
        :meth:`~repro.topology.graph.Topology.subtree_groups`).
    block_size, q_min_target, initial_p, and the rest:
        Forwarded to every inner controller.
    """

    def __init__(self, groups: Dict[str, Sequence[str]], block_size: int,
                 q_min_target: float = 0.75, initial_p: float = 0.05,
                 **controller_kwargs) -> None:
        if not groups:
            raise SimulationError("need at least one subtree group")
        self.group_of: Dict[str, str] = {}
        for group, receiver_ids in groups.items():
            for receiver_id in receiver_ids:
                if receiver_id in self.group_of:
                    raise SimulationError(
                        f"receiver {receiver_id!r} in two subtrees")
                self.group_of[receiver_id] = group
        self.controllers: Dict[str, AdaptiveController] = {
            group: AdaptiveController(block_size=block_size,
                                      q_min_target=q_min_target,
                                      initial_p=initial_p, group=group,
                                      **controller_kwargs)
            for group in sorted(groups)
        }
        self.events: List[AdaptationEvent] = []

    def schemes_by_group(self) -> Dict[str, Scheme]:
        """Each subtree's current scheme, keyed by group label."""
        return {group: controller.scheme
                for group, controller in self.controllers.items()}

    def scheme_for(self, group: str) -> Scheme:
        """The scheme the named subtree's next block uses."""
        try:
            return self.controllers[group].scheme
        except KeyError:
            raise SimulationError(f"unknown subtree group {group!r}")

    def observe(self, block_id: int,
                reports: Sequence[LossReport]) -> List[AdaptationEvent]:
        """Fold one block's reports per subtree, in sorted group order."""
        by_group: Dict[str, List[LossReport]] = {}
        for report in reports:
            group = report.subtree or self.group_of.get(report.receiver_id)
            if group not in self.controllers:
                raise SimulationError(
                    f"report from {report.receiver_id!r} names unknown "
                    f"subtree {group!r}")
            by_group.setdefault(group, []).append(report)
        events: List[AdaptationEvent] = []
        for group in sorted(by_group):
            events.append(
                self.controllers[group].observe(block_id, by_group[group]))
        self.events.extend(events)
        return events

    def envelope_counts(self) -> Tuple[int, int]:
        """Pooled window counts summed over every subtree controller."""
        lost = 0
        fill = 0
        for group in sorted(self.controllers):
            group_lost, group_fill = self.controllers[group].envelope_counts()
            lost += group_lost
            fill += group_fill
        return (lost, fill)

    def lattice_top(self) -> float:
        """Shared lattice top (every inner controller is configured alike)."""
        first = min(self.controllers)
        return self.controllers[first].lattice_top()

    @property
    def refresh_requests(self) -> int:
        """Refresh requests summed over every subtree controller."""
        return sum(c.refresh_requests for c in self.controllers.values())

    def request_refresh(self) -> bool:
        """Forward the drift refresh hook to every subtree controller."""
        results = [self.controllers[group].request_refresh()
                   for group in sorted(self.controllers)]
        return all(results)

    def retire_receiver(self, receiver_id: str) -> bool:
        """Retire a leaver from its subtree's estimator (see inner)."""
        group = self.group_of.get(receiver_id)
        if group is None:
            return False
        return self.controllers[group].retire_receiver(receiver_id)

    def gauges(self) -> Dict[str, object]:
        """Flat timeseries row: every inner gauge, group-prefixed."""
        row: Dict[str, object] = {"groups": len(self.controllers)}
        for group in sorted(self.controllers):
            for name, value in self.controllers[group].gauges().items():
                row[f"{group}.{name}"] = value
        return row
