"""Dynamic membership: deterministic join/leave/crash plans for serve.

The paper's graphs assume a fixed receiver population; a production
multicast group churns constantly.  This module turns the abstract
churn-event stream of :mod:`repro.faults.churn` into a validated,
executable :class:`MembershipPlan` over concrete receiver identities:

* the **universe** is the full set of identities a session may ever
  host — initial members first, joinable spares after — and a
  receiver's *universe index* is its stable position in it.  Channel
  and attack seeding key on the universe index, never on a mutable
  list position, so a session with no churn is byte-identical to the
  pre-membership serve loop and a joiner's channel draws do not
  depend on who left before it arrived;
* **joins and leaves apply at block boundaries** (before the block
  streams), **crashes strike mid-block** (after the block is on the
  wire, before the victim settles it);
* validation enforces the protocol invariants the serve loop relies
  on: one join and one departure per receiver, joins only from the
  spare pool, departures only of active members, and at least one
  member surviving every block — the per-block barrier must never go
  empty.

Late joiners bootstrap per scheme (:data:`BOOTSTRAP_RULES`): every
block is self-contained in the serve layer — a signed root for
chain/EMSS/AC schemes, a dispersal boundary for SAIDA — so aligning
joins at block boundaries *is* the "resynchronize at the next signed
root / dispersal boundary" rule, and a joiner's first block verifies
exactly like any other receiver's.  TESLA is the exception with real
catch-up state: its receiver walks the disclosed key chain back to
the signed anchor commitment through the chain-length guard
(:meth:`repro.schemes.tesla.TeslaReceiver._learn_key`), which the
late-join edge tests pin directly.

:func:`storm_channel_factory` supplies the adversarial half of the
tentpole: it arms a :class:`~repro.faults.BootstrapBurstForgery`
burst on exactly the (joiner, join-block) channel cells, so every
join is raced by forged packets timed at its bootstrap window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.faults import AdversarialChannel, AttackPlan, BootstrapBurstForgery
from repro.faults.churn import CHURN_KINDS, ChurnEvent, churn_storm

__all__ = [
    "BOOTSTRAP_RULES",
    "MembershipEvent",
    "MembershipPlan",
    "parse_churn_spec",
    "storm_channel_factory",
]

#: Seed displacement for the bootstrap-burst plan armed on a joiner's
#: join block, beyond the cell's loss seed and the base attack offset
#: (a prime, like every stride in the derivation).
_BOOTSTRAP_OFFSET = 32452843

#: How each scheme family bootstraps a late joiner, keyed by registry
#: name.  Serve blocks are self-contained, so "next signed root" and
#: "next dispersal boundary" both collapse to "first full block after
#: the join" — which the boundary-aligned plan guarantees.
BOOTSTRAP_RULES: Dict[str, str] = {
    "emss": "resynchronize at the next signed root (block boundary)",
    "ac": "resynchronize at the next signed root (block boundary)",
    "offsets": "resynchronize at the next signed root (block boundary)",
    "random": "resynchronize at the next signed root (block boundary)",
    "rohatgi": "resynchronize at the next signed root (block boundary)",
    "rohatgi-online": ("resynchronize at the next signed root "
                       "(block boundary)"),
    "wong-lam": "resynchronize at the next signed root (block boundary)",
    "sign-each": "every packet is independently verifiable; join anywhere",
    "saida": "resynchronize at the next dispersal boundary (block boundary)",
    "tesla": ("authenticate the signed anchor commitment, then catch up "
              "the key chain through the chain-length guard on the first "
              "disclosed key"),
}


@dataclass(frozen=True)
class MembershipEvent:
    """One membership transition bound to a concrete receiver id."""

    block: int
    kind: str
    receiver_id: str

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise SimulationError(
                f"unknown membership kind {self.kind!r} "
                f"(known: {', '.join(CHURN_KINDS)})")
        if self.block < 1:
            raise SimulationError(
                f"membership events start at block 1, got {self.block}")

    def to_record(self) -> List[object]:
        """Canonical ``[block, kind, receiver_id]`` manifest row."""
        return [self.block, self.kind, self.receiver_id]


def parse_churn_spec(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """Validate a ``--churn`` spec; returns ``(kind, numeric args)``.

    Grammar (all numbers optional where bracketed)::

        storm[:JOIN_RATE,LEAVE_RATE,CRASH_RATE]   Poisson churn per block
        flood:BLOCK                               all spares join at BLOCK
        flap:COUNT                                COUNT one-block members

    Cheap enough for ``ServeConfig.__post_init__`` to call eagerly, so
    a bad spec fails at config construction, not mid-session.
    """
    head, _, tail = spec.partition(":")
    if head == "storm":
        if not tail:
            return "storm", ()
        try:
            rates = tuple(float(part) for part in tail.split(","))
        except ValueError:
            rates = None
        if rates is None or len(rates) != 3 or any(r < 0 for r in rates):
            raise SimulationError(
                f"storm spec takes three non-negative rates "
                f"(storm:J,L,C), got {spec!r}")
        return "storm", rates
    if head == "flood":
        try:
            block = int(tail)
        except ValueError:
            block = -1
        if block < 1:
            raise SimulationError(
                f"flood spec takes a block >= 1 (flood:BLOCK), got {spec!r}")
        return "flood", (float(block),)
    if head == "flap":
        try:
            count = int(tail)
        except ValueError:
            count = -1
        if count < 1:
            raise SimulationError(
                f"flap spec takes a count >= 1 (flap:COUNT), got {spec!r}")
        return "flap", (float(count),)
    raise SimulationError(
        f"unknown churn spec {spec!r} (storm[:J,L,C] | flood:BLOCK "
        f"| flap:COUNT)")


@dataclass(frozen=True)
class MembershipPlan:
    """A validated, executable membership trajectory for one session.

    ``universe`` lists every identity the session may host (unique;
    universe index = position); the first ``initial`` of them are
    active at block 0.  ``events`` is the complete transition list —
    construction validates it against the invariants in the module
    docstring and precomputing anything would break frozen-ness, so
    the accessors filter on demand (plans are small).
    """

    universe: Tuple[str, ...]
    initial: int
    blocks: int
    events: Tuple[MembershipEvent, ...] = ()
    spec: Optional[str] = None

    def __post_init__(self) -> None:
        if len(set(self.universe)) != len(self.universe):
            raise SimulationError("universe ids must be unique")
        if not 1 <= self.initial <= len(self.universe):
            raise SimulationError(
                f"initial membership must be in [1, {len(self.universe)}], "
                f"got {self.initial}")
        if self.blocks < 1:
            raise SimulationError(f"need >= 1 block, got {self.blocks}")
        object.__setattr__(self, "events", tuple(sorted(
            self.events,
            key=lambda e: (e.block, CHURN_KINDS.index(e.kind),
                           e.receiver_id))))
        indices = {rid: i for i, rid in enumerate(self.universe)}
        active = set(self.universe[:self.initial])
        spares = set(self.universe[self.initial:])
        seen: Dict[Tuple[int, str], str] = {}
        for event in self.events:
            if event.receiver_id not in indices:
                raise SimulationError(
                    f"event names unknown receiver {event.receiver_id!r}")
            if event.block >= self.blocks:
                raise SimulationError(
                    f"event at block {event.block} beyond the session's "
                    f"{self.blocks} blocks")
            key = (event.block, event.receiver_id)
            if key in seen:
                raise SimulationError(
                    f"receiver {event.receiver_id!r} has two events at "
                    f"block {event.block}")
            seen[key] = event.kind
            if event.kind == "join":
                if event.receiver_id not in spares:
                    raise SimulationError(
                        f"{event.receiver_id!r} cannot join: not in the "
                        f"spare pool (initial members never join, nobody "
                        f"joins twice)")
                spares.discard(event.receiver_id)
                active.add(event.receiver_id)
            else:
                if event.receiver_id not in active:
                    raise SimulationError(
                        f"{event.receiver_id!r} cannot {event.kind}: "
                        f"not active at block {event.block}")
                active.discard(event.receiver_id)
                if not active:
                    raise SimulationError(
                        f"block {event.block} would leave the session "
                        f"empty; at least one member must survive")

    # -- accessors the serve loop drives ------------------------------

    @property
    def initial_ids(self) -> List[str]:
        """Identities active before block 0 streams."""
        return list(self.universe[:self.initial])

    def index_of(self, receiver_id: str) -> int:
        """The stable universe index channel seeding keys on."""
        try:
            return self.universe.index(receiver_id)
        except ValueError:
            raise SimulationError(f"unknown receiver {receiver_id!r}")

    def boundary_events(self, block: int) -> List[MembershipEvent]:
        """Leaves then joins applying at the boundary before ``block``."""
        return [e for e in self.events
                if e.block == block and e.kind in ("leave", "join")]

    def crash_events(self, block: int) -> List[MembershipEvent]:
        """Crashes striking after ``block`` is on the wire."""
        return [e for e in self.events
                if e.block == block and e.kind == "crash"]

    @property
    def join_blocks(self) -> Dict[str, int]:
        """Joiner id -> the block whose boundary admits it."""
        return {e.receiver_id: e.block for e in self.events
                if e.kind == "join"}

    def counts(self) -> Dict[str, int]:
        """Event totals by kind (stable keys for summaries/tests)."""
        totals = {kind: 0 for kind in CHURN_KINDS}
        for event in self.events:
            totals[event.kind] += 1
        return totals

    def final_active(self) -> List[str]:
        """Identities still active after the last block, sorted."""
        active = set(self.universe[:self.initial])
        for event in self.events:
            if event.kind == "join":
                active.add(event.receiver_id)
            else:
                active.discard(event.receiver_id)
        return sorted(active)

    def describe(self) -> Dict[str, object]:
        """Manifest-ready record: spec, totals and the full event list."""
        return {
            "spec": self.spec,
            "universe": len(self.universe),
            "initial": self.initial,
            "counts": self.counts(),
            "final_active": self.final_active(),
            "events": [event.to_record() for event in self.events],
        }

    # -- construction --------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, receivers: int, blocks: int,
                  seed: int) -> "MembershipPlan":
        """Build the plan a ``--churn`` spec describes.

        The universe doubles the initial membership (``r00..``
        continue past the initial count), so a storm always has spares
        to admit; the event stream comes from
        :func:`repro.faults.churn.churn_storm` on the session seed —
        deterministic, worker-count independent, and disjoint from the
        channel seed derivation by construction (the churn generator
        draws from seed-tree children, channels from affine strides).
        """
        kind, args = parse_churn_spec(spec)
        spare = receivers
        join_rate, leave_rate, crash_rate = 0.5, 0.25, 0.125
        flappers = 0
        flood_block = None
        if kind == "storm" and args:
            join_rate, leave_rate, crash_rate = args
        elif kind == "flood":
            flood_block = min(int(args[0]), max(1, blocks - 1))
            join_rate = leave_rate = crash_rate = 0.0
        elif kind == "flap":
            flappers = min(int(args[0]), spare, max(0, blocks - 1))
            join_rate = leave_rate = crash_rate = 0.0
        churn = churn_storm(seed, receivers, spare, blocks,
                            join_rate=join_rate, leave_rate=leave_rate,
                            crash_rate=crash_rate, flappers=flappers,
                            flood_block=flood_block)
        universe = tuple(f"r{i:02d}" for i in range(receivers + spare))
        events = tuple(
            MembershipEvent(e.block, e.kind, universe[e.member])
            for e in churn)
        return cls(universe=universe, initial=receivers, blocks=blocks,
                   events=events, spec=spec)


def storm_channel_factory(base_factory: Callable,
                          plan: MembershipPlan, seed: int,
                          burst: Optional[Callable[[], AttackPlan]] = None
                          ) -> Callable:
    """Race every join against forged packets at its bootstrap window.

    Wraps a ``(receiver_index, block_id, loss_rate) -> Channel``
    factory so the cell at (joiner's universe index, join block) gets
    an extra :class:`~repro.faults.BootstrapBurstForgery` plan —
    composed *after* the base mix's faults so the base per-cell
    streams are untouched — reseeded from the cell's loss seed plus
    :data:`_BOOTSTRAP_OFFSET`.  All other cells pass through
    unchanged, so a plan with no joins leaves the session
    byte-identical.
    """
    from repro.serve.sender import (_ATTACK_OFFSET, _LOSS_STRIDE_BLOCK,
                                    _LOSS_STRIDE_RECEIVER)

    join_cells = {(plan.index_of(rid), block)
                  for rid, block in plan.join_blocks.items()}
    if burst is None:
        burst = lambda: AttackPlan((  # noqa: E731
            BootstrapBurstForgery(burst_rate=0.6, window=8, collide=True),))

    def build(receiver_index: int, block_id: int, loss_rate: float):
        channel = base_factory(receiver_index, block_id, loss_rate)
        if (receiver_index, block_id) not in join_cells:
            return channel
        burst_plan = burst()
        cell_seed = (seed + _LOSS_STRIDE_RECEIVER * (receiver_index + 1)
                     + _LOSS_STRIDE_BLOCK * (block_id + 1))
        burst_plan.reseed(cell_seed + _ATTACK_OFFSET + _BOOTSTRAP_OFFSET)
        if isinstance(channel, AdversarialChannel):
            # Recompose rather than mutate: the base plan's members
            # keep their already-reseeded streams, the burst appends.
            combined = AttackPlan(tuple(channel.plan.faults)
                                  + burst_plan.faults)
            return AdversarialChannel(channel.channel, combined)
        return AdversarialChannel(channel, burst_plan)

    return build
