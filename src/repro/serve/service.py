"""Session orchestration: sender, pool, controller, one barrier loop.

:func:`run_live_session` wires the serve components together and runs
a complete adaptive session to completion:

1. packetize block ``b`` with the controller's *current* scheme and
   stream it to every receiver through per-(receiver, block) seeded
   channels;
2. barrier on :meth:`~repro.serve.receiver.ReceiverPool.wait_block` —
   every receiver has closed the block and reported its losses;
3. feed the reports to the :class:`~repro.serve.adaptive.\
AdaptiveController`, which may re-select the scheme parameters the
   *next* block is built with.

The barrier is what makes the whole thing deterministic on the local
transport: queues are drained before the next block is enqueued, so
backpressure drops depend only on the config, and the controller sees
the same report sequence every run.

The function is synchronous (it owns ``asyncio.run``) and returns a
:class:`SessionResult`: the sealed :class:`~repro.obs.RunManifest`
(with the adaptation trace in its parameters), per-phase merged
:class:`~repro.simulation.stats.SimulationStats`, and the canonical
per-receiver transcripts the determinism regression compares.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.conformance import attack_mix
from repro.crypto.batch import BatchVerifier
from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import SimulationError
from repro.faults import KNOWN_ATTACK_MIXES
from repro.network.clock import Clock, MonotonicClock, VirtualClock
from repro.obs import RunManifest, get_registry
from repro.obs.health import HealthMonitor
from repro.obs.lifecycle import LifecycleTracer, use_lifecycle
from repro.obs.timeseries import CONTROLLER_ROW, HEALTH_ROW, TimeseriesSampler
from repro.design.service import DesignService
from repro.serve.adaptive import (
    CONTROLLER_FAMILIES,
    AdaptationEvent,
    AdaptiveController,
    SubtreeAdaptiveController,
)
from repro.serve.membership import (
    MembershipPlan,
    parse_churn_spec,
    storm_channel_factory,
)
from repro.serve.receiver import LossReport, ReceiverPool
from repro.serve.sender import SenderService, default_channel_factory
from repro.serve.transport import LocalTransport, Transport, UdpTransport
from repro.simulation.sender import make_payloads
from repro.simulation.stats import SimulationStats
from repro.topology import (
    make_topology,
    redundant_trees,
    topology_channel_factory,
)

__all__ = ["ServeConfig", "SessionResult", "run_live_session"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a live session, and nothing else.

    ``loss_schedule`` is a sorted tuple of ``(first_block, loss_rate)``
    steps; the rate in force for block ``b`` is the last step with
    ``first_block <= b``.  A ramp like ``((0, 0.05), (20, 0.3))``
    drives the adaptation staircase the acceptance test asserts on.

    ``topology`` switches the session from independent per-receiver
    channels to correlated link loss over a distribution tree (spec
    grammar: ``star`` | ``spine:<groups>`` | ``dualspine:<groups>``);
    ``trees`` streams every packet down that many redundant
    (edge-disjoint-biased) trees with receiver-side deduplication, and
    ``subtree_adaptive`` replaces the pool-wide controller with one
    controller per subtree.

    ``churn`` makes membership dynamic (spec grammar: ``storm[:J,L,C]``
    | ``flood:BLOCK`` | ``flap:COUNT``): a seeded
    :class:`~repro.serve.membership.MembershipPlan` admits late
    joiners, drains graceful leavers and kills crash victims
    mid-session.  Churn requires per-block signing — joins and leaves
    apply at block boundaries, which must coincide with flush
    boundaries for the barrier bookkeeping to stay exact.
    """

    receivers: int = 8
    blocks: int = 20
    block_size: int = 12
    payload_size: int = 32
    loss_schedule: Tuple[Tuple[int, float], ...] = ((0, 0.05),)
    attack: Optional[str] = None
    q_min_target: float = 0.75
    seed: int = 7
    t_transmit: float = 0.001
    queue_size: int = 256
    transport: str = "local"
    adaptive: bool = True
    timeout_s: Optional[float] = None
    batch_size: int = 1
    flush_deadline: Optional[float] = None
    topology: Optional[str] = None
    trees: int = 1
    subtree_adaptive: bool = False
    churn: Optional[str] = None
    design_table: Optional[str] = None
    scheme_family: str = "emss"

    def __post_init__(self) -> None:
        if self.receivers < 1:
            raise SimulationError("need at least one receiver")
        if self.blocks < 1:
            raise SimulationError("need at least one block")
        if self.batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.trees < 1:
            raise SimulationError(
                f"trees must be >= 1, got {self.trees}")
        if self.trees > 1 and self.topology is None:
            raise SimulationError(
                "redundant trees need a topology (--topology)")
        if self.subtree_adaptive:
            if self.topology is None:
                raise SimulationError(
                    "subtree adaptation needs a topology (--topology)")
            if not self.adaptive:
                raise SimulationError(
                    "subtree adaptation contradicts --no-adaptive")
            if self.batch_size != 1:
                raise SimulationError(
                    "subtree adaptation requires per-block signing "
                    "(batch_size == 1)")
        if self.flush_deadline is not None and self.flush_deadline <= 0:
            raise SimulationError(
                f"flush_deadline must be > 0, got {self.flush_deadline}")
        if self.churn is not None:
            parse_churn_spec(self.churn)  # fail on bad specs eagerly
            if self.batch_size != 1:
                raise SimulationError(
                    "churn requires per-block signing (batch_size == 1); "
                    "membership changes apply at block boundaries")
        if self.transport not in ("local", "udp"):
            raise SimulationError(
                f"unknown transport {self.transport!r} (local|udp)")
        if self.scheme_family not in CONTROLLER_FAMILIES:
            raise SimulationError(
                f"unknown scheme family {self.scheme_family!r} "
                f"({'|'.join(CONTROLLER_FAMILIES)})")
        if self.attack is not None and self.attack not in KNOWN_ATTACK_MIXES:
            raise SimulationError(
                f"unknown attack mix {self.attack!r}; "
                f"known: {', '.join(sorted(KNOWN_ATTACK_MIXES))}")
        if not self.loss_schedule or self.loss_schedule[0][0] != 0:
            raise SimulationError("loss_schedule must start at block 0")
        blocks_in_schedule = [step[0] for step in self.loss_schedule]
        if blocks_in_schedule != sorted(set(blocks_in_schedule)):
            raise SimulationError(
                "loss_schedule blocks must be strictly increasing")
        for _, rate in self.loss_schedule:
            if not 0.0 <= rate < 1.0:
                raise SimulationError(
                    f"loss rates must be in [0, 1), got {rate}")

    def loss_for_block(self, block_id: int) -> float:
        """Scheduled channel loss rate in force for ``block_id``."""
        rate = self.loss_schedule[0][1]
        for first_block, step_rate in self.loss_schedule:
            if block_id >= first_block:
                rate = step_rate
        return rate

    def receiver_ids(self) -> List[str]:
        """Canonical receiver identities, sorted."""
        return [f"r{index:02d}" for index in range(self.receivers)]

    def to_parameters(self) -> Dict[str, object]:
        """Manifest-ready parameter record."""
        return {
            "receivers": self.receivers,
            "blocks": self.blocks,
            "block_size": self.block_size,
            "payload_size": self.payload_size,
            "loss_schedule": [list(step) for step in self.loss_schedule],
            "attack": self.attack,
            "q_min_target": self.q_min_target,
            "t_transmit": self.t_transmit,
            "queue_size": self.queue_size,
            "transport": self.transport,
            "adaptive": self.adaptive,
            "batch_size": self.batch_size,
            "flush_deadline": self.flush_deadline,
            "topology": self.topology,
            "trees": self.trees,
            "subtree_adaptive": self.subtree_adaptive,
            "churn": self.churn,
            "design_table": self.design_table,
            "scheme_family": self.scheme_family,
        }


@dataclass
class SessionResult:
    """A finished session, ready for assertions and reporting."""

    manifest: RunManifest
    stats: Dict[str, SimulationStats] = field(default_factory=dict)
    transcripts: Dict[str, bytes] = field(default_factory=dict)
    events: List[AdaptationEvent] = field(default_factory=list)
    reports: Dict[str, List[LossReport]] = field(default_factory=dict)
    queue_drops: Dict[str, int] = field(default_factory=dict)
    forged_accepted: int = 0
    delivered: int = 0
    duplicates_suppressed: int = 0

    @property
    def schemes_used(self) -> List[str]:
        """Distinct scheme specs in block order (first use)."""
        seen: List[str] = []
        for event in self.events:
            spec = f"{event.scheme}({event.parameters[0]},{event.parameters[1]})"
            if spec not in seen:
                seen.append(spec)
        return seen


def _build_transport(config: ServeConfig, clock: Clock) -> Transport:
    if config.transport == "local":
        return LocalTransport(queue_size=config.queue_size)
    return UdpTransport(clock, queue_size=config.queue_size)


def default_serve_signer(seed: int) -> Signer:
    """The session's default signer: fast, deterministic, seed-keyed."""
    return HmacStubSigner(key=b"repro-serve-%016d" % seed)


def _gauge_rows(pool: ReceiverPool, controller,
                health: Optional[HealthMonitor] = None
                ) -> List[Dict[str, object]]:
    """One timeseries row per *active* receiver plus the control rows.

    Iterating the active set (not ``pool.sessions``, which keeps every
    member that ever ran) is what stops retired and crashed receivers
    from emitting gauge rows after their departure block.
    """
    rows: List[Dict[str, object]] = []
    for receiver_id in pool.active_ids:
        session = pool.sessions[receiver_id]
        verifier = session.stream.verifier
        rows.append({
            "r": receiver_id,
            "buffered": verifier.buffered_count,
            "pending": session.stream.pending,
            "delivered": len(session.stream.delivered),
            "window_rate": session.estimator.window_rate,
            "ewma_rate": session.estimator.ewma_rate,
            "forged_rejected": verifier.forged_rejected,
            "undecodable": verifier.undecodable,
            "replays_dropped": verifier.replays_dropped,
        })
    row: Dict[str, object] = {"r": CONTROLLER_ROW}
    row.update(controller.gauges())
    rows.append(row)
    if health is not None:
        health_row: Dict[str, object] = {"r": HEALTH_ROW}
        health_row.update(health.gauges())
        rows.append(health_row)
    return rows


def _observe_health(health: HealthMonitor, block_id: int,
                    reports: List[LossReport], pool: ReceiverPool,
                    sender: SenderService, batch_verifier: BatchVerifier,
                    controller, now: float) -> None:
    """Feed one settled block to every health detector, deterministically.

    Everything handed over is an exact integer (report slot counts,
    estimator window counts, cumulative verifier/sender counters), and
    iteration is in sorted order throughout — the alert stream must be
    a pure function of the config, like every other serve artifact.
    """
    for report in sorted(reports, key=lambda r: r.receiver_id):
        health.observe_slo(block_id, f"r:{report.receiver_id}",
                           report.expected, report.verified, t=now)
    by_subtree: Dict[str, List[int]] = {}
    for report in reports:
        if report.subtree and report.subtree != report.receiver_id:
            totals = by_subtree.setdefault(report.subtree, [0, 0])
            totals[0] += report.expected
            totals[1] += report.verified
    for label in sorted(by_subtree):
        expected, verified = by_subtree[label]
        health.observe_slo(block_id, f"st:{label}", expected, verified,
                           t=now)
    if controller is not None:
        lost, fill = controller.envelope_counts()
        if health.envelope_top is not None:
            drifted = health.observe_envelope(block_id, lost, fill, t=now)
            if drifted is not None:
                controller.request_refresh()
    undecodable = 0
    cap_evictions = 0
    for receiver_id in sorted(pool.sessions):
        verifier = pool.sessions[receiver_id].stream.verifier
        undecodable += verifier.undecodable
        cap_evictions += verifier.cap_evictions
    health.observe_sentinels(
        block_id,
        forged=pool.forged_accepted,
        undecodable=undecodable,
        cap_evictions=cap_evictions,
        root_verifies=batch_verifier.root_verifies,
        batch_signs=sender.batch_signs,
        expected_delta=sum(report.expected for report in reports),
        t=now)


async def _drive_session(config: ServeConfig, transport: Transport,
                         sender: SenderService, pool: ReceiverPool,
                         controller, clock: Clock,
                         timeseries: Optional[TimeseriesSampler] = None,
                         plan: Optional[MembershipPlan] = None,
                         health: Optional[HealthMonitor] = None,
                         batch_verifier: Optional[BatchVerifier] = None
                         ) -> None:
    registry = get_registry()
    grouped = isinstance(controller, SubtreeAdaptiveController)
    initial_ids = (plan.initial_ids if plan is not None
                   else config.receiver_ids())
    await transport.start(initial_ids)
    pool.start(transport)

    async def settle(flushed_block_id: int) -> None:
        reports = await pool.wait_block(flushed_block_id)
        if config.adaptive:
            controller.observe(flushed_block_id, reports)
        if health is not None:
            _observe_health(health, flushed_block_id, reports, pool,
                            sender, batch_verifier,
                            controller if config.adaptive else None,
                            clock.now())
        if timeseries is not None and timeseries.due(clock.now()):
            timeseries.record(clock.now(),
                              _gauge_rows(pool, controller, health))
        if registry.enabled:
            registry.count("serve.block.runs", 1)

    async def apply_boundary(block_id: int) -> None:
        # Leaves drain before joins admit (the plan sorts them so);
        # both complete before the block streams, which is what makes
        # a block boundary the universal bootstrap point.
        for event in plan.boundary_events(block_id):
            if event.kind == "leave":
                sender.remove_receiver(event.receiver_id)
                await transport.close_endpoint(event.receiver_id)
                await pool.retire(event.receiver_id)
                if config.adaptive:
                    controller.retire_receiver(event.receiver_id)
            else:
                await transport.open_endpoint(event.receiver_id)
                sender.add_receiver(event.receiver_id)
                pool.admit(event.receiver_id)
            if registry.enabled:
                registry.count(f"serve.membership.{event.kind}", 1)

    async def strike_crashes(block_id: int) -> List[str]:
        # The victim's task dies before it can read the block; the
        # sender, not yet aware, still streams to the dead endpoint.
        victims = [e.receiver_id for e in plan.crash_events(block_id)]
        for receiver_id in victims:
            await pool.crash(receiver_id)
            if config.adaptive:
                controller.retire_receiver(receiver_id)
            if registry.enabled:
                registry.count("serve.membership.crash", 1)
        return victims

    async def detach_crashed(victims: List[str]) -> None:
        # The boundary after the block is when the sender notices the
        # death: unsubscribe and reclaim the endpoint.
        for receiver_id in victims:
            sender.remove_receiver(receiver_id)
            await transport.close_endpoint(receiver_id)

    try:
        for block_id in range(config.blocks):
            victims: List[str] = []
            if plan is not None:
                await apply_boundary(block_id)
                victims = await strike_crashes(block_id)
            loss_rate = config.loss_for_block(block_id)
            payloads = make_payloads(config.block_size, config.payload_size,
                                     tag=b"blk%04d" % block_id)
            if grouped:
                schemes = controller.schemes_by_group()
                phases = {
                    group: f"{scheme.name}@{group}@p={loss_rate:g}"
                    for group, scheme in schemes.items()
                }
                await sender.send_block_grouped(
                    schemes, controller.group_of, payloads, loss_rate,
                    phases)
                await detach_crashed(victims)
                await settle(block_id)
                continue
            scheme = controller.scheme
            phase = f"{scheme.name}@p={loss_rate:g}"
            flushed = await sender.submit_block(scheme, payloads, loss_rate,
                                                phase)
            await detach_crashed(victims)
            for flushed_id in sorted(flushed):
                await settle(flushed_id)
        for flushed_id in sorted(await sender.flush_pending()):
            await settle(flushed_id)
        await sender.send_final()
        await pool.join()
    finally:
        await transport.close()


def run_live_session(config: ServeConfig,
                     signer: Optional[Signer] = None,
                     lifecycle: Optional[LifecycleTracer] = None,
                     timeseries: Optional[TimeseriesSampler] = None,
                     health: Optional[HealthMonitor] = None
                     ) -> SessionResult:
    """Run one complete live session and return its results.

    With the default local transport and any fixed config this is a
    pure function of ``config`` — including every transcript byte, and
    (when a ``lifecycle`` tracer, ``timeseries`` sampler or ``health``
    monitor is passed) every observability byte too.  The tracer is
    installed process-wide for the session's duration; on an exception
    all collectors are flushed to their sinks before re-raising, so a
    crashed run still leaves parseable artifacts.  Closing the sinks
    stays with the caller (they may want to export the buffered events
    first).

    A ``health`` monitor is evaluated at every block boundary (SLO
    CUSUMs per receiver and subtree, envelope drift against the design
    lattice, soundness sentinels); its drift detector is wired to the
    controller's lattice automatically and its alerts fold into the
    manifest under ``parameters["health"]``.
    """
    registry = get_registry()
    signer = signer if signer is not None else default_serve_signer(config.seed)
    clock: Clock
    if config.transport == "local":
        clock = VirtualClock()
    else:
        clock = MonotonicClock()
    transport = _build_transport(config, clock)
    attack_plan_factory = None
    if config.attack is not None:
        attack_name = config.attack
        attack_plan_factory = lambda: attack_mix(attack_name)  # noqa: E731
    plan = None
    if config.churn is not None:
        plan = MembershipPlan.from_spec(config.churn, config.receivers,
                                        config.blocks, config.seed)
    # With churn, topology, channel seeding and subtree labels span the
    # whole membership universe — a joiner's channel draws key on its
    # stable universe index, never on who happens to be active.
    member_ids = (list(plan.universe) if plan is not None
                  else config.receiver_ids())
    initial_ids = (plan.initial_ids if plan is not None
                   else config.receiver_ids())
    topology = None
    subtree_of = None
    if config.topology is not None:
        topology = make_topology(config.topology, member_ids)
        trees = redundant_trees(topology, config.trees)
        channel_factory = topology_channel_factory(
            config.seed, topology, trees, attack_plan_factory)
        subtree_of = {leaf: topology.subtree_of(leaf)
                      for leaf in topology.leaves}
    else:
        channel_factory = default_channel_factory(config.seed,
                                                  attack_plan_factory)
    if plan is not None and attack_plan_factory is not None:
        # Adversarial churn: forged bursts timed at every join's
        # bootstrap window, on top of whatever mix is configured.
        channel_factory = storm_channel_factory(channel_factory, plan,
                                                config.seed)
    design_service = (DesignService.load(config.design_table)
                      if config.design_table is not None else None)
    if config.subtree_adaptive:
        controller = SubtreeAdaptiveController(
            topology.subtree_groups(), block_size=config.block_size,
            q_min_target=config.q_min_target,
            initial_p=config.loss_for_block(0),
            family=config.scheme_family,
            design_service=design_service,
            membership_aware=plan is not None)
    else:
        controller = AdaptiveController(
            block_size=config.block_size, q_min_target=config.q_min_target,
            initial_p=config.loss_for_block(0),
            family=config.scheme_family,
            design_service=design_service,
            membership_aware=plan is not None)
    if health is not None and config.adaptive and health.envelope_top is None:
        # The drift detector's envelope is whatever lattice the active
        # controller can actually serve from.
        health.configure_envelope(controller.lattice_top())
    # Receivers always verify through a BatchVerifier: plain signatures
    # pass straight through to the inner signer, batch attachments get
    # the proof walk plus one cached root verification per batch.  The
    # pool shares one session signer, so the root cache is shared too.
    batch_verifier = BatchVerifier(signer)
    pool = ReceiverPool(initial_ids, batch_verifier,
                        subtree_of=subtree_of)
    sender = SenderService(transport, initial_ids, signer,
                           channel_factory, clock,
                           t_transmit=config.t_transmit,
                           batch_size=config.batch_size,
                           flush_deadline=config.flush_deadline,
                           receiver_indices={
                               receiver_id: index
                               for index, receiver_id
                               in enumerate(member_ids)})
    parameters = config.to_parameters()
    if topology is not None:
        parameters["topology_detail"] = topology.describe()
    if plan is not None:
        parameters["membership"] = plan.describe()
    manifest_clock = RunManifest.start(
        "serve", f"live-{config.transport}",
        parameters=parameters, seed_root=config.seed, workers=1)
    if registry.enabled:
        registry.count("serve.receiver.sessions", config.receivers)
        # Zero-initialise the batch/design series so a plain serve
        # still *exposes* them: a Prometheus scrape must distinguish
        # "zero signs" from "series missing" (the export-gap fix).
        registry.count("serve.batch.signs", 0)
        registry.count("serve.batch.flushes", 0)
        if design_service is not None:
            for name in ("design.service.lookups", "design.service.hits",
                         "design.service.misses", "design.service.fallbacks",
                         "design.inline.calls", "design.refresh.requests"):
                registry.count(name, 0)

    session = _drive_session(config, transport, sender, pool, controller,
                             clock, timeseries, plan=plan, health=health,
                             batch_verifier=batch_verifier)
    try:
        with use_lifecycle(lifecycle):
            if config.timeout_s is not None:
                async def _bounded() -> None:
                    await asyncio.wait_for(session, timeout=config.timeout_s)
                asyncio.run(_bounded())
            else:
                asyncio.run(session)
    except BaseException:
        # Crash-safety: persist whatever the collectors buffered so a
        # failed run still tells its story, then let the error travel.
        if lifecycle is not None:
            lifecycle.flush()
        if timeseries is not None:
            timeseries.flush()
        if health is not None:
            health.flush()
        raise

    if registry.enabled:
        # The receiver-side batch verifier's counters never crossed the
        # registry before (they lived on the shared instance only);
        # fold them in post-session so ``--prom-out`` exposes the full
        # ``serve.batch.*`` family.
        registry.count("serve.batch.root_verifies",
                       batch_verifier.root_verifies)
        registry.count("serve.batch.root_cache_hits",
                       batch_verifier.cache_hits)
        registry.count("serve.batch.decode_failures",
                       batch_verifier.decode_failures)
        registry.count("serve.batch.proof_failures",
                       batch_verifier.proof_failures)
        registry.count("serve.batch.passthrough_verifies",
                       batch_verifier.passthrough_verifies)
    manifest = manifest_clock.finish(registry if registry.enabled else None)
    manifest.parameters["adaptation"] = [
        event.to_dict() for event in controller.events]
    if design_service is not None:
        # Recorded post-session so the lookup traffic is the session's.
        manifest.parameters["design_table_detail"] = design_service.describe()
    observability: Dict[str, object] = {}
    if lifecycle is not None:
        observability["lifecycle"] = {
            "events": lifecycle.events_recorded,
            "sampled_out": lifecycle.events_dropped,
            "sample": lifecycle.sample,
        }
    if timeseries is not None:
        observability["timeseries"] = {
            "rows": len(timeseries.samples),
            "interval_s": timeseries.interval_s,
        }
    if health is not None:
        observability["health"] = {
            "alerts": len(health.alerts),
            "worst_severity": health.worst_severity(),
        }
        manifest.parameters["health"] = health.describe()
    if observability:
        manifest.parameters["observability"] = observability
    result = SessionResult(manifest=manifest)
    result.stats = pool.merged_stats()
    result.events = list(controller.events)
    result.forged_accepted = pool.forged_accepted
    result.duplicates_suppressed = sender.duplicates_suppressed
    for receiver_id in sorted(pool.sessions):
        session_obj = pool.sessions[receiver_id]
        result.transcripts[receiver_id] = session_obj.transcript_bytes()
        result.reports[receiver_id] = list(session_obj.reports)
        result.queue_drops[receiver_id] = transport.queue_drops(receiver_id)
        result.delivered += len(session_obj.stream.delivered)
    return result
