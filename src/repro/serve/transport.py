"""Pluggable transports for the live serving layer.

A transport moves :class:`~repro.faults.WireDelivery` buffers from the
sender to per-receiver subscriptions.  Two frame kinds share the wire:

* **data frames** — packet bytes exactly as
  :meth:`repro.packets.Packet.to_wire` produced (or as the adversary
  mangled them);
* **control frames** — JSON block metadata prefixed with
  :data:`CONTROL_PREFIX`.  A wire packet's header starts with its
  ``seq`` as a big-endian ``u32`` and ``seq >= 1`` is enforced by the
  strict decoder, so a prefix of four zero bytes can *never* decode as
  a packet — control frames are unambiguous without any out-of-band
  channel, and a truncation or bit-flip fault that mangles one simply
  yields an undecodable buffer downstream.

:class:`LocalTransport` is the deterministic in-process fabric: one
bounded :class:`asyncio.Queue` per receiver, drop-newest backpressure
for data frames (counted per receiver), lossless blocking delivery
for control frames (block boundaries must arrive or the session
stalls).  Because the sender enqueues a whole block without yielding
to the event loop, the drop pattern is a pure function of queue depth
— bit-for-bit reproducible.

:class:`UdpTransport` binds one datagram endpoint per receiver on the
loopback interface and stamps arrivals from an injectable
:class:`~repro.network.clock.Clock`; ground-truth ``kind`` tags do not
survive a real network, so receiver-side deliveries carry
``kind="unknown"`` and the soundness audit relies on control-frame
digests instead.
"""

from __future__ import annotations

import asyncio
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.faults import WireDelivery
from repro.network.clock import Clock
from repro.obs import get_registry
from repro.obs.lifecycle import NOISE_SEQ, get_lifecycle

__all__ = [
    "CONTROL_PREFIX",
    "ControlFrame",
    "encode_control",
    "decode_control",
    "Transport",
    "LocalTransport",
    "UdpTransport",
]

#: Four zero bytes = a wire header whose ``seq`` is 0, which the strict
#: packet decoder rejects unconditionally — followed by a magic tag so
#: random garbage starting with zeros is not mistaken for control.
CONTROL_PREFIX = b"\x00\x00\x00\x00RSRV"

#: Queue-depth histogram buckets (shared so shard merges never see
#: mismatched bounds).
QUEUE_DEPTH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                     256.0, 512.0, 1024.0)


@dataclass(frozen=True)
class ControlFrame:
    """Block-boundary metadata the sender publishes to each receiver.

    ``intact`` and ``digests`` are the *trusted side channel* of the
    simulation harness: which of this receiver's deliveries left the
    adversary untampered, and the authentic digest of every packet the
    sender emitted.  Receivers use them only for ground-truth
    accounting (loss tallies, the ``forged_accepted`` audit) — never
    for verification, which runs purely on the wire bytes.

    A frame with ``final=True`` ends the subscription; its other
    fields are ignored.
    """

    block_id: int
    base_seq: int
    last_seq: int
    scheme: str
    phase: str
    final: bool = False
    intact: Tuple[int, ...] = ()
    digests: Tuple[Tuple[int, str], ...] = ()


def encode_control(frame: ControlFrame) -> bytes:
    """Canonical byte encoding (sorted keys, no whitespace)."""
    payload = {
        "block_id": frame.block_id,
        "base_seq": frame.base_seq,
        "last_seq": frame.last_seq,
        "scheme": frame.scheme,
        "phase": frame.phase,
        "final": frame.final,
        "intact": list(frame.intact),
        "digests": [list(item) for item in frame.digests],
    }
    return CONTROL_PREFIX + json.dumps(
        payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_control(data: bytes) -> Optional[ControlFrame]:
    """Decode a control frame; ``None`` for anything else (data frames)."""
    if not data.startswith(CONTROL_PREFIX):
        return None
    try:
        payload = json.loads(data[len(CONTROL_PREFIX):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None  # mangled control frame: treated as wire garbage
    try:
        return ControlFrame(
            block_id=int(payload["block_id"]),
            base_seq=int(payload["base_seq"]),
            last_seq=int(payload["last_seq"]),
            scheme=str(payload["scheme"]),
            phase=str(payload["phase"]),
            final=bool(payload["final"]),
            intact=tuple(int(s) for s in payload["intact"]),
            digests=tuple((int(s), str(d)) for s, d in payload["digests"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


class Transport(ABC):
    """Sender-to-receivers delivery fabric."""

    @abstractmethod
    async def start(self, receiver_ids: Sequence[str]) -> None:
        """Provision per-receiver endpoints before any send."""

    @abstractmethod
    async def open_endpoint(self, receiver_id: str) -> None:
        """Provision one endpoint mid-session (a late joiner)."""

    @abstractmethod
    async def close_endpoint(self, receiver_id: str) -> None:
        """End one subscription gracefully (a leaver).

        The subscriber's iterator terminates after draining whatever
        was already queued; subsequent :meth:`send` calls to the id
        are the caller's bug to avoid (the sender drops a leaver from
        its active list at the same boundary).
        """

    @abstractmethod
    async def send(self, receiver_id: str,
                   deliveries: Sequence[WireDelivery]) -> List[WireDelivery]:
        """Push ``deliveries`` toward one receiver, in order.

        Returns the deliveries the *transport itself* dropped (queue
        backpressure); an empty list means everything was accepted for
        delivery.  Network loss downstream of a real transport is not
        reported here — that is what loss reports measure.
        """

    @abstractmethod
    def subscribe(self, receiver_id: str) -> AsyncIterator[WireDelivery]:
        """Async iteration over one receiver's arriving deliveries."""

    @abstractmethod
    async def close(self) -> None:
        """Tear down endpoints and wake any blocked subscriber."""

    @abstractmethod
    def queue_drops(self, receiver_id: str) -> int:
        """Deliveries dropped by backpressure for ``receiver_id`` so far."""


_CLOSE = object()  # subscription sentinel


class LocalTransport(Transport):
    """Deterministic in-process transport over bounded asyncio queues.

    Parameters
    ----------
    queue_size:
        Per-receiver queue capacity in frames.  Data frames beyond
        capacity are dropped (newest-dropped policy) and counted;
        control frames block the sender instead — explicit
        backpressure, because a lost block boundary would wedge the
        session's barrier.
    """

    def __init__(self, queue_size: int = 256) -> None:
        if queue_size < 1:
            raise SimulationError(
                f"queue size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self._queues: Dict[str, asyncio.Queue] = {}
        self._drops: Dict[str, int] = {}
        self._closed = False

    async def start(self, receiver_ids: Sequence[str]) -> None:
        for receiver_id in receiver_ids:
            await self.open_endpoint(receiver_id)

    async def open_endpoint(self, receiver_id: str) -> None:
        if receiver_id in self._queues:
            raise SimulationError(
                f"duplicate receiver id {receiver_id!r}")
        self._queues[receiver_id] = asyncio.Queue(maxsize=self.queue_size)
        self._drops[receiver_id] = 0

    async def close_endpoint(self, receiver_id: str) -> None:
        queue = self._queue(receiver_id)
        # Same bypass as close(): the sentinel must land even if the
        # queue is full, or the leaver's task never drains.
        queue._queue.append(_CLOSE)  # noqa: SLF001 (stdlib deque)
        queue._wakeup_next(queue._getters)  # noqa: SLF001

    def _queue(self, receiver_id: str) -> asyncio.Queue:
        queue = self._queues.get(receiver_id)
        if queue is None:
            raise SimulationError(f"unknown receiver {receiver_id!r}")
        return queue

    async def send(self, receiver_id: str,
                   deliveries: Sequence[WireDelivery]) -> List[WireDelivery]:
        queue = self._queue(receiver_id)
        registry = get_registry()
        tracer = get_lifecycle()
        dropped: List[WireDelivery] = []
        for delivery in deliveries:
            if delivery.data.startswith(CONTROL_PREFIX):
                await queue.put(delivery)  # backpressure, never dropped
                continue
            try:
                queue.put_nowait(delivery)
                status = "queued"
            except asyncio.QueueFull:
                dropped.append(delivery)
                status = "queue-drop"
            if tracer.enabled and delivery.block_hint is not None:
                seq = (delivery.seq_hint if delivery.seq_hint is not None
                       else NOISE_SEQ)
                tracer.record(receiver_id, delivery.block_hint, seq,
                              "enqueue", status, delivery.arrival_time)
        if dropped:
            self._drops[receiver_id] += len(dropped)
        if registry.enabled:
            registry.count("serve.transport.frames",
                           len(deliveries) - len(dropped))
            if dropped:
                registry.count("serve.transport.queue_drops", len(dropped))
            registry.observe("serve.queue_depth", queue.qsize(),
                             QUEUE_DEPTH_BOUNDS)
        return dropped

    async def subscribe(self, receiver_id: str
                        ) -> AsyncIterator[WireDelivery]:
        queue = self._queue(receiver_id)
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            yield item

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for queue in self._queues.values():
            # Bypass maxsize so close always lands even on full queues.
            queue._queue.append(_CLOSE)  # noqa: SLF001 (stdlib deque)
            queue._wakeup_next(queue._getters)  # noqa: SLF001

    def queue_drops(self, receiver_id: str) -> int:
        return self._drops.get(receiver_id, 0)


class _ReceiverProtocol(asyncio.DatagramProtocol):
    """Datagram endpoint feeding one receiver's bounded queue."""

    def __init__(self, transport_owner: "UdpTransport",
                 receiver_id: str) -> None:
        self._owner = transport_owner
        self._receiver_id = receiver_id

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._deliver(self._receiver_id, data)


class UdpTransport(Transport):
    """Real datagram transport over loopback asyncio endpoints.

    One receiving socket per receiver; arrival times are stamped from
    the injected clock the moment the datagram surfaces.  UDP gives no
    backpressure signal, so the bounded ingress queue applies the same
    drop-newest policy as :class:`LocalTransport` — drops show up in
    :meth:`queue_drops`, not in :meth:`send`'s return value (the
    sender cannot see them, exactly like real packet loss).

    Parameters
    ----------
    clock:
        Arrival-time source (a wall clock for real use; tests may
        inject anything).
    host:
        Interface to bind; loopback by default.
    queue_size:
        Ingress queue capacity per receiver.
    """

    def __init__(self, clock: Clock, host: str = "127.0.0.1",
                 queue_size: int = 1024) -> None:
        if queue_size < 1:
            raise SimulationError(
                f"queue size must be >= 1, got {queue_size}")
        self.clock = clock
        self.host = host
        self.queue_size = queue_size
        self._queues: Dict[str, asyncio.Queue] = {}
        self._drops: Dict[str, int] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._endpoints: Dict[str, asyncio.DatagramTransport] = {}
        self._sender: Optional[asyncio.DatagramTransport] = None
        self._closed = False

    async def start(self, receiver_ids: Sequence[str]) -> None:
        loop = asyncio.get_running_loop()
        for receiver_id in receiver_ids:
            await self.open_endpoint(receiver_id)
        sender, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, local_addr=(self.host, 0))
        self._sender = sender

    async def open_endpoint(self, receiver_id: str) -> None:
        loop = asyncio.get_running_loop()
        if receiver_id in self._queues:
            raise SimulationError(
                f"duplicate receiver id {receiver_id!r}")
        self._queues[receiver_id] = asyncio.Queue()
        self._drops[receiver_id] = 0
        transport, _ = await loop.create_datagram_endpoint(
            lambda rid=receiver_id: _ReceiverProtocol(self, rid),
            local_addr=(self.host, 0))
        self._endpoints[receiver_id] = transport
        sockname = transport.get_extra_info("sockname")
        self._addresses[receiver_id] = (sockname[0], sockname[1])

    async def close_endpoint(self, receiver_id: str) -> None:
        queue = self._queues.get(receiver_id)
        if queue is None:
            raise SimulationError(f"unknown receiver {receiver_id!r}")
        endpoint = self._endpoints.pop(receiver_id, None)
        if endpoint is not None:
            endpoint.close()
        self._addresses.pop(receiver_id, None)
        queue.put_nowait(_CLOSE)
        await asyncio.sleep(0)

    def _deliver(self, receiver_id: str, data: bytes) -> None:
        queue = self._queues[receiver_id]
        if queue.qsize() >= self.queue_size:
            self._drops[receiver_id] += 1
            registry = get_registry()
            if registry.enabled:
                registry.count("serve.transport.queue_drops", 1)
            return
        delivery = WireDelivery(arrival_time=self.clock.now(), data=data,
                                kind="unknown", seq_hint=None)
        queue.put_nowait(delivery)
        registry = get_registry()
        if registry.enabled:
            registry.count("serve.transport.frames", 1)
            registry.observe("serve.queue_depth", queue.qsize(),
                             QUEUE_DEPTH_BOUNDS)

    async def send(self, receiver_id: str,
                   deliveries: Sequence[WireDelivery]) -> List[WireDelivery]:
        if self._sender is None:
            raise SimulationError("transport not started")
        address = self._addresses.get(receiver_id)
        if address is None:
            raise SimulationError(f"unknown receiver {receiver_id!r}")
        for delivery in deliveries:
            self._sender.sendto(delivery.data, address)
        # Let the loop run the receiving protocols before piling on.
        await asyncio.sleep(0)
        return []

    async def subscribe(self, receiver_id: str
                        ) -> AsyncIterator[WireDelivery]:
        queue = self._queues.get(receiver_id)
        if queue is None:
            raise SimulationError(f"unknown receiver {receiver_id!r}")
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            yield item

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for endpoint in self._endpoints.values():
            endpoint.close()
        if self._sender is not None:
            self._sender.close()
        for queue in self._queues.values():
            queue.put_nowait(_CLOSE)
        await asyncio.sleep(0)

    def queue_drops(self, receiver_id: str) -> int:
        return self._drops.get(receiver_id, 0)
