"""Golden session recordings: one pinned trace per scheme.

A golden trace freezes two things at once: the **wire format** (every
byte the sender emits for a fixed payload set, signer key and channel
seed) and the **verification semantics** (which send positions a fresh
receiver verifies when the recorded deliveries are replayed).  The
regression suite (``tests/simulation/test_golden_traces.py``) checks
both: regenerating the session must reproduce the stored
:class:`~repro.simulation.trace.SessionTrace` byte-for-byte, and
replaying the *stored* trace into a fresh receiver must reproduce the
stored outcome.  An incompatible change to packet layout, hashing,
signing or receiver logic fails one of the two — loudly, with a diff
against a file in version control.

Everything here is deterministic by construction: fixed payloads
(:func:`~repro.simulation.sender.make_payloads`), an HMAC stub signer
with a fixed key, seeded channel loss, and explicit seeds for the two
schemes with internal randomness (the online chain's one-time key
pairs, TESLA's key chain).

Regenerate the files after an *intentional* format change with::

    PYTHONPATH=src python -m repro.simulation.golden tests/data/traces
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.conformance import DEFAULT_SPECS, default_scheme
from repro.crypto.hashing import sha256
from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay
from repro.network.loss import BernoulliLoss
from repro.packets import Packet
from repro.schemes.base import Scheme
from repro.schemes.rohatgi_online import (
    OnlineChainReceiver,
    OnlineRohatgiScheme,
)
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet
from repro.schemes.tesla import TeslaReceiver, TeslaScheme, TeslaSender
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.trace import SessionTrace

__all__ = [
    "GOLDEN_BLOCK",
    "GOLDEN_LOSS",
    "GOLDEN_CHANNEL_SEED",
    "GoldenCase",
    "golden_scheme",
    "record_golden",
    "replay_golden",
    "trace_path",
    "expected_path",
    "record_topology_session",
    "topology_session_path",
    "write_golden_files",
]

GOLDEN_BLOCK = 12
GOLDEN_LOSS = 0.25
GOLDEN_CHANNEL_SEED = 2003  # the paper's publication year
_SIGNER_KEY = b"golden-trace"
_ONLINE_OTS_SEED = b"golden-ots"
_TESLA_CHAIN_SEED = b"golden-tesla"


@dataclass(frozen=True)
class GoldenCase:
    """One scheme's recorded session and its expected replay outcome."""

    name: str
    trace: SessionTrace
    expected: Dict[str, object]


def _golden_signer() -> Signer:
    return HmacStubSigner(key=_SIGNER_KEY, signature_size=128)


def golden_scheme(name: str) -> Scheme:
    """The conformance default scheme, with internal randomness pinned."""
    if name == "rohatgi-online":
        return OnlineRohatgiScheme(seed=_ONLINE_OTS_SEED)
    return default_scheme(name)


def _golden_channel() -> Channel:
    return Channel(loss=BernoulliLoss(GOLDEN_LOSS, seed=GOLDEN_CHANNEL_SEED),
                   delay=ConstantDelay(0.0))


# ---------------------------------------------------------------------
# Session construction: sent packets + a replay verifier per family
# ---------------------------------------------------------------------

#: ``verify(trace) -> verified seqs`` given the regenerated sent packets.
_Verifier = Callable[[SessionTrace], Dict[int, bool]]


def _build_session(name: str) -> Tuple[List[Packet], _Verifier]:
    """Deterministically rebuild the sent packets and a trace verifier.

    The verifier consumes a :class:`SessionTrace` (recorded live or
    loaded from disk — the point of golden tests is that both behave
    identically) and returns ``{seq: verified}`` for delivered packets.
    """
    scheme = golden_scheme(name)
    signer = _golden_signer()
    payloads = make_payloads(GOLDEN_BLOCK)

    if isinstance(scheme, TeslaScheme):
        sender = TeslaSender(scheme.parameters, signer,
                             seed=_TESLA_CHAIN_SEED)
        bootstrap = sender.bootstrap_packet().with_send_time(
            scheme.parameters.t0)
        data_packets = [
            sender.send(payload, scheme.parameters.t0
                        + index * scheme.parameters.interval)
            for index, payload in enumerate(payloads)
        ]
        flush = sender.flush_keys(GOLDEN_BLOCK)
        packets = [bootstrap] + data_packets + flush

        def verify_tesla(trace: SessionTrace) -> Dict[int, bool]:
            records = list(trace)
            if not records or records[0].packet.seq != bootstrap.seq:
                raise SimulationError(
                    "golden TESLA trace must start with the bootstrap packet")
            receiver = TeslaReceiver(records[0].packet, signer)
            for record in records[1:]:
                receiver.receive(record.packet, record.arrival_time)
            return {
                seq: bool(verdict.status == "verified")
                for seq, verdict in receiver.verdicts.items()
            }

        return packets, verify_tesla

    if isinstance(scheme, OnlineRohatgiScheme):
        packets = scheme.make_block(payloads, signer)
        keypairs = scheme._last_keypairs

        def verify_online(trace: SessionTrace) -> Dict[int, bool]:
            receiver = OnlineChainReceiver(signer, keypairs)
            trace.replay(lambda packet, _time: receiver.receive(packet))
            return {record.packet.seq:
                    bool(receiver.verified.get(record.packet.seq))
                    for record in trace}

        return packets, verify_online

    sender = StreamSender(scheme, signer, GOLDEN_BLOCK)
    packets = sender.send_block(payloads)
    base_seq = packets[0].seq

    if isinstance(scheme, SaidaScheme):

        def verify_saida(trace: SessionTrace) -> Dict[int, bool]:
            receiver = SaidaReceiver(signer, sha256)
            trace.replay(receiver.receive)
            return {record.packet.seq:
                    bool(receiver.verified.get(record.packet.seq))
                    for record in trace}

        return packets, verify_saida

    if isinstance(scheme, (WongLamScheme, SignEachScheme)):

        def verify_individual(trace: SessionTrace) -> Dict[int, bool]:
            verified: Dict[int, bool] = {}
            for record in trace:
                packet = record.packet
                if isinstance(scheme, WongLamScheme):
                    ok = verify_wong_lam_packet(packet, signer, sha256,
                                                block_base_seq=base_seq)
                else:
                    ok = verify_sign_each_packet(packet, signer)
                verified[packet.seq] = ok
            return verified

        return packets, verify_individual

    def verify_chain(trace: SessionTrace) -> Dict[int, bool]:
        receiver = ChainReceiver(signer, sha256)
        trace.replay(receiver.receive)
        return {record.packet.seq:
                bool(receiver.outcomes.get(record.packet.seq)
                     and receiver.outcomes[record.packet.seq].verified)
                for record in trace}

    return packets, verify_chain


def _positions(packets: Sequence[Packet],
               seqs: Sequence[int]) -> List[int]:
    """Map sequence numbers to 1-based send positions."""
    order = {packet.seq: index + 1 for index, packet in enumerate(packets)}
    return sorted(order[seq] for seq in seqs if seq in order)


def replay_golden(name: str, trace: SessionTrace) -> Dict[str, object]:
    """Replay ``trace`` into a fresh receiver; return the outcome record.

    The receiver (and, where needed, key material) is rebuilt from the
    golden seeds, never from the trace itself — so a trace recorded by
    an older build is verified by *today's* code, which is exactly the
    compatibility the golden suite pins.
    """
    packets, verify = _build_session(name)
    verified = verify(trace)
    received = [record.packet.seq for record in trace]
    return {
        "scheme": golden_scheme(name).name,
        "block_size": GOLDEN_BLOCK,
        "loss_rate": GOLDEN_LOSS,
        "channel_seed": GOLDEN_CHANNEL_SEED,
        "packets_sent": len(packets),
        "deliveries": len(trace),
        "received_positions": _positions(packets, received),
        "verified_positions": _positions(
            packets, [seq for seq, ok in verified.items() if ok]),
    }


def record_golden(name: str) -> GoldenCase:
    """Run the deterministic golden session for ``name`` live."""
    packets, _ = _build_session(name)
    channel = _golden_channel()
    trace = SessionTrace()
    trace.record_all(channel.transmit(packets))
    return GoldenCase(name=name, trace=trace,
                      expected=replay_golden(name, trace))


# ---------------------------------------------------------------------
# Pinned topology session: serve-layer golden over correlated loss
# ---------------------------------------------------------------------

def record_topology_session() -> Dict[str, object]:
    """Run the pinned topology serve session and distill its identity.

    One fixed shared-spine session — subtree-adaptive controllers, the
    pollution adversary on every channel, a mid-stream loss ramp —
    reduced to a JSON record: per-receiver transcript SHA-256 digests
    plus the headline counters.  Every byte of the transcripts derives
    from seeds and virtual time, so the record regenerates exactly;
    any change to edge-seed derivation, tree construction, grouped
    packetization or receiver bookkeeping shows up as a digest diff
    against the versioned file.
    """
    # Imported lazily: the serve layer composes on top of simulation,
    # and this helper is the one place golden recording reaches up.
    from repro.serve.service import ServeConfig, run_live_session

    config = ServeConfig(
        receivers=6, blocks=10, block_size=12,
        loss_schedule=((0, 0.1), (5, 0.25)),
        attack="pollution", seed=GOLDEN_CHANNEL_SEED,
        topology="spine:2", trees=1, subtree_adaptive=True,
    )
    result = run_live_session(config)
    return {
        "config": config.to_parameters(),
        "seed": config.seed,
        "transcript_sha256": {
            receiver_id: sha256.digest(transcript).hex()
            for receiver_id, transcript in sorted(
                result.transcripts.items())
        },
        "delivered": result.delivered,
        "forged_accepted": result.forged_accepted,
        "duplicates_suppressed": result.duplicates_suppressed,
        "adaptation_events": [event.to_dict() for event in result.events],
        "subtrees": sorted({report.subtree
                            for reports in result.reports.values()
                            for report in reports}),
    }


def topology_session_path(directory: str) -> str:
    return os.path.join(directory, "topology-session.expected.json")


# ---------------------------------------------------------------------
# File layout + regeneration entry point
# ---------------------------------------------------------------------

def trace_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.trace.jsonl")


def expected_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"{name}.expected.json")


def write_golden_files(directory: str) -> List[str]:
    """(Re)generate every golden trace + expectation file; return paths."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for name in sorted(DEFAULT_SPECS):
        case = record_golden(name)
        path = trace_path(directory, name)
        case.trace.dump(path)
        written.append(path)
        path = expected_path(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(case.expected, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    path = topology_session_path(directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record_topology_session(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    written.append(path)
    return written


def main(argv: Sequence[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.simulation.golden <directory>",
              file=sys.stderr)
        return 2
    for path in write_golden_files(argv[0]):
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
