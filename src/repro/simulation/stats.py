"""Aggregation of simulation outcomes into the paper's metrics.

Empirical counterparts of the analytic quantities: per-position
authentication probability ``q_i`` (verified given received), its
minimum ``q_min``, verification delays and buffer peaks.  Positions
are per-block vertex indices (1-based send order within a block), so
results from many blocks and trials aggregate position-wise — exactly
how the paper's per-packet probabilities are indexed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import SimulationError

__all__ = ["PositionTally", "SimulationStats"]


@dataclass
class PositionTally:
    """Received/verified counts for one block position."""

    received: int = 0
    verified: int = 0

    @property
    def q(self) -> Optional[float]:
        """Empirical ``q_i``; ``None`` until the position was ever received."""
        if self.received == 0:
            return None
        return self.verified / self.received


@dataclass
class SimulationStats:
    """Accumulator across blocks and trials."""

    tallies: Dict[int, PositionTally] = field(default_factory=dict)
    delays: List[float] = field(default_factory=list)
    message_buffer_peak: int = 0
    hash_buffer_peak: int = 0
    sent: int = 0
    dropped: int = 0
    forged: int = 0
    # Adversarial accounting (all zero in passive loss-only runs).
    corrupted: int = 0       # deliveries tampered on the wire
    injected: int = 0        # forged packets the attacker added
    replayed: int = 0        # duplicate deliveries the attacker added
    undecodable: int = 0     # buffers rejected by the strict decoder
    forged_rejected: int = 0  # decodable packets rejected by auth checks
    replays_dropped: int = 0  # duplicates dropped by replay detection
    forged_accepted: int = 0  # attacker content verified — MUST stay 0

    def record(self, position: int, received: bool, verified: bool,
               delay: Optional[float] = None) -> None:
        """Record one packet's fate at block position ``position``."""
        if position < 1:
            raise SimulationError(f"positions are 1-based, got {position}")
        if verified and not received:
            raise SimulationError("verified packets must have been received")
        tally = self.tallies.setdefault(position, PositionTally())
        if received:
            tally.received += 1
        if verified:
            tally.verified += 1
            if delay is not None:
                self.delays.append(delay)

    # ------------------------------------------------------------------

    def q_profile(self) -> Dict[int, float]:
        """Per-position empirical ``q_i`` (positions ever received)."""
        return {
            position: tally.q
            for position, tally in sorted(self.tallies.items())
            if tally.q is not None
        }

    @property
    def q_min(self) -> float:
        """Minimum empirical ``q_i`` across positions."""
        profile = self.q_profile()
        if not profile:
            raise SimulationError("no received packets recorded")
        return min(profile.values())

    @property
    def overall_q(self) -> float:
        """Verified/received over all positions pooled."""
        received = sum(t.received for t in self.tallies.values())
        verified = sum(t.verified for t in self.tallies.values())
        if received == 0:
            raise SimulationError("no received packets recorded")
        return verified / received

    @property
    def mean_delay(self) -> float:
        """Mean verification delay among verified packets."""
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)

    @property
    def max_delay(self) -> float:
        """Worst verification delay observed."""
        if not self.delays:
            return 0.0
        return max(self.delays)

    @property
    def observed_loss_rate(self) -> float:
        """Channel loss rate realized across the run."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def merge_buffer_peaks(self, message_peak: int, hash_peak: int) -> None:
        """Fold one trial's buffer peaks into the run maxima."""
        self.message_buffer_peak = max(self.message_buffer_peak, message_peak)
        self.hash_buffer_peak = max(self.hash_buffer_peak, hash_peak)

    def merge(self, other: "SimulationStats") -> "SimulationStats":
        """Exact merge of two shards into a new accumulator.

        Counts sum per position, delays concatenate in merge order
        (shards ordered by trial index reproduce the serial delay
        sequence exactly), buffer peaks take the max.  Both inputs are
        left untouched, so merging is safe inside a process pool that
        still holds references to the shard results.
        """
        merged = SimulationStats()
        for source in (self, other):
            for position, tally in source.tallies.items():
                total = merged.tallies.setdefault(position, PositionTally())
                total.received += tally.received
                total.verified += tally.verified
            merged.delays.extend(source.delays)
            merged.merge_buffer_peaks(source.message_buffer_peak,
                                      source.hash_buffer_peak)
            merged.sent += source.sent
            merged.dropped += source.dropped
            merged.forged += source.forged
            merged.corrupted += source.corrupted
            merged.injected += source.injected
            merged.replayed += source.replayed
            merged.undecodable += source.undecodable
            merged.forged_rejected += source.forged_rejected
            merged.replays_dropped += source.replays_dropped
            merged.forged_accepted += source.forged_accepted
        return merged

    @staticmethod
    def merge_all(shards: "List[SimulationStats]") -> "SimulationStats":
        """Fold :meth:`merge` over shard results in order."""
        merged = SimulationStats()
        for shard in shards:
            merged = merged.merge(shard)
        return merged
