"""True multicast sessions: one sender, many heterogeneous receivers.

The paper's scenario is "a single-source sending a multicast stream of
packets to a large number of recipients" — each behind its own network
path.  The single most important property of signature amortization in
that setting is that the sender does *one* authentication pass while
every receiver independently verifies whatever subset of packets its
path delivered.

This module runs exactly that: the sender packetizes once; each
receiver gets an independent channel (its own loss/delay models) over
the *same* packet objects; results come back per receiver, so
experiments can study how `q_min` varies across a heterogeneous
audience — something the single-receiver analysis cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer, default_signer
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import DelayModel
from repro.network.loss import LossModel
from repro.packets import Packet
from repro.schemes.base import Scheme
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.stats import SimulationStats

__all__ = ["ReceiverSpec", "MulticastResult", "run_multicast_session"]


@dataclass
class ReceiverSpec:
    """One receiver's network path.

    Attributes
    ----------
    name:
        Label for results.
    loss, delay:
        This receiver's channel models (``None`` = lossless/instant).
    protect_signature_packets:
        Per-receiver ``P_sign`` protection (the paper's assumption).
    """

    name: str
    loss: Optional[LossModel] = None
    delay: Optional[DelayModel] = None
    protect_signature_packets: bool = True


@dataclass
class MulticastResult:
    """Per-receiver statistics plus sender-side totals."""

    per_receiver: Dict[str, SimulationStats] = field(default_factory=dict)
    packets_sent: int = 0

    def q_min_by_receiver(self) -> Dict[str, float]:
        """Each receiver's empirical ``q_min``."""
        return {name: stats.q_min
                for name, stats in self.per_receiver.items()}

    @property
    def worst_receiver(self) -> str:
        """The receiver with the lowest ``q_min``."""
        table = self.q_min_by_receiver()
        return min(table, key=table.get)


def run_multicast_session(scheme: Scheme, block_size: int, blocks: int,
                          receivers: Sequence[ReceiverSpec],
                          signer: Optional[Signer] = None,
                          hash_function: HashFunction = sha256,
                          t_transmit: float = 0.01,
                          payload_size: int = 32) -> MulticastResult:
    """One authenticated stream, fanned out to every receiver.

    The sender packetizes each block exactly once (one signature per
    block, total); every receiver sees an independent loss/delay
    realization of the same packets.

    Parameters
    ----------
    scheme:
        Any block-based scheme: hash-chained (generic cascade
        receiver), individually verifiable (per-packet check) or
        SAIDA (erasure decoder).  TESLA's time coupling needs its own
        session runner.
    receivers:
        Channel specs; names must be unique.

    Returns
    -------
    MulticastResult
        Per-receiver :class:`SimulationStats`.
    """
    if blocks < 1:
        raise SimulationError(f"need >= 1 block, got {blocks}")
    if not receivers:
        raise SimulationError("need at least one receiver")
    names = [spec.name for spec in receivers]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate receiver names: {names}")
    signer = signer if signer is not None else default_signer()
    sender = StreamSender(scheme, signer, block_size,
                          t_transmit=t_transmit,
                          hash_function=hash_function)
    base_seqs: Dict[int, int] = {}
    sent_packets: List[Packet] = []
    for _ in range(blocks):
        block_packets = sender.send_block(
            make_payloads(block_size, size=payload_size))
        base_seqs[block_packets[0].block_id] = block_packets[0].seq
        sent_packets.extend(block_packets)

    result = MulticastResult(packets_sent=len(sent_packets))
    for spec in receivers:
        channel = Channel(
            loss=spec.loss, delay=spec.delay,
            protect_signature_packets=spec.protect_signature_packets,
        )
        deliveries = channel.transmit(sent_packets)
        delivered = {d.packet.seq for d in deliveries}
        stats = SimulationStats()
        verdicts = _verify_for_receiver(scheme, signer, hash_function,
                                        deliveries, base_seqs, stats)
        for packet in sent_packets:
            position = packet.seq - base_seqs[packet.block_id] + 1
            received = packet.seq in delivered
            verified, delay = verdicts.get(packet.seq, (False, None))
            stats.record(position, received, verified, delay)
        stats.sent = channel.sent
        stats.dropped = channel.dropped
        result.per_receiver[spec.name] = stats
    return result


def _verify_for_receiver(scheme, signer, hash_function, deliveries,
                         base_seqs, stats):
    """Dispatch to the right verifier; return seq -> (verified, delay)."""
    verdicts = {}
    if isinstance(scheme, SaidaScheme):
        receiver = SaidaReceiver(signer, hash_function)
        for delivery in deliveries:
            receiver.receive(delivery.packet, delivery.arrival_time)
        for delivery in deliveries:
            seq = delivery.packet.seq
            verdicts[seq] = (bool(receiver.verified.get(seq)), None)
        return verdicts
    if scheme.individually_verifiable:
        for delivery in deliveries:
            packet = delivery.packet
            if isinstance(scheme, WongLamScheme):
                ok = verify_wong_lam_packet(
                    packet, signer, hash_function,
                    block_base_seq=base_seqs[packet.block_id])
            elif isinstance(scheme, SignEachScheme):
                ok = verify_sign_each_packet(packet, signer)
            else:
                raise SimulationError(
                    f"no individual verifier known for {scheme.name}"
                )
            verdicts[packet.seq] = (ok, 0.0 if ok else None)
        return verdicts
    receiver = ChainReceiver(signer, hash_function)
    for delivery in deliveries:
        receiver.receive(delivery.packet, delivery.arrival_time)
    stats.forged = receiver.forged_count()
    stats.merge_buffer_peaks(receiver.message_buffer_peak,
                             receiver.hash_buffer_peak)
    for seq, outcome in receiver.outcomes.items():
        verdicts[seq] = (outcome.verified,
                         outcome.delay if outcome.verified else None)
    return verdicts
