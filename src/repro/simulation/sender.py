"""Stream sender: blocks, sequence numbers and send timing.

Chops an application payload stream into signature-amortization blocks
of ``block_size`` packets, packetizes each block with the scheme under
test, and stamps send times at one packet per ``t_transmit`` — the
clock that the paper's Eq. 4 measures receiver delay in.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import SimulationError
from repro.packets import Packet
from repro.schemes.base import Scheme

__all__ = ["StreamSender", "make_payloads", "replicate_signature_packets"]


def replicate_signature_packets(packets: Sequence[Packet],
                                copies: int) -> List[Packet]:
    """Repeat each signature packet ``copies`` times in the send order.

    The paper assumes ``P_sign`` "can always be received ... by sending
    it multiple times"; this helper implements that literally.  Extra
    copies keep the original sequence number (the receiver deduplicates)
    and follow the original immediately in send order.

    Parameters
    ----------
    packets:
        One block (or stream) in send order.
    copies:
        Total transmissions of each signature packet (``1`` = no
        replication).
    """
    if copies < 1:
        raise SimulationError(f"copies must be >= 1, got {copies}")
    replicated: List[Packet] = []
    for packet in packets:
        replicated.append(packet)
        if packet.is_signature_packet:
            replicated.extend([packet] * (copies - 1))
    return replicated


def make_payloads(count: int, size: int = 32, tag: bytes = b"pkt") -> List[bytes]:
    """Deterministic distinct payloads for simulations and tests."""
    if count < 0 or size < 8:
        raise SimulationError("need count >= 0 and size >= 8")
    payloads = []
    for index in range(count):
        head = b"%s-%08d-" % (tag, index)
        payloads.append((head * (size // len(head) + 1))[:size])
    return payloads


class StreamSender:
    """Sender side of a hash-chained multicast session.

    Parameters
    ----------
    scheme:
        Any block-based scheme (hash-chained or individually
        verifiable); TESLA has its own sender.
    signer:
        Signs each block's root packet.
    block_size:
        Packets per block (``n`` in the analysis).
    t_transmit:
        Seconds between consecutive packet transmissions.
    hash_function:
        Hash for carried packet hashes.
    """

    def __init__(self, scheme: Scheme, signer: Signer, block_size: int,
                 t_transmit: float = 0.01,
                 hash_function: HashFunction = sha256) -> None:
        if block_size < 1:
            raise SimulationError(f"block size must be >= 1, got {block_size}")
        if t_transmit <= 0:
            raise SimulationError(f"t_transmit must be > 0, got {t_transmit}")
        self.scheme = scheme
        self.signer = signer
        self.block_size = block_size
        self.t_transmit = t_transmit
        self.hash_function = hash_function
        self._next_seq = 1
        self._next_block = 0
        self._clock = 0.0

    def send_block(self, payloads: Sequence[bytes]) -> List[Packet]:
        """Packetize one block and stamp send times; returns send order."""
        if not payloads:
            raise SimulationError("empty block")
        packets = self.scheme.make_block(
            list(payloads), self.signer, self.hash_function,
            block_id=self._next_block, base_seq=self._next_seq,
        )
        self._next_block += 1
        self._next_seq += len(packets)
        stamped = []
        for packet in packets:
            stamped.append(packet.with_send_time(self._clock))
            self._clock += self.t_transmit
        return stamped

    def send_stream(self, payloads: Iterable[bytes]) -> Iterator[List[Packet]]:
        """Yield stamped blocks for an arbitrary payload stream.

        The final block may be short (fewer than ``block_size``
        payloads); schemes handle any block size >= their minimum.
        """
        block: List[bytes] = []
        for payload in payloads:
            block.append(bytes(payload))
            if len(block) == self.block_size:
                yield self.send_block(block)
                block = []
        if block:
            yield self.send_block(block)
