"""Multi-trial Monte Carlo drivers at the wire level.

These run *real* packets through *real* verification — the slow,
high-fidelity counterpart to the vectorized graph-level estimator in
:mod:`repro.analysis.montecarlo`.  Use them to validate that the
byte-level implementation matches the graph abstraction; use the
graph-level estimator for large parameter sweeps.

Each trial's channel RNG is derived from the config seed and the
trial's *global* index, so a run can be sharded into contiguous
index ranges (:func:`run_wire_trials`, :func:`run_tesla_trials`) and
re-merged — :mod:`repro.parallel` fans those ranges out across a
process pool with output identical to the serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.network.delay import ConstantDelay, DelayModel, GaussianDelay
from repro.network.loss import BernoulliLoss, LossModel
from repro.schemes.base import Scheme
from repro.schemes.tesla import TeslaParameters
from repro.simulation.session import (
    run_chain_session,
    run_individual_session,
    run_tesla_session,
)
from repro.simulation.stats import SimulationStats

__all__ = [
    "wire_monte_carlo",
    "tesla_monte_carlo",
    "run_wire_trials",
    "run_tesla_trials",
    "WireTrialConfig",
]


@dataclass(frozen=True)
class WireTrialConfig:
    """Shared knobs for wire-level Monte Carlo runs."""

    block_size: int = 32
    blocks_per_trial: int = 1
    trials: int = 20
    loss_rate: float = 0.2
    t_transmit: float = 0.01
    seed: int = 7


def _fast_signer() -> Signer:
    return HmacStubSigner(key=b"wire-monte-carlo", signature_size=128)


def run_wire_trials(scheme: Scheme, config: WireTrialConfig,
                    first_trial: int, trial_count: int,
                    loss: Optional[LossModel] = None,
                    delay: Optional[DelayModel] = None,
                    attack=None) -> SimulationStats:
    """Run trials ``first_trial .. first_trial + trial_count - 1``.

    Trial indices are global: the channel RNG of trial ``t`` depends
    only on ``config.seed`` and ``t``, never on the range boundaries,
    so any partition of ``range(config.trials)`` into contiguous ranges
    merges back to exactly the serial result.

    ``attack`` (an :class:`~repro.faults.plan.AttackPlan`) switches the
    run to the adversarial driver
    (:func:`repro.simulation.adversarial.run_adversarial_trials`):
    wire bytes cross an actively hostile channel and the statistics
    gain soundness counters.  Custom ``loss``/``delay`` models and
    multi-block trials are passive-only.
    """
    if trial_count < 0:
        raise SimulationError(f"trial count must be >= 0, got {trial_count}")
    if first_trial < 0:
        raise SimulationError(f"first trial must be >= 0, got {first_trial}")
    if attack is not None:
        from repro.simulation.adversarial import run_adversarial_trials
        if loss is not None or delay is not None:
            raise SimulationError(
                "attacked runs derive their channel per trial; custom "
                "loss/delay models are passive-only")
        if config.blocks_per_trial != 1:
            raise SimulationError(
                "attacked runs use one block per trial")
        return run_adversarial_trials(
            scheme, config.block_size, config.loss_rate, attack,
            first_trial, trial_count, seed=config.seed,
            t_transmit=config.t_transmit)
    signer = _fast_signer()
    stats = SimulationStats()
    with span("wire.trials"):
        for trial in range(first_trial, first_trial + trial_count):
            trial_loss = loss if loss is not None else BernoulliLoss(
                config.loss_rate, seed=config.seed + trial * 7919)
            trial_delay = delay if delay is not None else ConstantDelay(0.0)
            if loss is not None:
                trial_loss.reset()
            if delay is not None:
                trial_delay.reset()
            channel = Channel(loss=trial_loss, delay=trial_delay)
            if scheme.individually_verifiable:
                run_individual_session(scheme, config.block_size,
                                       config.blocks_per_trial, channel,
                                       signer=signer, stats=stats)
            else:
                run_chain_session(scheme, config.block_size,
                                  config.blocks_per_trial, channel,
                                  signer=signer,
                                  t_transmit=config.t_transmit, stats=stats)
    registry = get_registry()
    if registry.enabled:
        registry.count("wire.trials", trial_count)
        registry.count("wire.sessions",
                       trial_count * config.blocks_per_trial)
        registry.count("wire.packets_sent", stats.sent)
        registry.count("wire.packets_dropped", stats.dropped)
        registry.count("wire.packets_verified",
                       sum(t.verified for t in stats.tallies.values()))
    return stats


def wire_monte_carlo(scheme: Scheme, config: WireTrialConfig,
                     loss: Optional[LossModel] = None,
                     delay: Optional[DelayModel] = None,
                     attack=None) -> SimulationStats:
    """Aggregate ``trials`` wire-level sessions of ``scheme``.

    Each trial gets an independent channel (fresh loss RNG derived from
    the config seed) but statistics accumulate into one
    :class:`SimulationStats`, so ``stats.q_profile()`` is the empirical
    per-position ``q_i`` across all trials.  ``attack`` runs the trials
    through an adversarial channel (see :func:`run_wire_trials`).
    """
    if config.trials < 1:
        raise SimulationError(f"need >= 1 trial, got {config.trials}")
    return run_wire_trials(scheme, config, 0, config.trials,
                           loss=loss, delay=delay, attack=attack)


def run_tesla_trials(parameters: TeslaParameters, packet_count: int,
                     first_trial: int, trial_count: int, loss_rate: float,
                     delay_mean: float = 0.0, delay_std: float = 0.0,
                     clock_offset: float = 0.0,
                     seed: int = 11) -> SimulationStats:
    """TESLA counterpart of :func:`run_wire_trials` (global indices)."""
    if trial_count < 0:
        raise SimulationError(f"trial count must be >= 0, got {trial_count}")
    if first_trial < 0:
        raise SimulationError(f"first trial must be >= 0, got {first_trial}")
    stats = SimulationStats()
    with span("wire.tesla_trials"):
        for trial in range(first_trial, first_trial + trial_count):
            loss = BernoulliLoss(loss_rate, seed=seed + trial * 104729)
            if delay_std > 0 or delay_mean > 0:
                delay: DelayModel = GaussianDelay(delay_mean, delay_std,
                                                  seed=seed + trial * 1299709)
            else:
                delay = ConstantDelay(0.0)
            channel = Channel(loss=loss, delay=delay)
            run_tesla_session(parameters, packet_count, channel,
                              clock_offset=clock_offset, stats=stats)
    registry = get_registry()
    if registry.enabled:
        registry.count("wire.tesla_trials", trial_count)
        registry.count("wire.packets_sent", stats.sent)
        registry.count("wire.packets_dropped", stats.dropped)
        registry.count("wire.packets_verified",
                       sum(t.verified for t in stats.tallies.values()))
    return stats


def tesla_monte_carlo(parameters: TeslaParameters, packet_count: int,
                      trials: int, loss_rate: float,
                      delay_mean: float = 0.0, delay_std: float = 0.0,
                      clock_offset: float = 0.0,
                      seed: int = 11) -> SimulationStats:
    """Aggregate ``trials`` TESLA sessions into one statistics object.

    Parameters mirror the paper's Fig. 3/4 axes: loss rate ``p``, mean
    delay ``μ`` and jitter ``σ`` (the disclosure delay lives inside
    ``parameters``).
    """
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    return run_tesla_trials(parameters, packet_count, 0, trials, loss_rate,
                            delay_mean=delay_mean, delay_std=delay_std,
                            clock_offset=clock_offset, seed=seed)
