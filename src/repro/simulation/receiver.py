"""Generic receiver for hash-chained schemes.

The receiver is deliberately *scheme-agnostic*: a hash-chained packet
stream is self-describing (each packet says which sequence numbers the
hashes it carries belong to), so one verification engine covers
Gennaro–Rohatgi, EMSS, augmented chains, generic offset schemes and
any designed graph.  The engine maintains exactly the two buffers the
paper's Sec. 3 buffer analysis talks about:

* a **hash buffer** of trusted hashes for packets not yet arrived, and
* a **message buffer** of arrived-but-unverifiable packets.

Verification cascades: a packet becomes trusted either by signature or
by matching a trusted hash; its carried hashes then become trusted,
which may release buffered packets, recursively.

Two entry points feed the engine.  :meth:`ChainReceiver.receive` is
the trusting path for simulations that deliver parsed packets over a
loss-only channel (first delivery per sequence wins, as before).
:meth:`ChainReceiver.ingest_wire` is the defensive path for
adversarial channels: it decodes raw bytes (counting undecodable
buffers), detects replays by content digest, rejects forgeries
without letting them claim a sequence slot, and keeps several
same-sequence candidates buffered so a forged packet can never evict
the genuine one from contention — no crash, no trust-state pollution,
bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.exceptions import WireDecodeError
from repro.packets import Packet, packet_from_wire

__all__ = ["PacketOutcome", "ChainReceiver"]

#: Buffered same-sequence candidates kept per slot on the defensive
#: path.  The eavesdrop-and-inject adversary sends forgeries *after*
#: the genuine packet, so slot 1 suffices for it; the margin covers
#: blind pre-emptive collisions without unbounding memory.
DEFAULT_MAX_CANDIDATES = 4


@dataclass
class PacketOutcome:
    """Lifecycle record of one received packet."""

    seq: int
    arrival_time: float
    verified: bool = False
    forged: bool = False
    verified_time: Optional[float] = None

    @property
    def delay(self) -> Optional[float]:
        """Wait between arrival and verification (None if never verified)."""
        if self.verified_time is None:
            return None
        return self.verified_time - self.arrival_time


class ChainReceiver:
    """Incremental verifier for hash-chained packet streams.

    Parameters
    ----------
    signer:
        Verifier for signature packets (public part suffices).
    hash_function:
        Must match the sender's hash (sizes included).
    max_buffered:
        Optional hard cap on the message buffer (total buffered
        candidates).  Real receivers cannot hold unverified packets
        forever — the paper notes the buffering that EMSS/AC/TESLA
        require "is subject to Denial of Service attacks".  When the
        cap is hit, the oldest candidate of the lowest buffered
        sequence is evicted (it can never verify afterwards);
        evictions are counted in :attr:`evicted`.
    max_candidates:
        Cap on buffered same-sequence candidates (defensive path);
        further colliding packets are rejected, not buffered.
    on_verified:
        Optional ``callback(packet, time)`` invoked for every packet
        the instant it verifies (including cascade releases) — the
        hook :class:`~repro.simulation.stream_receiver.StreamReceiver`
        builds ordered delivery on.

    Notes
    -----
    Packets whose authentication data *mismatches* a trusted hash or
    signature are flagged ``forged`` — in a loss-only simulation none
    should ever appear, and tests assert exactly that; in adversarial
    tests they do, and :attr:`forged_rejected` counts them.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256,
                 max_buffered: Optional[int] = None,
                 max_candidates: int = DEFAULT_MAX_CANDIDATES,
                 on_verified=None) -> None:
        if max_buffered is not None and max_buffered < 1:
            raise ValueError(f"max_buffered must be >= 1, got {max_buffered}")
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {max_candidates}")
        self._signer = signer
        self._hash = hash_function
        self._max_buffered = max_buffered
        self._max_candidates = max_candidates
        self._on_verified = on_verified
        self._trusted: Dict[int, bytes] = {}
        # seq -> [(packet, arrival_time, auth digest), ...] in arrival order
        self._buffered: Dict[int, List[Tuple[Packet, float, bytes]]] = {}
        self._buffered_total = 0
        # seq -> auth digest of the packet that verified for that slot
        self._accepted: Dict[int, bytes] = {}
        self.outcomes: Dict[int, PacketOutcome] = {}
        self.evicted = 0
        #: Evictions forced by the DoS buffer cap specifically — unlike
        #: :attr:`evicted`, which also counts the routine block-close
        #: reclaim, cap pressure is an anomaly the health sentinels
        #: alert on.
        self.cap_evictions = 0
        self.undecodable = 0
        self.forged_rejected = 0
        self.replays_dropped = 0
        self._message_buffer_peak = 0
        self._hash_buffer_peak = 0
        #: Taxonomy of the most recent defensive ingest — one of
        #: "undecodable", "replay-drop", "forged-reject", "slot-reject",
        #: "verified", "buffered" — plus the decoded packet (None when
        #: decoding failed).  Written by :meth:`ingest_wire`/:meth:`ingest`
        #: so lifecycle tracing can attribute the event without decoding
        #: the wire bytes a second time.
        self.last_ingest: Optional[str] = None
        self.last_ingest_packet: Optional[Packet] = None

    # ------------------------------------------------------------------
    # Trusting path: parsed packets from a loss-only channel
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, arrival_time: float) -> PacketOutcome:
        """Process one arriving packet; returns its (live) outcome record.

        The outcome may flip to verified later, when a subsequent
        packet supplies the missing hash — the returned object is
        updated in place.  Duplicate sequences return the existing
        outcome untouched (first delivery wins).
        """
        outcome = self.outcomes.get(packet.seq)
        if outcome is not None:
            return outcome  # duplicate delivery (e.g. retransmitted P_sign)
        outcome = PacketOutcome(seq=packet.seq, arrival_time=arrival_time)
        self.outcomes[packet.seq] = outcome
        auth = packet.auth_bytes()
        if packet.signature is not None:
            if self._signer.verify(auth, packet.signature):
                self._mark_verified(packet, arrival_time,
                                    self._hash.digest(auth))
            else:
                outcome.forged = True
                self.forged_rejected += 1
            return outcome
        digest = self._hash.digest(auth)
        expected = self._trusted.get(packet.seq)
        if expected is not None:
            if expected == digest:
                self._mark_verified(packet, arrival_time, digest)
            else:
                outcome.forged = True
                self.forged_rejected += 1
            return outcome
        self._buffer_candidate(packet, arrival_time, digest)
        return outcome

    # ------------------------------------------------------------------
    # Defensive path: raw bytes from an adversarial channel
    # ------------------------------------------------------------------

    def ingest_wire(self, data: bytes,
                    arrival_time: float) -> Optional[PacketOutcome]:
        """Decode and ingest one wire buffer; ``None`` if undecodable.

        Undecodable buffers (truncation, bit flips that break framing,
        garbage) are counted in :attr:`undecodable` and discarded —
        they cannot crash the receiver or consume buffer space.
        """
        try:
            packet = packet_from_wire(data)
        except WireDecodeError:
            self.undecodable += 1
            self.last_ingest = "undecodable"
            self.last_ingest_packet = None
            return None
        return self.ingest(packet, arrival_time)

    def ingest(self, packet: Packet,
               arrival_time: float) -> Optional[PacketOutcome]:
        """Defensively ingest one decoded packet.

        Differences from :meth:`receive`, all aimed at an attacker who
        controls the network:

        * exact duplicates of already-processed content are dropped and
          counted in :attr:`replays_dropped`;
        * a packet whose authentication data mismatches never *claims*
          the sequence slot — a forgery racing the genuine packet
          cannot poison its outcome (counted in
          :attr:`forged_rejected`);
        * unverifiable packets are buffered as same-sequence
          *candidates* (bounded by ``max_candidates``), so trust
          resolves to whichever candidate matches once the covering
          hash arrives, regardless of arrival order.
        """
        seq = packet.seq
        outcome = self.outcomes.get(seq)
        auth = packet.auth_bytes()
        digest = self._hash.digest(auth)
        self.last_ingest_packet = packet
        if outcome is not None and outcome.verified:
            if self._accepted.get(seq) == digest:
                self.replays_dropped += 1
                self.last_ingest = "replay-drop"
            else:
                self.forged_rejected += 1
                self.last_ingest = "forged-reject"
            return outcome
        if packet.signature is not None:
            if self._signer.verify(auth, packet.signature):
                outcome = self._ensure_outcome(seq, arrival_time)
                self._mark_verified(packet, arrival_time, digest)
                self.last_ingest = "verified"
            else:
                # Rejected forgery: no outcome is created, so the slot
                # stays claimable by the genuine packet.
                self.forged_rejected += 1
                self.last_ingest = "forged-reject"
                if outcome is not None:
                    outcome.forged = True
            return outcome
        expected = self._trusted.get(seq)
        if expected is not None:
            if expected == digest:
                outcome = self._ensure_outcome(seq, arrival_time)
                self._mark_verified(packet, arrival_time, digest)
                self.last_ingest = "verified"
            else:
                self.forged_rejected += 1
                self.last_ingest = "forged-reject"
                if outcome is not None:
                    outcome.forged = True
            return outcome
        # No verdict possible yet: buffer as a candidate for this slot.
        for _held, _arrival, held_digest in self._buffered.get(seq, ()):
            if held_digest == digest:
                self.replays_dropped += 1
                self.last_ingest = "replay-drop"
                return outcome
        candidates = self._buffered.get(seq, [])
        if len(candidates) >= self._max_candidates:
            # Slot contention exhausted; drop the newcomer determinately.
            self.forged_rejected += 1
            self.last_ingest = "slot-reject"
            return outcome
        outcome = self._ensure_outcome(seq, arrival_time)
        self._buffer_candidate(packet, arrival_time, digest)
        self.last_ingest = "buffered"
        return outcome

    # ------------------------------------------------------------------

    def _ensure_outcome(self, seq: int, arrival_time: float) -> PacketOutcome:
        outcome = self.outcomes.get(seq)
        if outcome is None:
            outcome = PacketOutcome(seq=seq, arrival_time=arrival_time)
            self.outcomes[seq] = outcome
        return outcome

    def _buffer_candidate(self, packet: Packet, arrival_time: float,
                          digest: bytes) -> None:
        self._buffered.setdefault(packet.seq, []).append(
            (packet, arrival_time, digest))
        self._buffered_total += 1
        if (self._max_buffered is not None
                and self._buffered_total > self._max_buffered):
            oldest = min(self._buffered)
            candidates = self._buffered[oldest]
            candidates.pop(0)
            if not candidates:
                del self._buffered[oldest]
            self._buffered_total -= 1
            self.evicted += 1
            self.cap_evictions += 1
        self._message_buffer_peak = max(self._message_buffer_peak,
                                        self._buffered_total)

    def evict_block(self, block_id: int) -> int:
        """Drop buffered packets of a finished block; returns the count.

        Once a block's signature packet has been processed and the
        sender has moved on, buffered packets of that block whose hash
        support was lost can never verify; callers that track block
        boundaries reclaim the memory here.
        """
        dropped = 0
        for seq in list(self._buffered):
            candidates = self._buffered[seq]
            keep = [entry for entry in candidates
                    if entry[0].block_id != block_id]
            dropped += len(candidates) - len(keep)
            if keep:
                self._buffered[seq] = keep
            else:
                del self._buffered[seq]
        self._buffered_total -= dropped
        self.evicted += dropped
        return dropped

    # ------------------------------------------------------------------

    def _mark_verified(self, packet: Packet, now: float,
                       digest: bytes) -> None:
        """Trust ``packet``, absorb its hashes, cascade to buffered packets."""
        worklist = [(packet, digest)]
        while worklist:
            current, current_digest = worklist.pop()
            outcome = self.outcomes[current.seq]
            outcome.verified = True
            outcome.verified_time = now
            self._accepted[current.seq] = current_digest
            stale = self._buffered.pop(current.seq, None)
            if stale:
                self._buffered_total -= len(stale)
                for _held, _arrival, stale_digest in stale:
                    if stale_digest == current_digest:
                        self.replays_dropped += 1
                    else:
                        self.forged_rejected += 1
            if self._on_verified is not None:
                self._on_verified(current, now)
            for target, carried_digest in current.carried:
                known = self._trusted.get(target)
                if known is not None and known != carried_digest:
                    # Conflicting trusted hashes can only come from a
                    # forged-but-signed packet; keep the first.
                    continue
                self._trusted[target] = carried_digest
                held = self._buffered.pop(target, None)
                if held is None:
                    continue
                self._buffered_total -= len(held)
                matched: Optional[Tuple[Packet, bytes]] = None
                for held_packet, _arrival, held_digest in held:
                    if held_digest == carried_digest:
                        if matched is None:
                            matched = (held_packet, held_digest)
                        else:
                            self.replays_dropped += 1
                    else:
                        self.outcomes[target].forged = True
                        self.forged_rejected += 1
                if matched is not None:
                    worklist.append(matched)
            self._hash_buffer_peak = max(self._hash_buffer_peak,
                                         self.pending_hash_count)

    # ------------------------------------------------------------------

    def accepted_digest(self, seq: int) -> Optional[bytes]:
        """Auth digest of the packet that verified for ``seq``, if any.

        Ground-truth audits compare this against the digest of what the
        sender actually sent — the soundness check that no forged or
        corrupted content was ever accepted.
        """
        return self._accepted.get(seq)

    @property
    def pending_hash_count(self) -> int:
        """Trusted hashes waiting for their packet (hash buffer level)."""
        return sum(1 for seq in self._trusted if seq not in self.outcomes)

    @property
    def buffered_count(self) -> int:
        """Arrived-but-unverified candidates (message buffer level)."""
        return self._buffered_total

    @property
    def message_buffer_peak(self) -> int:
        """Maximum message-buffer occupancy seen so far."""
        return self._message_buffer_peak

    @property
    def hash_buffer_peak(self) -> int:
        """Maximum hash-buffer occupancy seen so far."""
        return self._hash_buffer_peak

    def verified_count(self) -> int:
        """Packets verified so far."""
        return sum(1 for o in self.outcomes.values() if o.verified)

    def forged_count(self) -> int:
        """Packets whose authentication data mismatched."""
        return sum(1 for o in self.outcomes.values() if o.forged)
