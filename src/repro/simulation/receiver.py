"""Generic receiver for hash-chained schemes.

The receiver is deliberately *scheme-agnostic*: a hash-chained packet
stream is self-describing (each packet says which sequence numbers the
hashes it carries belong to), so one verification engine covers
Gennaro–Rohatgi, EMSS, augmented chains, generic offset schemes and
any designed graph.  The engine maintains exactly the two buffers the
paper's Sec. 3 buffer analysis talks about:

* a **hash buffer** of trusted hashes for packets not yet arrived, and
* a **message buffer** of arrived-but-unverifiable packets.

Verification cascades: a packet becomes trusted either by signature or
by matching a trusted hash; its carried hashes then become trusted,
which may release buffered packets, recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.packets import Packet

__all__ = ["PacketOutcome", "ChainReceiver"]


@dataclass
class PacketOutcome:
    """Lifecycle record of one received packet."""

    seq: int
    arrival_time: float
    verified: bool = False
    forged: bool = False
    verified_time: Optional[float] = None

    @property
    def delay(self) -> Optional[float]:
        """Wait between arrival and verification (None if never verified)."""
        if self.verified_time is None:
            return None
        return self.verified_time - self.arrival_time


class ChainReceiver:
    """Incremental verifier for hash-chained packet streams.

    Parameters
    ----------
    signer:
        Verifier for signature packets (public part suffices).
    hash_function:
        Must match the sender's hash (sizes included).
    max_buffered:
        Optional hard cap on the message buffer.  Real receivers
        cannot hold unverified packets forever — the paper notes the
        buffering that EMSS/AC/TESLA require "is subject to Denial of
        Service attacks".  When the cap is hit, the oldest buffered
        packet is evicted (it can never verify afterwards); evictions
        are counted in :attr:`evicted`.
    on_verified:
        Optional ``callback(packet, time)`` invoked for every packet
        the instant it verifies (including cascade releases) — the
        hook :class:`~repro.simulation.stream_receiver.StreamReceiver`
        builds ordered delivery on.

    Notes
    -----
    Packets whose authentication data *mismatches* a trusted hash or
    signature are flagged ``forged`` — in a loss-only simulation none
    should ever appear, and tests assert exactly that; in adversarial
    tests they do.
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256,
                 max_buffered: Optional[int] = None,
                 on_verified=None) -> None:
        if max_buffered is not None and max_buffered < 1:
            raise ValueError(f"max_buffered must be >= 1, got {max_buffered}")
        self._signer = signer
        self._hash = hash_function
        self._max_buffered = max_buffered
        self._on_verified = on_verified
        self._trusted: Dict[int, bytes] = {}
        self._buffered: Dict[int, Tuple[Packet, float]] = {}
        self.outcomes: Dict[int, PacketOutcome] = {}
        self.evicted = 0
        self._message_buffer_peak = 0
        self._hash_buffer_peak = 0

    # ------------------------------------------------------------------

    def receive(self, packet: Packet, arrival_time: float) -> PacketOutcome:
        """Process one arriving packet; returns its (live) outcome record.

        The outcome may flip to verified later, when a subsequent
        packet supplies the missing hash — the returned object is
        updated in place.
        """
        outcome = self.outcomes.get(packet.seq)
        if outcome is not None:
            return outcome  # duplicate delivery (e.g. retransmitted P_sign)
        outcome = PacketOutcome(seq=packet.seq, arrival_time=arrival_time)
        self.outcomes[packet.seq] = outcome
        auth = packet.auth_bytes()
        if packet.signature is not None:
            if self._signer.verify(auth, packet.signature):
                self._mark_verified(packet, arrival_time)
            else:
                outcome.forged = True
            return outcome
        digest = self._hash.digest(auth)
        expected = self._trusted.get(packet.seq)
        if expected is not None:
            if expected == digest:
                self._mark_verified(packet, arrival_time)
            else:
                outcome.forged = True
            return outcome
        self._buffered[packet.seq] = (packet, arrival_time)
        if (self._max_buffered is not None
                and len(self._buffered) > self._max_buffered):
            oldest = min(self._buffered)
            del self._buffered[oldest]
            self.evicted += 1
        self._message_buffer_peak = max(self._message_buffer_peak,
                                        len(self._buffered))
        return outcome

    def evict_block(self, block_id: int) -> int:
        """Drop buffered packets of a finished block; returns the count.

        Once a block's signature packet has been processed and the
        sender has moved on, buffered packets of that block whose hash
        support was lost can never verify; callers that track block
        boundaries reclaim the memory here.
        """
        stale = [seq for seq, (packet, _) in self._buffered.items()
                 if packet.block_id == block_id]
        for seq in stale:
            del self._buffered[seq]
        self.evicted += len(stale)
        return len(stale)

    # ------------------------------------------------------------------

    def _mark_verified(self, packet: Packet, now: float) -> None:
        """Trust ``packet``, absorb its hashes, cascade to buffered packets."""
        worklist = [packet]
        while worklist:
            current = worklist.pop()
            outcome = self.outcomes[current.seq]
            outcome.verified = True
            outcome.verified_time = now
            if self._on_verified is not None:
                self._on_verified(current, now)
            for target, digest in current.carried:
                known = self._trusted.get(target)
                if known is not None and known != digest:
                    # Conflicting trusted hashes can only come from a
                    # forged-but-signed packet; keep the first.
                    continue
                self._trusted[target] = digest
                held = self._buffered.get(target)
                if held is None:
                    continue
                held_packet, _arrival = held
                del self._buffered[target]
                if self._hash.digest(held_packet.auth_bytes()) == digest:
                    worklist.append(held_packet)
                else:
                    self.outcomes[target].forged = True
            self._hash_buffer_peak = max(self._hash_buffer_peak,
                                         self.pending_hash_count)

    # ------------------------------------------------------------------

    @property
    def pending_hash_count(self) -> int:
        """Trusted hashes waiting for their packet (hash buffer level)."""
        return sum(1 for seq in self._trusted if seq not in self.outcomes)

    @property
    def buffered_count(self) -> int:
        """Arrived-but-unverified packets (message buffer level)."""
        return len(self._buffered)

    @property
    def message_buffer_peak(self) -> int:
        """Maximum message-buffer occupancy seen so far."""
        return self._message_buffer_peak

    @property
    def hash_buffer_peak(self) -> int:
        """Maximum hash-buffer occupancy seen so far."""
        return self._hash_buffer_peak

    def verified_count(self) -> int:
        """Packets verified so far."""
        return sum(1 for o in self.outcomes.values() if o.verified)

    def forged_count(self) -> int:
        """Packets whose authentication data mismatched."""
        return sum(1 for o in self.outcomes.values() if o.forged)
