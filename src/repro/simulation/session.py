"""End-to-end simulation sessions: sender → channel → receiver.

A *session* wires a scheme's sender to the generic receiver through a
lossy channel, runs whole blocks through it, and tallies outcomes into
:class:`~repro.simulation.stats.SimulationStats`.  Separate session
runners exist for hash-chained schemes, individually-verifiable
schemes and TESLA, because their receivers differ; all three produce
the same statistics object so experiments can compare them uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer, default_signer
from repro.exceptions import SimulationError
from repro.network.channel import Channel, Delivery
from repro.packets import Packet
from repro.schemes.base import Scheme
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.stats import SimulationStats

__all__ = [
    "run_chain_session",
    "run_individual_session",
    "run_saida_session",
    "run_tesla_session",
]


def _position_of(seq: int, base_seq: int) -> int:
    return seq - base_seq + 1


def run_chain_session(scheme: Scheme, block_size: int, blocks: int,
                      channel: Channel, signer: Optional[Signer] = None,
                      hash_function: HashFunction = sha256,
                      t_transmit: float = 0.01,
                      payload_size: int = 32,
                      stats: Optional[SimulationStats] = None) -> SimulationStats:
    """Run a hash-chained scheme over ``blocks`` blocks.

    ``P_sign`` loss protection follows the channel's configuration (the
    paper assumes it always arrives).  Statistics accumulate into
    ``stats`` when given, enabling multi-trial aggregation.

    Returns
    -------
    SimulationStats
        Per-position ``q_i`` tallies, delays and buffer peaks.
    """
    if blocks < 1:
        raise SimulationError(f"need >= 1 block, got {blocks}")
    signer = signer if signer is not None else default_signer()
    stats = stats if stats is not None else SimulationStats()
    sender = StreamSender(scheme, signer, block_size,
                          t_transmit=t_transmit, hash_function=hash_function)
    receiver = ChainReceiver(signer, hash_function)
    base_seqs: Dict[int, int] = {}
    sent_packets: List[Packet] = []
    for _ in range(blocks):
        payloads = make_payloads(block_size, size=payload_size)
        block_packets = sender.send_block(payloads)
        base_seqs[block_packets[0].block_id] = block_packets[0].seq
        sent_packets.extend(block_packets)
    deliveries = channel.transmit(sent_packets)
    for delivery in deliveries:
        receiver.receive(delivery.packet, delivery.arrival_time)
    _tally_chain(sent_packets, deliveries, receiver, base_seqs, stats)
    stats.sent += channel.sent
    stats.dropped += channel.dropped
    stats.forged += receiver.forged_count()
    stats.merge_buffer_peaks(receiver.message_buffer_peak,
                             receiver.hash_buffer_peak)
    return stats


def _tally_chain(sent_packets: Sequence[Packet],
                 deliveries: Sequence[Delivery], receiver: ChainReceiver,
                 base_seqs: Dict[int, int], stats: SimulationStats) -> None:
    delivered = {d.packet.seq for d in deliveries}
    for packet in sent_packets:
        position = _position_of(packet.seq, base_seqs[packet.block_id])
        received = packet.seq in delivered
        outcome = receiver.outcomes.get(packet.seq)
        verified = bool(outcome and outcome.verified)
        delay = outcome.delay if (outcome and outcome.verified) else None
        stats.record(position, received, verified, delay)


def run_individual_session(scheme: Scheme, block_size: int, blocks: int,
                           channel: Channel,
                           signer: Optional[Signer] = None,
                           hash_function: HashFunction = sha256,
                           t_transmit: float = 0.01,
                           stats: Optional[SimulationStats] = None
                           ) -> SimulationStats:
    """Run an individually-verifiable scheme (sign-each, Wong–Lam).

    Every received packet is checked in isolation; ``q_i`` should come
    out 1.0 for every position, which tests assert.
    """
    if not scheme.individually_verifiable:
        raise SimulationError(f"{scheme.name} is not individually verifiable")
    signer = signer if signer is not None else default_signer()
    stats = stats if stats is not None else SimulationStats()
    sender = StreamSender(scheme, signer, block_size,
                          t_transmit=t_transmit, hash_function=hash_function)
    for _ in range(blocks):
        payloads = make_payloads(block_size)
        packets = sender.send_block(payloads)
        base_seq = packets[0].seq
        deliveries = channel.transmit(packets)
        delivered = {}
        for delivery in deliveries:
            packet = delivery.packet
            if isinstance(scheme, WongLamScheme):
                ok = verify_wong_lam_packet(packet, signer, hash_function,
                                            block_base_seq=base_seq)
            elif isinstance(scheme, SignEachScheme):
                ok = verify_sign_each_packet(packet, signer)
            else:
                raise SimulationError(
                    f"no individual verifier known for {scheme.name}"
                )
            delivered[packet.seq] = ok
            if ok:
                stats.delays.append(0.0)
        for packet in packets:
            position = _position_of(packet.seq, base_seq)
            received = packet.seq in delivered
            verified = received and delivered[packet.seq]
            stats.record(position, received, verified)
            if received and not verified:
                stats.forged += 1
    stats.sent += channel.sent
    stats.dropped += channel.dropped
    return stats


def run_saida_session(scheme: SaidaScheme, block_size: int, blocks: int,
                      channel: Channel, signer: Optional[Signer] = None,
                      hash_function: HashFunction = sha256,
                      t_transmit: float = 0.01,
                      stats: Optional[SimulationStats] = None
                      ) -> SimulationStats:
    """Run the erasure-coded scheme over ``blocks`` blocks.

    SAIDA has no signature packet to protect — the signature travels
    inside the coded blob — so every packet takes its chances with the
    loss model.
    """
    if blocks < 1:
        raise SimulationError(f"need >= 1 block, got {blocks}")
    signer = signer if signer is not None else default_signer()
    stats = stats if stats is not None else SimulationStats()
    sender = StreamSender(scheme, signer, block_size,
                          t_transmit=t_transmit,
                          hash_function=hash_function)
    receiver = SaidaReceiver(signer, hash_function)
    base_seqs: Dict[int, int] = {}
    sent_packets: List[Packet] = []
    for _ in range(blocks):
        block_packets = sender.send_block(make_payloads(block_size))
        base_seqs[block_packets[0].block_id] = block_packets[0].seq
        sent_packets.extend(block_packets)
    deliveries = channel.transmit(sent_packets)
    arrival_times = {}
    for delivery in deliveries:
        receiver.receive(delivery.packet, delivery.arrival_time)
        arrival_times[delivery.packet.seq] = delivery.arrival_time
        stats.message_buffer_peak = max(stats.message_buffer_peak,
                                        receiver.pending_count)
    delivered = set(arrival_times)
    for packet in sent_packets:
        position = _position_of(packet.seq, base_seqs[packet.block_id])
        received = packet.seq in delivered
        verified = bool(receiver.verified.get(packet.seq))
        stats.record(position, received, verified)
    stats.sent += channel.sent
    stats.dropped += channel.dropped
    return stats


def run_tesla_session(parameters: TeslaParameters, packet_count: int,
                      channel: Channel, signer: Optional[Signer] = None,
                      clock_offset: float = 0.0,
                      payload_size: int = 32,
                      stats: Optional[SimulationStats] = None
                      ) -> SimulationStats:
    """Run one TESLA session of ``packet_count`` data packets.

    One data packet is sent per interval.  The bootstrap packet is
    signature-protected by the channel (the paper's assumption about
    ``P_sign``); trailing key-flush packets are sent after the stream.
    Each packet's position is its interval index, so positions align
    with the paper's ``q_i = (1 - p^{n+1-i}) ξ_i``.
    """
    if packet_count < 1:
        raise SimulationError(f"need >= 1 packet, got {packet_count}")
    if packet_count > parameters.chain_length:
        raise SimulationError("packet count exceeds key-chain length")
    signer = signer if signer is not None else default_signer()
    stats = stats if stats is not None else SimulationStats()
    sender = TeslaSender(parameters, signer)
    bootstrap = sender.bootstrap_packet().with_send_time(parameters.t0)
    payloads = make_payloads(packet_count, size=payload_size)
    data_packets = []
    for index, payload in enumerate(payloads):
        when = parameters.t0 + index * parameters.interval
        data_packets.append(sender.send(payload, when))
    flush = sender.flush_keys(packet_count)
    deliveries = channel.transmit([bootstrap] + data_packets + flush)
    bootstrap_delivery = next(
        (d for d in deliveries if d.packet.seq == bootstrap.seq), None)
    if bootstrap_delivery is None:
        raise SimulationError(
            "bootstrap packet lost; enable signature protection on the channel"
        )
    receiver = TeslaReceiver(bootstrap_delivery.packet, signer,
                             clock_offset=clock_offset)
    for delivery in deliveries:
        if delivery.packet.seq == bootstrap.seq:
            continue
        receiver.receive(delivery.packet,
                         delivery.arrival_time + clock_offset)
        stats.message_buffer_peak = max(stats.message_buffer_peak,
                                        receiver.pending_count)
    delivered = {d.packet.seq for d in deliveries}
    for index, packet in enumerate(data_packets):
        position = index + 1  # interval index
        received = packet.seq in delivered
        verdict = receiver.verdicts.get(packet.seq)
        verified = bool(verdict and verdict.status == "verified")
        delay = verdict.delay if verified else None
        stats.record(position, received, verified, delay)
    stats.sent += channel.sent
    stats.dropped += channel.dropped
    return stats
