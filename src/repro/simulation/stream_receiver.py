"""Application-facing receiver: ordered delivery of verified payloads.

:class:`~repro.simulation.receiver.ChainReceiver` answers "which
packets verified?"; an application wants more: *give me the verified
payloads, in order, and tell me what I definitively lost*.  This
module wraps the cascade verifier with stream semantics:

* verified payloads are released to the application strictly in
  sequence order;
* a gap (lost or never-verifiable packet) holds delivery back until
  the caller declares the gap dead — typically on a block boundary or
  a timeout — via :meth:`skip_gap` / :meth:`finish_block`;
* finished blocks are evicted from the verifier's buffers.

Signature packets with empty payloads (pure ``P_sign`` carriers) are
verified but produce no application data; delivery order skips over
them automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import Signer
from repro.packets import Packet
from repro.simulation.receiver import ChainReceiver

__all__ = ["DeliveredPayload", "StreamReceiver"]


@dataclass(frozen=True)
class DeliveredPayload:
    """One payload handed to the application."""

    seq: int
    block_id: int
    payload: bytes
    verified_time: float


class StreamReceiver:
    """In-order verified-payload delivery over a multi-block stream.

    Parameters
    ----------
    signer:
        Verifier for block signatures.
    hash_function:
        Must match the sender's.
    on_deliver:
        Optional callback invoked with each :class:`DeliveredPayload`
        as it is released (in sequence order).
    max_buffered:
        Passed through to the underlying verifier (DoS cap).
    """

    def __init__(self, signer: Signer,
                 hash_function: HashFunction = sha256,
                 on_deliver: Optional[Callable[[DeliveredPayload], None]] = None,
                 max_buffered: Optional[int] = None) -> None:
        self._verifier = ChainReceiver(signer, hash_function,
                                       max_buffered=max_buffered,
                                       on_verified=self._note_verified)
        self._on_deliver = on_deliver
        # seq -> DeliveredPayload, or None for verified data-less packets.
        self._ready: Dict[int, Optional[DeliveredPayload]] = {}
        self._next_seq = 1
        self._skipped = 0
        self.delivered: List[DeliveredPayload] = []

    # ------------------------------------------------------------------

    def _note_verified(self, packet: Packet, when: float) -> None:
        if packet.payload:
            self._ready[packet.seq] = DeliveredPayload(
                seq=packet.seq, block_id=packet.block_id,
                payload=packet.payload, verified_time=when,
            )
        else:
            self._ready[packet.seq] = None

    def receive(self, packet: Packet,
                arrival_time: float) -> List[DeliveredPayload]:
        """Process one packet; returns payloads released by this event.

        A single arrival can release a batch (e.g. the signature packet
        of a fully buffered block unlocks everything at once).
        """
        self._verifier.receive(packet, arrival_time)
        return self._release()

    def ingest_wire(self, data: bytes,
                    arrival_time: float) -> List[DeliveredPayload]:
        """Defensive counterpart of :meth:`receive` for raw wire bytes.

        Routes through
        :meth:`~repro.simulation.receiver.ChainReceiver.ingest_wire`,
        so undecodable buffers, replays and forgeries degrade the
        verifier's counters instead of the stream state; whatever the
        ingest verifies is released in order exactly like the trusting
        path.
        """
        self._verifier.ingest_wire(data, arrival_time)
        return self._release()

    # ------------------------------------------------------------------

    def _release(self) -> List[DeliveredPayload]:
        released: List[DeliveredPayload] = []
        while self._next_seq in self._ready:
            item = self._ready.pop(self._next_seq)
            self._next_seq += 1
            if item is None:
                continue  # verified signature-only packet: no app data
            released.append(item)
            self.delivered.append(item)
            if self._on_deliver is not None:
                self._on_deliver(item)
        return released

    def skip_gap(self, through_seq: int) -> List[DeliveredPayload]:
        """Declare every undelivered seq up to ``through_seq`` dead.

        Used on block boundaries or timeouts: packets in the gap can no
        longer verify (their block is gone), so in-order delivery may
        move past them.  Returns payloads released by unblocking.
        """
        if through_seq < self._next_seq:
            return []
        for seq in range(self._next_seq, through_seq + 1):
            if seq not in self._ready:
                self._skipped += 1
        released: List[DeliveredPayload] = []
        for seq in sorted(s for s in self._ready if s <= through_seq):
            item = self._ready.pop(seq)
            if item is None:
                continue
            released.append(item)
            self.delivered.append(item)
            if self._on_deliver is not None:
                self._on_deliver(item)
        self._next_seq = through_seq + 1
        released.extend(self._release())
        return released

    def finish_block(self, block_id: int, last_seq: int
                     ) -> List[DeliveredPayload]:
        """Close out a block: evict its buffers and skip its gaps."""
        self._verifier.evict_block(block_id)
        return self.skip_gap(last_seq)

    # ------------------------------------------------------------------

    @property
    def skipped(self) -> int:
        """Sequence numbers given up on (lost or never verifiable)."""
        return self._skipped

    @property
    def pending(self) -> int:
        """Verified payloads held back by an open gap."""
        return sum(1 for item in self._ready.values() if item is not None)

    @property
    def verifier(self) -> ChainReceiver:
        """The underlying cascade verifier (stats, outcomes)."""
        return self._verifier
