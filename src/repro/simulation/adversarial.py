"""Wire-level Monte Carlo under active attack.

The passive drivers in :mod:`repro.simulation.runner` measure loss
tolerance; this module measures what the paper's Sec. 2 threat model
actually demands — that a Dolev–Yao attacker who can drop, tamper,
inject, replay and reorder packets gains *nothing* beyond the loss it
inflicts.  Every scheme family gets an adversarial session runner
that:

* transmits real wire bytes through an
  :class:`~repro.faults.channel.AdversarialChannel`;
* decodes deliveries defensively (undecodable buffers are counted and
  discarded, never crash the receiver);
* tallies the usual per-position ``q_i`` statistics against the
  attacker's **ground truth** (a corrupted delivery counts as lost —
  the ``p_eff = 1 - (1-p)(1-c)`` model the adversarial conformance
  pass compares against);
* audits **soundness**: every verified sequence's authenticated
  content is compared against what the honest sender sent, and any
  mismatch increments ``stats.forged_accepted`` — which must stay 0.

Some receivers *salvage* authentic content from partially tampered
deliveries: a bit flip confined to a SAIDA packet's share or a TESLA
packet's key-disclosure field destroys that field but leaves the
payload verifiable through redundant information elsewhere in the
stream.  The tally therefore treats "received" as *delivered intact
or verified* — salvage can only push empirical ``q_i`` above the
corrupted-as-lost model, never below, and soundness is unaffected
(the verified payload is byte-identical to the genuine one).

Determinism matches the passive drivers: trial ``t`` derives its loss
RNG, attack-plan seeds and (for TESLA / the online chain) its key
material from the *global* trial index only, so attacked runs shard
across workers bit-for-bit (:func:`repro.parallel.wire
.parallel_adversarial_trials`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import SimulationError, WireDecodeError
from repro.faults.channel import AdversarialChannel, WireDelivery
from repro.faults.plan import AttackPlan
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay, DelayModel, GaussianDelay
from repro.network.loss import BernoulliLoss
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.packets import Packet, packet_from_wire
from repro.schemes.base import Scheme
from repro.schemes.rohatgi_online import OnlineChainReceiver, OnlineRohatgiScheme
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet
from repro.schemes.tesla import TeslaReceiver, TeslaScheme, TeslaSender
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.stats import SimulationStats

__all__ = ["run_adversarial_trials", "adversarial_monte_carlo"]

#: Per-trial attack-plan seed: offset then stride, both prime, disjoint
#: from every channel-RNG stride so fault and loss streams never share
#: a key at any trial index.
_ATTACK_SEED_OFFSET = 104729
_ATTACK_SEED_STRIDE = 27644437


def _default_signer() -> Signer:
    return HmacStubSigner(key=b"adversarial-wire", signature_size=128)


def _decode_deliveries(deliveries: List[WireDelivery],
                       stats: SimulationStats
                       ) -> List[Tuple[WireDelivery, Packet]]:
    """Strictly decode every delivery, counting undecodable buffers."""
    decoded = []
    for delivery in deliveries:
        try:
            packet = packet_from_wire(delivery.data)
        except WireDecodeError:
            stats.undecodable += 1
            continue
        decoded.append((delivery, packet))
    return decoded


def _intact_seqs(deliveries: List[WireDelivery]) -> Set[int]:
    """Sequences the honest channel delivered untampered."""
    return {d.seq_hint for d in deliveries if d.kind == "genuine"}


def _fold_channel(stats: SimulationStats, adv: AdversarialChannel) -> None:
    stats.sent += adv.sent
    stats.dropped += adv.dropped
    stats.corrupted += adv.corrupted
    stats.injected += adv.injected
    stats.replayed += adv.replayed


def _genuine_digests(packets: List[Packet],
                     hash_function: HashFunction) -> Dict[int, bytes]:
    return {p.seq: hash_function.digest(p.auth_bytes()) for p in packets}


# ---------------------------------------------------------------------
# Family runners (one trial each)
# ---------------------------------------------------------------------

def _chain_trial(scheme: Scheme, block_size: int, adv: AdversarialChannel,
                 signer: Signer, hash_function: HashFunction,
                 stats: SimulationStats, t_transmit: float,
                 max_buffered: Optional[int]) -> None:
    sender = StreamSender(scheme, signer, block_size, t_transmit=t_transmit,
                          hash_function=hash_function)
    packets = sender.send_block(make_payloads(block_size))
    base_seq = packets[0].seq
    receiver = ChainReceiver(signer, hash_function,
                             max_buffered=max_buffered)
    deliveries = adv.transmit_wire(packets)
    for delivery in deliveries:
        receiver.ingest_wire(delivery.data, delivery.arrival_time)
    intact = _intact_seqs(deliveries)
    genuine = _genuine_digests(packets, hash_function)
    for packet in packets:
        outcome = receiver.outcomes.get(packet.seq)
        verified = bool(outcome and outcome.verified)
        delay = outcome.delay if verified else None
        stats.record(packet.seq - base_seq + 1,
                     packet.seq in intact or verified, verified, delay)
    for seq, outcome in receiver.outcomes.items():
        if not outcome.verified:
            continue
        if receiver.accepted_digest(seq) != genuine.get(seq):
            stats.forged_accepted += 1
    stats.undecodable += receiver.undecodable
    stats.forged_rejected += receiver.forged_rejected
    stats.replays_dropped += receiver.replays_dropped
    stats.merge_buffer_peaks(receiver.message_buffer_peak,
                             receiver.hash_buffer_peak)


def _individual_trial(scheme: Scheme, block_size: int,
                      adv: AdversarialChannel, signer: Signer,
                      hash_function: HashFunction,
                      stats: SimulationStats) -> None:
    sender = StreamSender(scheme, signer, block_size,
                          hash_function=hash_function)
    packets = sender.send_block(make_payloads(block_size))
    base_seq = packets[0].seq
    deliveries = adv.transmit_wire(packets)
    genuine = _genuine_digests(packets, hash_function)
    decided: Dict[int, Tuple[bytes, bool]] = {}
    for _delivery, packet in _decode_deliveries(deliveries, stats):
        digest = hash_function.digest(packet.auth_bytes())
        previous = decided.get(packet.seq)
        if previous is not None:
            if previous[0] == digest:
                stats.replays_dropped += 1
            else:
                stats.forged_rejected += 1
            continue
        if isinstance(scheme, WongLamScheme):
            ok = verify_wong_lam_packet(packet, signer, hash_function,
                                        block_base_seq=base_seq)
        elif isinstance(scheme, SignEachScheme):
            ok = verify_sign_each_packet(packet, signer)
        else:
            raise SimulationError(
                f"no individual verifier known for {scheme.name}")
        decided[packet.seq] = (digest, ok)
        if ok:
            stats.delays.append(0.0)
            if genuine.get(packet.seq) != digest:
                stats.forged_accepted += 1
        else:
            stats.forged_rejected += 1
    intact = _intact_seqs(deliveries)
    for packet in packets:
        verdict = decided.get(packet.seq)
        verified = bool(verdict and verdict[1])
        stats.record(packet.seq - base_seq + 1,
                     packet.seq in intact or verified, verified)


def _saida_trial(scheme: SaidaScheme, block_size: int,
                 adv: AdversarialChannel, signer: Signer,
                 hash_function: HashFunction,
                 stats: SimulationStats) -> None:
    sender = StreamSender(scheme, signer, block_size,
                          hash_function=hash_function)
    packets = sender.send_block(make_payloads(block_size))
    base_seq = packets[0].seq
    receiver = SaidaReceiver(signer, hash_function)
    deliveries = adv.transmit_wire(packets)
    for delivery, packet in _decode_deliveries(deliveries, stats):
        try:
            receiver.receive(packet, delivery.arrival_time)
        except SimulationError:
            stats.forged_rejected += 1
        stats.message_buffer_peak = max(stats.message_buffer_peak,
                                        receiver.pending_count)
    intact = _intact_seqs(deliveries)
    genuine_seqs = {p.seq for p in packets}
    for packet in packets:
        verified = bool(receiver.verified.get(packet.seq))
        stats.record(packet.seq - base_seq + 1,
                     packet.seq in intact or verified, verified)
    for seq, ok in receiver.verified.items():
        if ok and seq not in genuine_seqs:
            # A verdict of True binds the payload to the signed hash
            # list, so a non-genuine sequence verifying is a forgery.
            stats.forged_accepted += 1
    stats.replays_dropped += receiver.duplicate_shares
    stats.forged_rejected += receiver.rejected_shares


def _online_trial(packets: List[Packet], keypairs, block_size: int,
                  adv: AdversarialChannel, signer: Signer,
                  hash_function: HashFunction,
                  stats: SimulationStats) -> None:
    deliveries = adv.transmit_wire(packets)
    genuine = _genuine_digests(packets, hash_function)
    # The online receiver is strictly positional, so the session layer
    # does the defending: one candidate per genuine slot (first
    # decodable delivery wins — the genuine copy precedes its
    # forgeries), out-of-range sequences rejected, slots fed in order
    # so a dead slot breaks the chain exactly like a loss.
    candidates: Dict[int, Packet] = {}
    for _delivery, packet in _decode_deliveries(deliveries, stats):
        if not 1 <= packet.seq <= block_size:
            stats.forged_rejected += 1
            continue
        previous = candidates.get(packet.seq)
        if previous is not None:
            digest = hash_function.digest(packet.auth_bytes())
            if hash_function.digest(previous.auth_bytes()) == digest:
                stats.replays_dropped += 1
            else:
                stats.forged_rejected += 1
            continue
        candidates[packet.seq] = packet
    receiver = OnlineChainReceiver(signer, keypairs)
    for seq in sorted(candidates):
        try:
            receiver.receive(candidates[seq])
        except SimulationError:
            # Tampered extra that decodes at the wire layer but not at
            # the scheme layer: the slot stays unfilled, breaking the
            # chain like a loss.
            stats.forged_rejected += 1
    intact = _intact_seqs(deliveries)
    for packet in packets:
        verified = bool(receiver.verified.get(packet.seq))
        if verified:
            digest = hash_function.digest(
                candidates[packet.seq].auth_bytes())
            if digest != genuine[packet.seq]:
                stats.forged_accepted += 1
        stats.record(packet.seq, packet.seq in intact or verified, verified)


def _tesla_trial(scheme: TeslaScheme, bootstrap: Packet,
                 data_packets: List[Packet], flush: List[Packet],
                 adv: AdversarialChannel, signer: Signer,
                 hash_function: HashFunction, clock_offset: float,
                 stats: SimulationStats) -> None:
    deliveries = adv.transmit_wire([bootstrap] + data_packets + flush)
    bootstrap_wire = bootstrap.to_wire()
    bootstrap_delivery = next(
        (d for d in deliveries
         if d.kind == "genuine" and d.seq_hint == bootstrap.seq), None)
    if bootstrap_delivery is None:
        raise SimulationError(
            "bootstrap packet lost; enable signature protection on the "
            "channel")
    # The bootstrap is signature-protected end to end (loss *and*
    # corruption), so its delivered bytes are canonical; building the
    # receiver up front mirrors the passive session, where deliveries
    # reordered ahead of the bootstrap are still processed.
    receiver = TeslaReceiver(packet_from_wire(bootstrap_delivery.data),
                             signer, clock_offset=clock_offset)
    seen_bootstrap = False
    for delivery, packet in _decode_deliveries(deliveries, stats):
        if packet.seq == bootstrap.seq:
            if delivery.data != bootstrap_wire:
                stats.forged_rejected += 1
            elif seen_bootstrap:
                stats.replays_dropped += 1
            else:
                seen_bootstrap = True
            continue
        try:
            receiver.receive(packet, delivery.arrival_time + clock_offset)
        except SimulationError:
            stats.forged_rejected += 1
        stats.message_buffer_peak = max(stats.message_buffer_peak,
                                        receiver.pending_count)
    intact = _intact_seqs(deliveries)
    genuine_seqs = {p.seq for p in data_packets}
    for index, packet in enumerate(data_packets):
        verdict = receiver.verdicts.get(packet.seq)
        verified = bool(verdict and verdict.status == "verified")
        delay = verdict.delay if verified else None
        stats.record(index + 1, packet.seq in intact or verified,
                     verified, delay)
    for seq, verdict in receiver.verdicts.items():
        if verdict.status == "verified" and seq not in genuine_seqs:
            # A verified verdict binds payload and framing to an
            # authenticated chain key via the MAC.
            stats.forged_accepted += 1
    stats.replays_dropped += receiver.replays_dropped
    stats.forged_rejected += receiver.rejected_keys


# ---------------------------------------------------------------------
# Unified driver
# ---------------------------------------------------------------------

def run_adversarial_trials(scheme: Scheme, block_size: int,
                           loss_rate: float, plan: AttackPlan,
                           first_trial: int, trial_count: int,
                           seed: int = 7,
                           delay_mean: float = 0.0, delay_std: float = 0.0,
                           clock_offset: float = 0.0,
                           t_transmit: float = 0.01,
                           hash_function: HashFunction = sha256,
                           signer: Optional[Signer] = None,
                           max_buffered: Optional[int] = None,
                           channel_factory: Optional[
                               Callable[[int], Channel]] = None
                           ) -> SimulationStats:
    """Run attacked trials ``first_trial .. first_trial+trial_count-1``.

    The adversarial counterpart of
    :func:`repro.simulation.runner.run_wire_trials`, covering *every*
    scheme family (chained, individually verifiable, SAIDA, TESLA and
    the online chain) with the defensive session runners above.  Trial
    indices are global: trial ``t``'s loss RNG, attack-plan reseed and
    scheme key material depend only on ``seed`` and ``t``, so any
    contiguous partition merges back to the serial result exactly.

    ``delay_mean`` / ``delay_std`` apply to TESLA only (its analytic
    ``q_i`` depends on the delay model); other schemes use a zero-delay
    channel like the passive conformance runs.

    ``channel_factory`` overrides the inner (pre-attack) channel:
    called with the global trial index, it must return a fresh
    :class:`~repro.network.channel.Channel` — the hook topology
    conformance uses to run the whole attacked matrix over correlated
    link loss.  The attack-plan reseed schedule is unchanged.
    """
    if trial_count < 0:
        raise SimulationError(f"trial count must be >= 0, got {trial_count}")
    if first_trial < 0:
        raise SimulationError(f"first trial must be >= 0, got {first_trial}")
    if block_size < 1:
        raise SimulationError(f"need >= 1 packet per block, got {block_size}")
    signer = signer if signer is not None else _default_signer()
    stats = SimulationStats()

    is_tesla = isinstance(scheme, TeslaScheme)
    is_online = isinstance(scheme, OnlineRohatgiScheme)
    bootstrap = data_packets = flush = None
    online_packets = keypairs = None
    if is_tesla:
        parameters = scheme.parameters
        if block_size > parameters.chain_length:
            raise SimulationError("packet count exceeds key-chain length")
        chain_seed = b"adv-tesla-%d" % seed
        sender = TeslaSender(parameters, signer, seed=chain_seed)
        bootstrap = sender.bootstrap_packet().with_send_time(parameters.t0)
        payloads = make_payloads(block_size)
        data_packets = []
        for index, payload in enumerate(payloads):
            when = parameters.t0 + index * parameters.interval
            data_packets.append(sender.send(payload, when))
        flush = sender.flush_keys(block_size)
    elif is_online:
        if scheme.seed is None:
            # Worker-independent key material: every shard must derive
            # the identical packet stream.
            scheme = OnlineRohatgiScheme(seed=b"adv-online-%d" % seed)
        online_packets = scheme.make_block(make_payloads(block_size), signer)
        keypairs = scheme._last_keypairs

    with span("wire.adversarial_trials"):
        for trial in range(first_trial, first_trial + trial_count):
            if channel_factory is not None:
                inner = channel_factory(trial)
            else:
                if is_tesla:
                    loss = BernoulliLoss(loss_rate,
                                         seed=seed + trial * 104729)
                    if delay_std > 0 or delay_mean > 0:
                        delay: DelayModel = GaussianDelay(
                            delay_mean, delay_std,
                            seed=seed + trial * 1299709)
                    else:
                        delay = ConstantDelay(0.0)
                else:
                    loss = BernoulliLoss(loss_rate, seed=seed + trial * 7919)
                    delay = ConstantDelay(0.0)
                inner = Channel(loss=loss, delay=delay)
            plan.reseed(seed + _ATTACK_SEED_OFFSET
                        + trial * _ATTACK_SEED_STRIDE)
            adv = AdversarialChannel(inner, plan)
            if is_tesla:
                _tesla_trial(scheme, bootstrap, data_packets, flush, adv,
                             signer, hash_function, clock_offset, stats)
            elif is_online:
                _online_trial(online_packets, keypairs, block_size, adv,
                              signer, hash_function, stats)
            elif isinstance(scheme, SaidaScheme):
                _saida_trial(scheme, block_size, adv, signer, hash_function,
                             stats)
            elif scheme.individually_verifiable:
                _individual_trial(scheme, block_size, adv, signer,
                                  hash_function, stats)
            else:
                _chain_trial(scheme, block_size, adv, signer, hash_function,
                             stats, t_transmit, max_buffered)
            _fold_channel(stats, adv)
    registry = get_registry()
    if registry.enabled:
        registry.count("wire.adversarial_trials", trial_count)
        registry.count("wire.packets_sent", stats.sent)
        registry.count("wire.packets_dropped", stats.dropped)
        registry.count("wire.packets_corrupted", stats.corrupted)
        registry.count("wire.packets_injected", stats.injected)
        registry.count("wire.packets_replayed", stats.replayed)
        registry.count("wire.packets_undecodable", stats.undecodable)
        registry.count("wire.packets_forged_rejected", stats.forged_rejected)
        registry.count("wire.replays_dropped", stats.replays_dropped)
        registry.count("wire.packets_forged_accepted", stats.forged_accepted)
        registry.count("wire.packets_verified",
                       sum(t.verified for t in stats.tallies.values()))
    return stats


def adversarial_monte_carlo(scheme: Scheme, block_size: int,
                            loss_rate: float, plan: AttackPlan,
                            trials: int, seed: int = 7,
                            **kwargs) -> SimulationStats:
    """Aggregate ``trials`` attacked sessions (serial convenience)."""
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    return run_adversarial_trials(scheme, block_size, loss_rate, plan,
                                  0, trials, seed=seed, **kwargs)
