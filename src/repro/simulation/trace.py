"""Session traces: record and replay delivery sequences.

Debugging a verification anomaly means reproducing the exact loss and
reordering pattern that triggered it.  A :class:`SessionTrace` records
every delivery of a run as JSON lines (packet bytes hex-encoded, so
the trace is self-contained and diffable), and replays it into any
receiver later — deterministically, with no RNG in sight.

Traces also serve as golden files: a recorded session pins both the
wire format and the verification semantics; if either changes
incompatibly, replaying an old trace fails loudly.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, TextIO, Union

from repro.exceptions import SimulationError
from repro.network.channel import Delivery
from repro.packets import Packet, packet_from_wire

__all__ = ["TraceRecord", "SessionTrace"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceRecord:
    """One delivery event: arrival time plus the full packet bytes."""

    arrival_time: float
    packet: Packet

    def to_json(self) -> str:
        return json.dumps({
            "t": self.arrival_time,
            "wire": self.packet.to_wire().hex(),
        })

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        try:
            payload = json.loads(line)
            return cls(arrival_time=float(payload["t"]),
                       packet=packet_from_wire(bytes.fromhex(payload["wire"])))
        except (KeyError, ValueError, TypeError) as exc:
            raise SimulationError(f"malformed trace line: {exc}") from exc


class SessionTrace:
    """An ordered list of deliveries with (de)serialization.

    Build one by recording deliveries (:meth:`record` /
    :meth:`record_all`), persist with :meth:`dump`, restore with
    :meth:`load`, feed into a receiver with :meth:`replay`.
    """

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self.records: List[TraceRecord] = list(records)

    # ------------------------------------------------------------------

    def record(self, delivery: Delivery) -> None:
        """Append one channel delivery."""
        self.records.append(TraceRecord(arrival_time=delivery.arrival_time,
                                        packet=delivery.packet))

    def record_all(self, deliveries: Iterable[Delivery]) -> None:
        """Append a whole transmit() result."""
        for delivery in deliveries:
            self.record(delivery)

    # ------------------------------------------------------------------

    def dump(self, sink: Union[str, TextIO]) -> None:
        """Write the trace as JSON lines to a path or text stream."""
        if isinstance(sink, str):
            with open(sink, "w", encoding="utf-8") as handle:
                self._write(handle)
        else:
            self._write(sink)

    def _write(self, handle: TextIO) -> None:
        handle.write(json.dumps({"format": _FORMAT_VERSION,
                                 "records": len(self.records)}) + "\n")
        for record in self.records:
            handle.write(record.to_json() + "\n")

    @classmethod
    def load(cls, source: Union[str, TextIO]) -> "SessionTrace":
        """Read a trace written by :meth:`dump`."""
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls._read(handle)
        return cls._read(source)

    @classmethod
    def _read(cls, handle: TextIO) -> "SessionTrace":
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
            version = header["format"]
        except (ValueError, KeyError) as exc:
            raise SimulationError("trace missing header line") from exc
        if version != _FORMAT_VERSION:
            raise SimulationError(f"unsupported trace format {version}")
        records = [TraceRecord.from_json(line)
                   for line in handle if line.strip()]
        if len(records) != header.get("records", len(records)):
            raise SimulationError(
                f"trace truncated: header says {header['records']}, "
                f"found {len(records)}"
            )
        return cls(records)

    # ------------------------------------------------------------------

    def replay(self, receive: Callable[[Packet, float], object]) -> int:
        """Feed every record to ``receive(packet, arrival_time)``.

        Returns the number of deliveries replayed.  Works with any
        receiver exposing the standard ``receive`` signature
        (:class:`~repro.simulation.receiver.ChainReceiver`,
        :class:`~repro.simulation.stream_receiver.StreamReceiver`,
        :class:`~repro.schemes.tesla.TeslaReceiver`, ...).
        """
        for record in self.records:
            receive(record.packet, record.arrival_time)
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SessionTrace):
            return NotImplemented
        return self.records == other.records

    def to_string(self) -> str:
        """The full serialized form (handy for golden-file tests)."""
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()
