"""Packet-level simulation: senders, receivers, channels, statistics."""

from repro.simulation.multicast import (
    MulticastResult,
    ReceiverSpec,
    run_multicast_session,
)
from repro.simulation.receiver import ChainReceiver, PacketOutcome
from repro.simulation.runner import (
    WireTrialConfig,
    tesla_monte_carlo,
    wire_monte_carlo,
)
from repro.simulation.sender import (
    StreamSender,
    make_payloads,
    replicate_signature_packets,
)
from repro.simulation.session import (
    run_chain_session,
    run_individual_session,
    run_saida_session,
    run_tesla_session,
)
from repro.simulation.stats import PositionTally, SimulationStats
from repro.simulation.stream_receiver import DeliveredPayload, StreamReceiver
from repro.simulation.trace import SessionTrace, TraceRecord

__all__ = [
    "MulticastResult",
    "ReceiverSpec",
    "run_multicast_session",
    "ChainReceiver",
    "PacketOutcome",
    "WireTrialConfig",
    "tesla_monte_carlo",
    "wire_monte_carlo",
    "StreamSender",
    "make_payloads",
    "run_chain_session",
    "run_individual_session",
    "run_saida_session",
    "run_tesla_session",
    "PositionTally",
    "SimulationStats",
    "DeliveredPayload",
    "StreamReceiver",
    "SessionTrace",
    "TraceRecord",
    "replicate_signature_packets",
]
