"""Concrete adversarial fault models.

Each model owns a private :mod:`random` RNG seeded at construction and
re-keyed through :meth:`FaultModel.reseed` — the exact idiom of
:class:`~repro.network.loss.LossModel` — so an attacked trial's fault
stream depends only on the seed derived from the trial's *global*
index, never on which worker runs it.

A model participates in an attack through four hooks, all optional
(the base class no-ops them):

``corrupt(wire)``
    Return tampered bytes for this delivery, or ``None`` to pass it
    through.  Called once per delivery in send order, like
    :meth:`~repro.network.loss.LossModel.is_lost`; models that corrupt
    with probability ``rate`` must expose it as :attr:`corruption_rate`
    so the analysis can compute the effective loss rate.
``forge(packet)``
    ``(arrival_offset, wire)`` pairs of injected packets crafted from
    an observed genuine packet (the Dolev-Yao eavesdropper reacts to
    traffic it sees, so offsets are strictly positive: the genuine
    copy always lands first).
``replay(wire)``
    Positive arrival offsets at which to duplicate the delivered bytes.
``jitter()``
    Extra non-negative delay for this delivery (reordering pressure).
"""

from __future__ import annotations

import random
from abc import ABC
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.crypto.batch import BatchAttachment, encode_batch_attachment
from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.merkle import MerkleTree
from repro.exceptions import SimulationError
from repro.packets import WIRE_HEADER_SIZE, Packet

__all__ = [
    "FaultModel",
    "BitFlipCorruption",
    "TruncationCorruption",
    "ForgedInjection",
    "ReplayDuplication",
    "ReorderJitter",
    "BatchRootForgery",
    "BootstrapBurstForgery",
]

#: Sequence-number displacement for non-colliding forged packets: far
#: above any simulated stream, below the 32-bit wire cap.
FRESH_SEQ_OFFSET = 1 << 20


def _check_rate(rate: float, what: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise SimulationError(f"{what} must be in [0, 1], got {rate}")
    return rate


class FaultModel(ABC):
    """One adversarial action stream; see the module docstring."""

    _rng: random.Random

    def reset(self) -> None:
        """Return to the initial RNG state (new trial)."""
        self._rng = random.Random(getattr(self, "_seed", None))

    def reseed(self, seed: Optional[int]) -> None:
        """Re-key the model's private RNG, then :meth:`reset`.

        Mirrors :meth:`repro.network.loss.LossModel.reseed`: attacked
        Monte-Carlo drivers pin per-trial fault randomness with it.
        """
        if hasattr(self, "_seed"):
            self._seed = seed
        self.reset()

    # -- hooks, all optional ------------------------------------------------

    def corrupt(self, wire: bytes) -> Optional[bytes]:
        """Tampered bytes for this delivery, or ``None`` to pass through."""
        return None

    def forge(self, packet: Packet) -> List[Tuple[float, bytes]]:
        """``(arrival_offset, wire)`` pairs of packets to inject."""
        return []

    def replay(self, wire: bytes) -> List[float]:
        """Positive arrival offsets at which to duplicate ``wire``."""
        return []

    def jitter(self) -> float:
        """Extra non-negative delay for this delivery."""
        return 0.0

    @property
    def corruption_rate(self) -> float:
        """Per-delivery probability that :meth:`corrupt` tampers.

        Drives the effective-loss model ``p_eff = 1 - (1-p)(1-c)``;
        models that never corrupt report 0.
        """
        return 0.0


class BitFlipCorruption(FaultModel):
    """Flip random bits in the authenticated region of the wire bytes.

    Flips land at byte offsets ``>= WIRE_HEADER_SIZE`` — the region
    covered by :meth:`~repro.packets.Packet.auth_bytes` plus the
    signature blob — so a corrupted packet either fails to decode or
    decodes to content that can never verify.  (Flips in the
    *unauthenticated* header would produce a packet that still
    verifies, which is delay tampering, not corruption — model that
    with :class:`ReorderJitter` instead.)
    """

    def __init__(self, rate: float, max_flips: int = 3,
                 seed: Optional[int] = None) -> None:
        self.rate = _check_rate(rate, "bit-flip rate")
        if max_flips < 1:
            raise SimulationError(f"max_flips must be >= 1, got {max_flips}")
        self.max_flips = max_flips
        self._seed = seed
        self.reset()

    def corrupt(self, wire: bytes) -> Optional[bytes]:
        if self._rng.random() >= self.rate:
            return None
        span = len(wire) - WIRE_HEADER_SIZE
        if span <= 0:
            return None  # header-only buffer: nothing authenticated to flip
        mutated = bytearray(wire)
        for _ in range(self._rng.randint(1, self.max_flips)):
            bit = self._rng.randrange(span * 8)
            mutated[WIRE_HEADER_SIZE + bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)

    @property
    def corruption_rate(self) -> float:
        return self.rate


class TruncationCorruption(FaultModel):
    """Cut a delivery short at a random point.

    Any strict prefix of a canonical wire buffer is undecodable (some
    declared length always runs past the cut), so truncated packets
    are counted-and-discarded — behaviourally a loss.
    """

    def __init__(self, rate: float, seed: Optional[int] = None) -> None:
        self.rate = _check_rate(rate, "truncation rate")
        self._seed = seed
        self.reset()

    def corrupt(self, wire: bytes) -> Optional[bytes]:
        if self._rng.random() >= self.rate:
            return None
        return wire[:self._rng.randrange(len(wire))] if wire else None

    @property
    def corruption_rate(self) -> float:
        return self.rate


class ForgedInjection(FaultModel):
    """Inject syntactically valid packets with wrong content.

    The forged packet clones an observed genuine packet's framing
    (sequence, block, carried hashes, extra, signature bytes) but
    swaps the payload, so it decodes cleanly and presents plausible
    authentication data that can never verify — hashes and signatures
    cover the payload it no longer has.  With ``collide=True`` the
    forgery reuses the genuine sequence number (slot-stealing /
    trust-pollution pressure); otherwise it claims a fresh sequence
    far outside the stream (blind spam).  Injections arrive a strictly
    positive ``epsilon``-scaled offset after the genuine delivery: the
    eavesdropper reacts to traffic, it does not precede it.
    """

    def __init__(self, rate: float, collide: bool = True,
                 epsilon: float = 1e-6,
                 seed: Optional[int] = None) -> None:
        self.rate = _check_rate(rate, "injection rate")
        if epsilon <= 0:
            raise SimulationError(f"epsilon must be > 0, got {epsilon}")
        self.collide = collide
        self.epsilon = epsilon
        self._seed = seed
        self.reset()

    def forge(self, packet: Packet) -> List[Tuple[float, bytes]]:
        if self._rng.random() >= self.rate:
            return []
        seq = packet.seq if self.collide else packet.seq + FRESH_SEQ_OFFSET
        payload = b"forged:" + self._rng.getrandbits(64).to_bytes(8, "big")
        forged = replace(packet, seq=seq, payload=payload)
        offset = self.epsilon * (1.0 + self._rng.random())
        return [(offset, forged.to_wire())]


class ReplayDuplication(FaultModel):
    """Re-deliver a copy of the observed bytes a short while later."""

    def __init__(self, rate: float, min_delay: float = 1e-3,
                 max_delay: float = 5e-2, copies: int = 1,
                 seed: Optional[int] = None) -> None:
        self.rate = _check_rate(rate, "replay rate")
        if not 0 < min_delay <= max_delay:
            raise SimulationError(
                f"need 0 < min_delay <= max_delay, got "
                f"[{min_delay}, {max_delay}]")
        if copies < 1:
            raise SimulationError(f"copies must be >= 1, got {copies}")
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.copies = copies
        self._seed = seed
        self.reset()

    def replay(self, wire: bytes) -> List[float]:
        if self._rng.random() >= self.rate:
            return []
        return [self._rng.uniform(self.min_delay, self.max_delay)
                for _ in range(self.copies)]


class BatchRootForgery(FaultModel):
    """Forge a batch-signed packet with a perfectly consistent proof.

    The strongest attack the batch construction admits short of
    breaking the signature itself: the forged copy swaps the payload
    of an observed signature packet, then carries a *structurally
    valid* batch attachment built over the forged packet's own
    authentication bytes — the strict decode succeeds and the Merkle
    walk reproduces the attacker's root exactly.  The only check left
    standing between the forgery and acceptance is the root-signature
    verification, which must fail because the attacker cannot sign the
    domain-separated root.  A receiver that skipped or cached that
    check wrongly would accept, and the conformance suite's
    ``forged_accepted == 0`` gate would trip.
    """

    def __init__(self, rate: float, batch_size: int = 8,
                 signature_size: int = 128, epsilon: float = 1e-6,
                 hash_function: HashFunction = sha256,
                 seed: Optional[int] = None) -> None:
        self.rate = _check_rate(rate, "batch-root forgery rate")
        if batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {batch_size}")
        if signature_size < 1:
            raise SimulationError(
                f"signature_size must be >= 1, got {signature_size}")
        if epsilon <= 0:
            raise SimulationError(f"epsilon must be > 0, got {epsilon}")
        self.batch_size = batch_size
        self.signature_size = signature_size
        self.epsilon = epsilon
        self.hash_function = hash_function
        self._seed = seed
        self.reset()

    def forge(self, packet: Packet) -> List[Tuple[float, bytes]]:
        if packet.signature is None:
            return []  # only signature packets carry a root to forge
        if self._rng.random() >= self.rate:
            return []
        payload = (b"forged-root:"
                   + self._rng.getrandbits(64).to_bytes(8, "big"))
        forged = replace(packet, payload=payload, signature=b"")
        leaf = forged.auth_bytes()
        position = self._rng.randrange(self.batch_size)
        leaves = [
            self._rng.getrandbits(256).to_bytes(32, "big")
            for _ in range(self.batch_size - 1)
        ]
        leaves.insert(position, leaf)
        tree = MerkleTree(leaves, self.hash_function)
        fake_signature = bytes(self._rng.getrandbits(8)
                               for _ in range(self.signature_size))
        attachment = encode_batch_attachment(BatchAttachment(
            leaf_index=position, leaf_count=self.batch_size,
            proof=tree.proof(position), root_signature=fake_signature))
        forged = replace(forged, signature=attachment)
        offset = self.epsilon * (1.0 + self._rng.random())
        return [(offset, forged.to_wire())]


class BootstrapBurstForgery(FaultModel):
    """Forged-injection burst timed at a receiver's bootstrap window.

    The churn-storm adversary races a late joiner's first deliveries:
    before the receiver has anchored any trust state (a verified
    signed root, an authenticated TESLA key), forged packets are
    cheapest to slip in.  The first ``window`` genuine deliveries
    observed after a :meth:`~FaultModel.reset` are forged with the
    high ``burst_rate``; afterwards the model settles to ``tail_rate``
    (0 by default — a pure transition attack).

    Placement comes entirely from the reseed discipline: the serve
    layer reseeds plans per (receiver, block), so a plan armed on a
    joiner's join block bursts exactly inside its bootstrap window;
    the conformance harness reseeds per trial, so *every* trial opens
    with a bootstrap-shaped burst — each attacked block is a fresh
    join race.  Forgeries clone the observed packet's framing and
    collide on its sequence number (slot-stealing pressure), exactly
    like :class:`ForgedInjection`, and never corrupt — the
    ``corruption_rate`` stays 0 so the effective-loss model is
    untouched.
    """

    def __init__(self, burst_rate: float = 0.5, window: int = 8,
                 tail_rate: float = 0.0, collide: bool = True,
                 epsilon: float = 1e-6, seed: Optional[int] = None) -> None:
        self.burst_rate = _check_rate(burst_rate, "burst rate")
        self.tail_rate = _check_rate(tail_rate, "tail rate")
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        if epsilon <= 0:
            raise SimulationError(f"epsilon must be > 0, got {epsilon}")
        self.window = window
        self.collide = collide
        self.epsilon = epsilon
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        """Rewind the RNG *and* reopen the bootstrap window."""
        super().reset()
        self._observed = 0

    def forge(self, packet: Packet) -> List[Tuple[float, bytes]]:
        rate = (self.burst_rate if self._observed < self.window
                else self.tail_rate)
        self._observed += 1
        if self._rng.random() >= rate:
            return []
        seq = packet.seq if self.collide else packet.seq + FRESH_SEQ_OFFSET
        payload = b"storm:" + self._rng.getrandbits(64).to_bytes(8, "big")
        forged = replace(packet, seq=seq, payload=payload)
        offset = self.epsilon * (1.0 + self._rng.random())
        return [(offset, forged.to_wire())]


class ReorderJitter(FaultModel):
    """Hold every delivery back by a uniform random extra delay.

    Arrival order is perturbed without touching content — the paper's
    "reorder" capability in isolation.  Schemes whose analysis assumes
    in-order or timely arrival (TESLA's Eq. 6 delay term) see their
    completeness model shift under this fault; soundness must hold
    regardless.
    """

    def __init__(self, width: float, seed: Optional[int] = None) -> None:
        if width < 0:
            raise SimulationError(f"jitter width must be >= 0, got {width}")
        self.width = width
        self._seed = seed
        self.reset()

    def jitter(self) -> float:
        return self._rng.random() * self.width
