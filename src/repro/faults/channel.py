"""The adversarial channel: wire-level deliveries under active attack.

:class:`AdversarialChannel` wraps any
:class:`~repro.network.channel.Channel` and degrades its packet
deliveries into **byte buffers** — the honest channel decides loss and
delay exactly as before (so the passive statistics are unchanged),
then the attack plan gets one shot at every surviving delivery: add
reorder jitter, tamper the bytes, inject forged packets crafted from
what it observed, and replay copies.  Receivers downstream see only
:class:`WireDelivery` blobs and must decode them defensively
(:meth:`~repro.simulation.receiver.ChainReceiver.ingest_wire`).

Determinism: deliveries are processed in the honest channel's arrival
order and fault models are consulted in plan order, so the byte stream
depends only on the channel and plan seeds — attacked trials shard
across workers bit-for-bit like passive ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.faults.plan import AttackPlan
from repro.network.channel import Channel
from repro.packets import Packet

__all__ = ["WireDelivery", "AdversarialChannel", "ATTACK_KINDS"]

#: Ground-truth kinds that mark adversarial interference; lifecycle
#: tracing turns them into attack-tag attributes on transport events.
ATTACK_KINDS = ("corrupted", "forged", "replayed")


@dataclass(frozen=True)
class WireDelivery:
    """One byte buffer arriving at the receiver.

    ``kind`` labels the adversary's ground truth — ``"genuine"``
    (untampered original), ``"corrupted"``, ``"forged"`` (injected) or
    ``"replayed"`` — which attacked sessions use for soundness
    accounting.  Receivers must never look at it.  ``seq_hint`` is the
    originating packet's sequence number (``None`` for injections) and
    ``block_hint`` the originating packet's block id; ground-truth
    bookkeeping and lifecycle-trace attribution only, for the same
    reason.
    """

    arrival_time: float
    data: bytes
    kind: str
    seq_hint: Optional[int] = None
    block_hint: Optional[int] = None

    @property
    def attack_tag(self) -> Optional[str]:
        """The kind when it marks adversarial interference, else None."""
        return self.kind if self.kind in ATTACK_KINDS else None


class AdversarialChannel:
    """A lossy channel with an active attacker on the path.

    Parameters
    ----------
    channel:
        The honest loss/delay channel being attacked.  Its
        ``protect_signature_packets`` setting extends to corruption:
        a retransmit-until-received ``P_sign`` cannot be kept
        corrupted either, so corruption of protected packets is
        skipped with the RNG still advanced (the skip-with-draw idiom
        the loss models use).  Injection and replay are unaffected —
        the attacker can always add packets.
    plan:
        The fault models to apply, in order.
    """

    def __init__(self, channel: Channel, plan: AttackPlan) -> None:
        self.channel = channel
        self.plan = plan
        self.corrupted = 0
        self.injected = 0
        self.replayed = 0

    def transmit_wire(self, packets: Iterable[Packet]) -> List[WireDelivery]:
        """Send ``packets``; return attacked wire deliveries in arrival order.

        Ties on arrival time are broken by staging order (genuine
        before its own injections/replays, earlier deliveries first),
        keeping the stream deterministic.
        """
        staged: List[tuple] = []

        def stage(arrival: float, data: bytes, kind: str,
                  seq_hint: Optional[int], block_hint: Optional[int]) -> None:
            staged.append((arrival, len(staged), data, kind, seq_hint,
                           block_hint))

        for delivery in self.channel.transmit(packets):
            packet = delivery.packet
            protected = (self.channel.protect_signature_packets
                         and packet.is_signature_packet)
            arrival = delivery.arrival_time
            for fault in self.plan.faults:
                arrival += fault.jitter()
            wire = packet.to_wire()
            tampered = False
            for fault in self.plan.faults:
                mutated = fault.corrupt(wire)
                if protected:
                    continue  # drawn but discarded, like protected loss
                if mutated is not None and mutated != wire:
                    wire = mutated
                    tampered = True
            if tampered:
                self.corrupted += 1
            stage(arrival, wire, "corrupted" if tampered else "genuine",
                  packet.seq, packet.block_id)
            for fault in self.plan.faults:
                for offset, forged_wire in fault.forge(packet):
                    self.injected += 1
                    stage(arrival + offset, forged_wire, "forged", None,
                          packet.block_id)
                for offset in fault.replay(wire):
                    self.replayed += 1
                    stage(arrival + offset, wire, "replayed", packet.seq,
                          packet.block_id)
        staged.sort(key=lambda item: (item[0], item[1]))
        return [WireDelivery(arrival_time=arrival, data=data, kind=kind,
                             seq_hint=seq_hint, block_hint=block_hint)
                for arrival, _, data, kind, seq_hint, block_hint in staged]

    def reset(self) -> None:
        """New trial: reset the channel, the plan and the counters."""
        self.channel.reset()
        self.plan.reset()
        self.corrupted = 0
        self.injected = 0
        self.replayed = 0

    @property
    def sent(self) -> int:
        """Packets the honest sender transmitted."""
        return self.channel.sent

    @property
    def dropped(self) -> int:
        """Packets the honest channel lost (not counting corruption)."""
        return self.channel.dropped
