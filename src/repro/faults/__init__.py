"""``repro.faults`` — deterministic adversarial fault injection.

The paper's Sec. 2 threat model gives the attacker "full control of
the network": dropping, modifying, injecting and reordering packets.
The passive half (dropping) is :mod:`repro.network.loss`; this package
supplies the active half as a composable layer over any existing
:class:`~repro.network.channel.Channel`:

* :mod:`repro.faults.models` — the :class:`FaultModel` interface and
  the concrete attacks (:class:`BitFlipCorruption`,
  :class:`TruncationCorruption`, :class:`ForgedInjection`,
  :class:`ReplayDuplication`, :class:`ReorderJitter`), each owning a
  private RNG with the :meth:`~repro.network.loss.LossModel.reseed`
  idiom so attacked Monte-Carlo runs shard deterministically;
* :mod:`repro.faults.plan` — :class:`AttackPlan`, an ordered bundle
  of fault models with one-seed derivation and the composed
  corruption rate the effective-loss analysis needs;
* :mod:`repro.faults.channel` — :class:`AdversarialChannel`, wrapping
  a channel's deliveries into tampered/injected/replayed *wire bytes*
  (:class:`WireDelivery`), the Dolev-Yao eavesdrop-and-inject point.

The CLI's ``--attack`` flag parks its mix names here
(:func:`set_default_attack` / :func:`get_default_attack`) for the
``ext-adversarial`` experiment to pick up, mirroring how
``--workers`` flows through :mod:`repro.parallel`.
"""

from typing import List, Optional, Sequence

from repro.exceptions import AnalysisError
from repro.faults.channel import (ATTACK_KINDS, AdversarialChannel,
                                  WireDelivery)
from repro.faults.models import (
    BatchRootForgery,
    BitFlipCorruption,
    BootstrapBurstForgery,
    FaultModel,
    ForgedInjection,
    ReorderJitter,
    ReplayDuplication,
    TruncationCorruption,
)
from repro.faults.plan import AttackPlan

__all__ = [
    "FaultModel",
    "BatchRootForgery",
    "BitFlipCorruption",
    "BootstrapBurstForgery",
    "TruncationCorruption",
    "ForgedInjection",
    "ReplayDuplication",
    "ReorderJitter",
    "AttackPlan",
    "AdversarialChannel",
    "WireDelivery",
    "ATTACK_KINDS",
    "set_default_attack",
    "get_default_attack",
    "KNOWN_ATTACK_MIXES",
]

#: Attack-mix names the conformance layer knows how to build; the CLI
#: validates ``--attack`` against this list without importing the
#: (heavier) analysis package.  ``storm`` is the churn-storm mix:
#: light corruption plus :class:`BootstrapBurstForgery` bursts timed
#: at bootstrap windows (the membership event stream itself lives in
#: :mod:`repro.faults.churn`, kept out of this namespace because it
#: pulls in :mod:`repro.parallel` for its seed tree).
KNOWN_ATTACK_MIXES = ("pollution", "dos", "storm")

_default_attack: Optional[List[str]] = None


def set_default_attack(mixes: Optional[Sequence[str]]) -> None:
    """Set the process-wide attack mixes (the CLI's ``--attack`` flag)."""
    global _default_attack
    if mixes is None:
        _default_attack = None
        return
    resolved = [str(m) for m in mixes]
    unknown = [m for m in resolved if m not in KNOWN_ATTACK_MIXES]
    if unknown:
        raise AnalysisError(
            f"unknown attack mixes: {', '.join(unknown)} "
            f"(known: {', '.join(KNOWN_ATTACK_MIXES)})")
    _default_attack = resolved


def get_default_attack() -> Optional[List[str]]:
    """The attack mixes set via :func:`set_default_attack`, if any."""
    if _default_attack is None:
        return None
    return list(_default_attack)
