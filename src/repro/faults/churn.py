"""Churn-storm fault injection: deterministic membership event streams.

The passive and active faults in this package attack *packets*; churn
attacks the **membership protocol** — join floods, join/leave
flapping, and crashes timed against block boundaries.  This module is
the pure generator half: :func:`churn_storm` draws a Poisson-like
join/leave/crash event stream for a whole session from the same
deterministic seed tree the Monte-Carlo shards use
(:func:`repro.parallel.seeds.spawn_seed_tree` — one child sequence
per block, so the stream for block ``b`` never depends on how many
events earlier blocks drew).  Events name abstract *member indices*;
binding indices to receiver identities, validating protocol
invariants and executing the events mid-session is the serve layer's
job (:mod:`repro.serve.membership`).

The packet-level half of the storm — forged bursts timed exactly at
bootstrap windows — is :class:`repro.faults.models.\
BootstrapBurstForgery`, composed into the ``storm`` attack mix by
:func:`repro.analysis.conformance.attack_mix`.

This module deliberately imports nothing from :mod:`repro.serve`, so
the fault layer stays usable from the offline trial runners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.exceptions import SimulationError
from repro.parallel.seeds import spawn_seed_tree

__all__ = ["ChurnEvent", "churn_storm"]

#: Event kinds, in the order they apply at a block boundary: graceful
#: leaves release barrier slots before joins claim new ones, and
#: crashes strike *after* the block is on the wire.
CHURN_KINDS = ("leave", "join", "crash")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership transition, at block-boundary granularity.

    ``member`` is a stable universe index: initial members occupy
    ``0 .. initial-1``, joinable spares follow.  ``join`` and
    ``leave`` apply at the boundary *before* ``block`` streams;
    ``crash`` strikes after ``block`` is on the wire but before the
    member processes it — the mid-block failure mode.
    """

    block: int
    kind: str
    member: int

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise SimulationError(
                f"unknown churn kind {self.kind!r} "
                f"(known: {', '.join(CHURN_KINDS)})")
        if self.block < 1:
            raise SimulationError(
                f"churn events start at block 1, got block {self.block}")
        if self.member < 0:
            raise SimulationError(
                f"member index must be >= 0, got {self.member}")


def churn_storm(seed: int, initial: int, spare: int, blocks: int,
                join_rate: float = 0.5, leave_rate: float = 0.25,
                crash_rate: float = 0.125, flappers: int = 0,
                flood_block: Optional[int] = None) -> List[ChurnEvent]:
    """Draw one deterministic churn storm for a session.

    Per block ``b >= 1`` a dedicated seed-tree child drives three
    Poisson draws: joins (capped by the remaining spare pool), then
    graceful leaves, then crashes — departures are capped so at least
    one member always survives.  Victims are drawn without
    replacement from the sorted active set, so the event stream is a
    pure function of ``(seed, initial, spare, blocks, rates)``.

    ``flappers`` reserves the first spare indices for a staggered
    join-then-leave wave (flapper ``k`` joins at block ``1 + k`` and
    leaves one block later) — the one-block membership that stresses
    bootstrap/teardown back to back.  ``flood_block`` joins the whole
    remaining spare pool at once on that block (the join-flood case).

    Every member joins at most once and departs at most once; the
    serve layer's plan validation relies on that.
    """
    if initial < 1:
        raise SimulationError(f"need >= 1 initial member, got {initial}")
    if spare < 0:
        raise SimulationError(f"spare pool must be >= 0, got {spare}")
    if blocks < 1:
        raise SimulationError(f"need >= 1 block, got {blocks}")
    for name, rate in (("join_rate", join_rate), ("leave_rate", leave_rate),
                       ("crash_rate", crash_rate)):
        if rate < 0:
            raise SimulationError(f"{name} must be >= 0, got {rate}")
    if not 0 <= flappers <= spare:
        raise SimulationError(
            f"flappers must be in [0, spare={spare}], got {flappers}")
    if flood_block is not None and not 1 <= flood_block < blocks:
        raise SimulationError(
            f"flood_block must be in [1, {blocks - 1}], got {flood_block}")

    events: List[ChurnEvent] = []
    active: Set[int] = set(range(initial))
    pool: List[int] = list(range(initial + flappers, initial + spare))
    departed: Set[int] = set()

    # Deterministic flapper wave, no RNG: one-block memberships.
    flap_leaves: dict = {}
    for k in range(flappers):
        member = initial + k
        join_at = 1 + k
        if join_at >= blocks:
            break
        events.append(ChurnEvent(join_at, "join", member))
        if join_at + 1 < blocks:
            flap_leaves.setdefault(join_at + 1, []).append(member)

    tree = spawn_seed_tree(seed, blocks)
    for block in range(1, blocks):
        joined_now: Set[int] = set()
        for member in flap_leaves.get(block, ()):
            events.append(ChurnEvent(block, "leave", member))
            departed.add(member)
        rng = np.random.default_rng(tree[block])
        if flood_block is not None and block == flood_block:
            joins = len(pool)
        else:
            joins = min(int(rng.poisson(join_rate)), len(pool))
        for _ in range(joins):
            member = pool.pop(0)
            events.append(ChurnEvent(block, "join", member))
            active.add(member)
            joined_now.add(member)
        # Flappers live in `events`, not `active`: they are exempt
        # from random departures, their exits are scripted above.
        candidates = sorted(active - joined_now)
        leaves = int(rng.poisson(leave_rate))
        crashes = int(rng.poisson(crash_rate))
        # Survivor floor: joiners this block count toward it, crashers
        # still see the block on the wire but never settle it.
        headroom = max(0, len(active) - 1)
        leaves = min(leaves, len(candidates), headroom)
        headroom -= leaves
        victims = ([] if leaves == 0 else
                   [int(v) for v in rng.choice(candidates, size=leaves,
                                               replace=False)])
        for member in sorted(victims):
            events.append(ChurnEvent(block, "leave", member))
            active.discard(member)
            departed.add(member)
        candidates = sorted(active - joined_now - set(victims))
        crashes = min(crashes, len(candidates), headroom)
        crashed = ([] if crashes == 0 else
                   [int(v) for v in rng.choice(candidates, size=crashes,
                                               replace=False)])
        for member in sorted(crashed):
            events.append(ChurnEvent(block, "crash", member))
            active.discard(member)
            departed.add(member)
    events.sort(key=lambda e: (e.block, CHURN_KINDS.index(e.kind), e.member))
    return events
