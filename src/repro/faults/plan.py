"""Attack plans: an ordered, reseedable bundle of fault models.

An :class:`AttackPlan` is what Monte-Carlo drivers thread through
their trial loops: one :meth:`AttackPlan.reseed` call per trial pins
every member model's RNG off the trial's global index, so attacked
runs shard across workers with bit-for-bit identical results — the
same contract :class:`~repro.network.loss.LossModel` gives passive
loss.  Plans are plain picklable objects; the process pool ships one
per task and reseeds it locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.exceptions import SimulationError
from repro.faults.models import FaultModel

__all__ = ["AttackPlan"]

#: Seed spacing between member models so sibling fault streams never
#: share a RNG key (a prime, like the trial strides in the runners).
_FAULT_SEED_STRIDE = 15485863


@dataclass
class AttackPlan:
    """Per-slot fault schedule: the models applied to every delivery.

    Models are applied in tuple order by
    :class:`~repro.faults.channel.AdversarialChannel` — corruption
    models compose left to right, injections and replays accumulate.
    """

    faults: Tuple[FaultModel, ...] = ()

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        for fault in self.faults:
            if not isinstance(fault, FaultModel):
                raise SimulationError(
                    f"attack plan members must be FaultModels, got "
                    f"{type(fault).__name__}")

    def reset(self) -> None:
        """Reset every member model (new trial, same seeds)."""
        for fault in self.faults:
            fault.reset()

    def reseed(self, seed: Optional[int]) -> None:
        """Re-key every member model off one trial seed, then reset.

        Each member gets ``seed + stride * (index + 1)`` so two models
        of the same class in one plan still draw independent streams.
        """
        for index, fault in enumerate(self.faults):
            fault.reseed(None if seed is None
                         else seed + _FAULT_SEED_STRIDE * (index + 1))

    @property
    def corruption_rate(self) -> float:
        """Probability a delivery is tampered by at least one model.

        Corruption decisions are independent across models, so the
        composed rate is ``1 - prod(1 - rate_i)`` — the ``c`` in the
        effective loss rate ``p_eff = 1 - (1-p)(1-c)`` that the
        adversarial conformance pass compares against.
        """
        survive = 1.0
        for fault in self.faults:
            survive *= 1.0 - fault.corruption_rate
        return 1.0 - survive
