"""Probabilistic construction tuning (Sec. 5's third method).

The paper's simplest construction draws each possible edge with
probability ``p_x``.  The design question is then: what is the
smallest ``p_x`` (and hence expected overhead ``p_x·(n-1)/2`` hashes
per packet) that meets a ``q_min`` target?  ``q_min`` is monotone in
``p_x`` in expectation, so a bisection over ``p_x`` with Monte Carlo
evaluation converges quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.montecarlo import graph_monte_carlo
from repro.exceptions import DesignError
from repro.schemes.random_graph import RandomGraphScheme

__all__ = ["ProbabilisticDesign", "tune_edge_probability"]


@dataclass(frozen=True)
class ProbabilisticDesign:
    """Result of tuning ``p_x``.

    Attributes
    ----------
    edge_probability:
        The tuned ``p_x``.
    q_min:
        Monte Carlo ``q_min`` of a representative sampled graph.
    mean_hashes:
        Realized mean out-degree of that graph.
    repairs:
        Unreachable vertices that needed a direct root edge.
    """

    edge_probability: float
    q_min: float
    mean_hashes: float
    repairs: int


def _evaluate(n: int, p_x: float, loss_rate: float, trials: int,
              seed: int, max_span: Optional[int]) -> ProbabilisticDesign:
    scheme = RandomGraphScheme(edge_probability=p_x, seed=seed,
                               max_span=max_span)
    graph = scheme.build_graph(n)
    result = graph_monte_carlo(graph, loss_rate, trials=trials, seed=seed + 1)
    return ProbabilisticDesign(
        edge_probability=p_x,
        q_min=result.q_min,
        mean_hashes=graph.edge_count / graph.n,
        repairs=scheme.last_repairs,
    )


def tune_edge_probability(n: int, loss_rate: float, q_min_target: float,
                          trials: int = 4000, seed: int = 99,
                          max_span: Optional[int] = None,
                          iterations: int = 12) -> ProbabilisticDesign:
    """Bisect the smallest ``p_x`` whose sampled graph meets the target.

    Parameters
    ----------
    n:
        Block size.
    loss_rate:
        Channel loss rate ``p`` (distinct from ``p_x``!).
    q_min_target:
        Required Monte Carlo ``q_min``.
    max_span:
        Optional edge-span cap (bounds buffers/delay).
    iterations:
        Bisection depth; 12 gives ~0.02% resolution on ``p_x``.

    Raises
    ------
    DesignError
        If even ``p_x = 1`` misses the target (infeasible at this loss
        rate with the given span cap).
    """
    if n < 2:
        raise DesignError(f"need a block of >= 2 packets, got {n}")
    if not 0.0 < q_min_target <= 1.0:
        raise DesignError(f"target must be in (0, 1], got {q_min_target}")
    high = _evaluate(n, 1.0, loss_rate, trials, seed, max_span)
    if high.q_min < q_min_target:
        raise DesignError(
            f"target q_min={q_min_target} infeasible even at p_x=1 "
            f"(achieved {high.q_min:.4f})"
        )
    lo, hi = 0.0, 1.0
    best = high
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        candidate = _evaluate(n, mid, loss_rate, trials, seed, max_span)
        if candidate.q_min >= q_min_target:
            best = candidate
            hi = mid
        else:
            lo = mid
    return best
