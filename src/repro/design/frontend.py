"""Unified optimizer frontend: one design program over the scheme zoo.

The paper's Sec. 5 frames construction as a single optimization —
minimize edges subject to ``q_i >= q_min`` — but the toolkit grew one
entry point per method: :func:`~repro.design.optimizer.optimize_emss`,
:func:`~repro.design.optimizer.optimize_ac`,
:func:`~repro.design.dp.search_offset_policy`,
:func:`~repro.design.probabilistic.tune_edge_probability` and
:func:`~repro.design.heuristic.greedy_design`, each with its own
result type.  :func:`design_point` dispatches across all of them and
normalizes every answer into a :class:`DesignPoint` — the common
currency the precomputed :class:`~repro.design.table.DesignTable` is
made of and the :class:`~repro.design.service.DesignService` serves.

Infeasibility is uniform too: every family raises
:class:`~repro.exceptions.DesignError` when no design within its
budgets reaches the target, so table builds can record the *fact* of
infeasibility at a lattice point instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.metrics import max_deterministic_delay
from repro.design.constraints import DesignConstraints
from repro.design.dp import search_offset_policy
from repro.design.heuristic import greedy_design
from repro.design.optimizer import ParameterChoice, optimize_ac, optimize_emss
from repro.design.probabilistic import tune_edge_probability
from repro.exceptions import DesignError

__all__ = ["DESIGN_FAMILIES", "DesignPoint", "design_point"]

#: Families :func:`design_point` dispatches across.  ``emss``, ``ac``
#: and ``offset`` are pure analytic searches (Eq. 9/10 evaluators —
#: deterministic and cheap enough to grid); ``probabilistic`` and
#: ``heuristic`` evaluate candidates by seeded Monte Carlo and are
#: meant for offline builds, not inline control.
DESIGN_FAMILIES = ("emss", "ac", "offset", "probabilistic", "heuristic")


@dataclass(frozen=True)
class DesignPoint:
    """One normalized answer of the design program.

    Attributes
    ----------
    family:
        Which construction produced it (see :data:`DESIGN_FAMILIES`).
    scheme_spec:
        Registry spec string a live session can instantiate with
        :func:`~repro.schemes.registry.make_scheme` (``"emss(2,1)"``,
        ``"ac(2,2)"``, ``"offsets(1,5,9)"``, ``"random(0.18,7)"``).
        ``None`` for the heuristic family, whose output is an explicit
        graph (carried in ``extra["edges"]``) rather than a policy.
    parameters:
        The numeric knobs behind the spec — ``(m, d)``, ``(a, b)``,
        the offset set, or ``(p_x,)``.
    q_min:
        Predicted worst-vertex authentication probability at the
        design's ``(n, p)``.
    cost:
        Mean hashes per packet.
    delay_slots:
        Deterministic receiver delay / buffer reach implied by the
        design, in packet slots.
    extra:
        Family-specific detail worth persisting (offsets, tuned edge
        probability, heuristic edge list).
    """

    family: str
    scheme_spec: Optional[str]
    parameters: Tuple[float, ...]
    q_min: float
    cost: float
    delay_slots: int
    extra: Dict[str, object] = field(default_factory=dict)

    def to_parameter_choice(self) -> ParameterChoice:
        """Downcast to the optimizer's legacy two-knob result type.

        Only meaningful for the families whose parameters are an
        integer pair (``emss``, ``ac``) — the shape the adaptive
        controllers and their event trace were built around.
        """
        if self.family not in ("emss", "ac") or len(self.parameters) != 2:
            raise DesignError(
                f"{self.family} designs do not reduce to an (x, y) "
                f"ParameterChoice")
        pair = (int(self.parameters[0]), int(self.parameters[1]))
        return ParameterChoice(scheme=self.family, parameters=pair,
                               q_min=self.q_min, cost=self.cost,
                               delay_slots=self.delay_slots)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the table's cell payload)."""
        payload: Dict[str, object] = {
            "family": self.family,
            "scheme": self.scheme_spec,
            "parameters": list(self.parameters),
            "q_min": self.q_min,
            "cost": self.cost,
            "delay_slots": self.delay_slots,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DesignPoint":
        """Rebuild a point serialized by :meth:`to_dict`."""
        try:
            return cls(
                family=str(payload["family"]),
                scheme_spec=(None if payload["scheme"] is None
                             else str(payload["scheme"])),
                parameters=tuple(payload["parameters"]),
                q_min=float(payload["q_min"]),
                cost=float(payload["cost"]),
                delay_slots=int(payload["delay_slots"]),
                extra=dict(payload.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DesignError(f"malformed design point payload: {exc}")


def _emss_point(n: int, p: float, q_target: float,
                max_delay_slots: Optional[int]) -> DesignPoint:
    choice = optimize_emss(n, p, q_target, max_delay_slots=max_delay_slots)
    m, d = choice.parameters
    return DesignPoint(family="emss", scheme_spec=f"emss({m},{d})",
                       parameters=(m, d), q_min=choice.q_min,
                       cost=choice.cost, delay_slots=choice.delay_slots)


def _ac_point(n: int, p: float, q_target: float,
              max_delay_slots: Optional[int]) -> DesignPoint:
    choice = optimize_ac(n, p, q_target, max_delay_slots=max_delay_slots)
    a, b = choice.parameters
    return DesignPoint(family="ac", scheme_spec=f"ac({a},{b})",
                       parameters=(a, b), q_min=choice.q_min,
                       cost=choice.cost, delay_slots=choice.delay_slots)


def _offset_point(n: int, p: float, q_target: float,
                  max_delay_slots: Optional[int]) -> DesignPoint:
    policy = search_offset_policy(
        n, p, q_target, max_offset=min(64, n - 1),
        max_delay_slots=max_delay_slots)
    spec = "offsets(%s)" % ",".join(str(o) for o in policy.offsets)
    return DesignPoint(family="offset", scheme_spec=spec,
                       parameters=tuple(policy.offsets),
                       q_min=policy.q_min,
                       cost=float(policy.edges_per_packet),
                       delay_slots=max(policy.offsets),
                       extra={"offsets": list(policy.offsets)})


def _probabilistic_point(n: int, p: float, q_target: float,
                         max_delay_slots: Optional[int], seed: int,
                         mc_trials: int) -> DesignPoint:
    tuned = tune_edge_probability(n, p, q_target, trials=mc_trials,
                                  seed=seed, max_span=max_delay_slots)
    spec = f"random({tuned.edge_probability:.6g},{seed})"
    delay = max_delay_slots if max_delay_slots is not None else n - 1
    return DesignPoint(family="probabilistic", scheme_spec=spec,
                       parameters=(tuned.edge_probability,),
                       q_min=tuned.q_min, cost=tuned.mean_hashes,
                       delay_slots=delay,
                       extra={"edge_probability": tuned.edge_probability,
                              "repairs": tuned.repairs, "seed": seed})


def _heuristic_point(n: int, p: float, q_target: float,
                     max_delay_slots: Optional[int], seed: int,
                     mc_trials: int) -> DesignPoint:
    constraints = DesignConstraints(loss_rate=p, q_min_target=q_target,
                                    max_out_degree=6, mc_trials=mc_trials,
                                    mc_seed=seed)
    built = greedy_design(n, constraints)
    if not built.satisfied:
        raise DesignError(
            f"greedy construction missed q_min >= {q_target} at n={n}, "
            f"p={p} (achieved {built.q_min:.4f})")
    return DesignPoint(
        family="heuristic", scheme_spec=None, parameters=(),
        q_min=built.q_min, cost=built.graph.edge_count / n,
        delay_slots=max_deterministic_delay(built.graph),
        extra={"edges": sorted(built.graph.edges()),
               "added_edges": len(built.added_edges), "seed": seed})


def design_point(family: str, n: int, p: float, q_target: float,
                 max_delay_slots: Optional[int] = None,
                 seed: int = 0, mc_trials: int = 1500) -> DesignPoint:
    """Run one family's design program and normalize the answer.

    Parameters
    ----------
    family:
        One of :data:`DESIGN_FAMILIES`.
    n, p, q_target, max_delay_slots:
        The lattice point: block size, channel loss rate, required
        ``q_min`` and the delay/buffer budget in packet slots.
    seed, mc_trials:
        Monte Carlo settings for the sampled families (ignored by the
        analytic ones) — the table build derives ``seed`` from its
        deterministic seed tree so rebuilds are byte-identical.

    Raises
    ------
    DesignError
        On an unknown family, or when the family has no design within
        its budgets meeting the target at this lattice point.
    """
    if family == "emss":
        return _emss_point(n, p, q_target, max_delay_slots)
    if family == "ac":
        return _ac_point(n, p, q_target, max_delay_slots)
    if family == "offset":
        return _offset_point(n, p, q_target, max_delay_slots)
    if family == "probabilistic":
        return _probabilistic_point(n, p, q_target, max_delay_slots,
                                    seed, mc_trials)
    if family == "heuristic":
        return _heuristic_point(n, p, q_target, max_delay_slots,
                                seed, mc_trials)
    raise DesignError(
        f"unknown design family {family!r}; known: "
        f"{', '.join(DESIGN_FAMILIES)}")
