"""Precomputed design tables: parameter choice turned into data.

A :class:`DesignTable` evaluates the unified design program
(:func:`~repro.design.frontend.design_point`) over the whole
``(p_grid x block_sizes x q_targets x delay_budgets)`` lattice, once
per family, offline — so the live control plane never has to run an
optimizer inline again (:mod:`repro.design.service` serves the result
as an O(1) lookup).

The build contract mirrors :mod:`repro.parallel`'s: cells fan out over
the process pool via :func:`~repro.parallel.pool.run_tasks` with
per-cell seeds spawned from one deterministic seed tree, and results
fold in lattice order — so a table built at any worker count is
**byte-identical**.  Serialization is canonical (sorted keys, no
timestamps, no machine identity) and carries a content hash plus a
versioned schema validated on load, like
:class:`~repro.obs.RunManifest` — schema drift fails loudly instead of
silently flying stale designs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.design.frontend import DESIGN_FAMILIES, DesignPoint, design_point
from repro.design.grid import validate_grid
from repro.exceptions import DesignError
from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import spawn_seed_tree

__all__ = ["TABLE_SCHEMA_VERSION", "TableSpec", "DesignTable",
           "cell_key", "validate_table_payload"]

TABLE_SCHEMA_VERSION = 1

#: Grid the control plane quantizes loss estimates onto (kept in sync
#: with :data:`repro.serve.adaptive.DEFAULT_P_GRID` by a regression
#: test; duplicated here so ``repro.design`` stays import-light).
DEFAULT_TABLE_P_GRID = (0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                        0.35, 0.4, 0.5)


@dataclass(frozen=True)
class TableSpec:
    """The lattice a table covers, and nothing machine-specific.

    The spec is part of the serialized payload: two builds from equal
    specs produce equal bytes, whatever the worker count.
    ``mc_trials``/``seed`` only influence the sampled families
    (``probabilistic``, ``heuristic``); the analytic families are pure
    functions of the lattice point.
    """

    p_grid: Tuple[float, ...] = DEFAULT_TABLE_P_GRID
    block_sizes: Tuple[int, ...] = (12,)
    q_targets: Tuple[float, ...] = (0.75,)
    delay_budgets: Tuple[int, ...] = (8,)
    families: Tuple[str, ...] = ("emss", "ac", "offset")
    seed: int = 7
    mc_trials: int = 1500

    def __post_init__(self) -> None:
        validate_grid(self.p_grid, "p_grid")
        validate_grid(self.block_sizes, "block_sizes")
        validate_grid(self.q_targets, "q_targets")
        validate_grid(self.delay_budgets, "delay_budgets")
        for p in self.p_grid:
            if not 0.0 <= p < 1.0:
                raise DesignError(f"loss rates must be in [0, 1), got {p}")
        for q in self.q_targets:
            if not 0.0 < q <= 1.0:
                raise DesignError(f"q targets must be in (0, 1], got {q}")
        for n in self.block_sizes:
            if n < 2:
                raise DesignError(f"block sizes must be >= 2, got {n}")
        for budget in self.delay_budgets:
            if budget < 1:
                raise DesignError(f"delay budgets must be >= 1, got {budget}")
        if not self.families:
            raise DesignError("need at least one design family")
        for family in self.families:
            if family not in DESIGN_FAMILIES:
                raise DesignError(
                    f"unknown design family {family!r}; known: "
                    f"{', '.join(DESIGN_FAMILIES)}")
        if len(set(self.families)) != len(self.families):
            raise DesignError(f"duplicate families in {self.families!r}")
        if self.mc_trials < 1:
            raise DesignError(f"mc_trials must be >= 1, got {self.mc_trials}")

    def lattice(self) -> List[Tuple[str, float, int, float, int]]:
        """Every ``(family, p, n, q_target, delay_budget)`` cell, in
        canonical (sorted-axis) order — the order seeds are assigned
        and results are folded in."""
        return [
            (family, p, n, q, delay)
            for family in self.families
            for p in self.p_grid
            for n in self.block_sizes
            for q in self.q_targets
            for delay in self.delay_budgets
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "p_grid": list(self.p_grid),
            "block_sizes": list(self.block_sizes),
            "q_targets": list(self.q_targets),
            "delay_budgets": list(self.delay_budgets),
            "families": list(self.families),
            "seed": self.seed,
            "mc_trials": self.mc_trials,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TableSpec":
        try:
            return cls(
                p_grid=tuple(payload["p_grid"]),
                block_sizes=tuple(int(n) for n in payload["block_sizes"]),
                q_targets=tuple(payload["q_targets"]),
                delay_budgets=tuple(int(b)
                                    for b in payload["delay_budgets"]),
                families=tuple(str(f) for f in payload["families"]),
                seed=int(payload["seed"]),
                mc_trials=int(payload["mc_trials"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DesignError(f"malformed table spec: {exc}")


def cell_key(family: str, p: float, n: int, q_target: float,
             delay_budget: int) -> str:
    """Canonical string key for one lattice cell.

    ``repr`` for the float axes: it round-trips exactly through JSON,
    so a key computed from a loaded grid equals the key computed at
    build time.
    """
    return (f"{family}|p={float(p)!r}|n={int(n)}|q={float(q_target)!r}"
            f"|delay={int(delay_budget)}")


def _build_cell(task: Tuple[str, float, int, float, int, int, int]
                ) -> Tuple[str, Dict[str, object]]:
    """Evaluate one lattice cell (module-level: must pickle to workers).

    Infeasibility at a cell is an *answer*, not an error: the entry
    records it so lookups can report it authoritatively instead of
    falling back to an inline search that would fail identically.
    """
    family, p, n, q_target, delay, seed, mc_trials = task
    key = cell_key(family, p, n, q_target, delay)
    registry = get_registry()
    if registry.enabled:
        registry.count("design.table.cells")
    try:
        point = design_point(family, n, p, q_target, max_delay_slots=delay,
                             seed=seed, mc_trials=mc_trials)
    except DesignError as exc:
        return key, {"feasible": False, "family": family,
                     "reason": str(exc)}
    entry: Dict[str, object] = {"feasible": True}
    entry.update(point.to_dict())
    return key, entry


@dataclass
class DesignTable:
    """A built table: the spec, every cell, and the content hash."""

    spec: TableSpec
    cells: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def build(cls, spec: Optional[TableSpec] = None,
              workers: Optional[int] = None) -> "DesignTable":
        """Evaluate the whole lattice, fanned out across the pool.

        Per-cell seeds come from one
        :func:`~repro.parallel.seeds.spawn_seed_tree` over the lattice
        in canonical order, so cell ``i`` sees the same seed whether it
        runs in-process or on any worker — rebuilds are byte-identical
        at every pool size.
        """
        spec = spec if spec is not None else TableSpec()
        lattice = spec.lattice()
        seeds = spawn_seed_tree(spec.seed, len(lattice))
        tasks = [
            cell + (int(seeds[index].generate_state(1)[0]), spec.mc_trials)
            for index, cell in enumerate(lattice)
        ]
        registry = get_registry()
        if registry.enabled:
            registry.count("design.table.builds")
        with span("design.table.build"):
            results = run_tasks(_build_cell, tasks, workers)
        table = cls(spec=spec)
        for key, entry in results:
            table.cells[key] = entry
        return table

    # -- serialization -------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON payload, content hash included."""
        body = {
            "schema_version": TABLE_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "cells": {key: self.cells[key] for key in sorted(self.cells)},
        }
        body["content_hash"] = _content_hash(body)
        return body

    @property
    def content_hash(self) -> str:
        """Hash of the canonical payload (identity for caching/CI)."""
        return str(self.to_payload()["content_hash"])

    def to_bytes(self) -> bytes:
        """Canonical serialized form: sorted keys, no whitespace drift."""
        return (json.dumps(self.to_payload(), sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DesignTable":
        validate_table_payload(payload)
        return cls(spec=TableSpec.from_dict(payload["spec"]),
                   cells=dict(payload["cells"]))

    @classmethod
    def load(cls, path: str) -> "DesignTable":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise DesignError(f"cannot read design table {path}: {exc}")
        except ValueError as exc:
            raise DesignError(f"malformed design table {path}: {exc}")
        return cls.from_payload(payload)

    # -- introspection -------------------------------------------------

    def feasible_count(self) -> int:
        return sum(1 for entry in self.cells.values() if entry["feasible"])

    def describe(self) -> Dict[str, object]:
        """Summary for manifests and the ``design-table show`` CLI."""
        per_family: Dict[str, Dict[str, int]] = {}
        for key, entry in self.cells.items():
            family = key.split("|", 1)[0]
            stats = per_family.setdefault(family,
                                          {"cells": 0, "feasible": 0})
            stats["cells"] += 1
            stats["feasible"] += 1 if entry["feasible"] else 0
        return {
            "schema_version": TABLE_SCHEMA_VERSION,
            "content_hash": self.content_hash,
            "cells": len(self.cells),
            "feasible": self.feasible_count(),
            "families": {name: per_family[name]
                         for name in sorted(per_family)},
            "spec": self.spec.to_dict(),
        }


def _content_hash(body: Dict[str, object]) -> str:
    canonical = json.dumps(
        {key: value for key, value in body.items()
         if key != "content_hash"},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.blake2b(canonical, digest_size=16).hexdigest()


def validate_table_payload(payload: Dict[str, object]) -> None:
    """Raise :class:`DesignError` unless ``payload`` is a valid table.

    Checks the schema version, the spec, the cell-key/entry shapes,
    lattice completeness (every spec cell present, nothing extra) and
    the content hash — a truncated or hand-edited table must never be
    served.
    """
    if not isinstance(payload, dict):
        raise DesignError(
            f"design table must be a JSON object, got {type(payload)!r}")
    version = payload.get("schema_version")
    if version != TABLE_SCHEMA_VERSION:
        raise DesignError(f"unsupported design-table schema {version!r}")
    if not isinstance(payload.get("spec"), dict):
        raise DesignError("design table missing its spec")
    spec = TableSpec.from_dict(payload["spec"])
    cells = payload.get("cells")
    if not isinstance(cells, dict):
        raise DesignError("design table missing its cells")
    expected = {cell_key(*cell) for cell in spec.lattice()}
    if set(cells) != expected:
        missing = sorted(expected - set(cells))[:3]
        extra = sorted(set(cells) - expected)[:3]
        raise DesignError(
            f"design table cells do not match the spec lattice "
            f"(missing {missing!r}..., extra {extra!r}...)")
    for key, entry in cells.items():
        if not isinstance(entry, dict) or "feasible" not in entry:
            raise DesignError(f"malformed cell entry at {key!r}")
        if entry["feasible"]:
            DesignPoint.from_dict(entry)  # raises DesignError when bad
    stated = payload.get("content_hash")
    actual = _content_hash(payload)
    if stated != actual:
        raise DesignError(
            f"design-table content hash mismatch: file says {stated!r}, "
            f"payload hashes to {actual!r}")
