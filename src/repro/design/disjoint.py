"""Deterministic designs with guaranteed path diversity.

The design toolkit's other members evaluate candidate graphs
probabilistically; this one constructs graphs whose loss tolerance is
*provable*: every vertex gets at least ``r`` internally vertex-disjoint
root-paths, each with a bounded interior, so the
:func:`repro.core.diversity.diversity_lambda_floor` guarantee applies
at every vertex regardless of topology luck.

Construction: ``r`` interleaved strided chains.  Chain ``c`` (for
``c = 0..r−1``) connects each vertex ``v`` to ``v + stride_c`` (toward
the root, send-order convention with the root last), with distinct
coprime-ish strides; because two different strides never revisit the
same intermediate vertices between hops at the same positions, the
``r`` chains from any vertex are internally disjoint (verified, not
assumed: the constructor checks Menger numbers and raises on failure).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.diversity import disjoint_path_count
from repro.core.graph import DependenceGraph
from repro.exceptions import DesignError

__all__ = ["disjoint_paths_design"]


def _default_strides(r: int) -> List[int]:
    """Pairwise coprime-leaning strides: 1 plus consecutive primes."""
    primes = [2, 3, 5, 7, 11, 13, 17, 19, 23]
    if r - 1 > len(primes):
        raise DesignError(f"at most {len(primes) + 1} disjoint chains")
    return [1] + primes[:r - 1]


def disjoint_paths_design(n: int, r: int,
                          strides: Optional[List[int]] = None,
                          verify: bool = True) -> DependenceGraph:
    """Build a graph giving every vertex >= ``r`` disjoint root-paths.

    Parameters
    ----------
    n:
        Block size; the root (signature packet) is vertex ``n``.
    r:
        Required internally-disjoint root-path count per vertex.
    strides:
        Optional explicit chain strides (length ``r``, distinct,
        positive); defaults to ``[1, 2, 3, 5, ...]``.
    verify:
        When ``True`` (default) check the Menger number of every
        vertex and raise :class:`DesignError` if any falls short —
        the guarantee is *checked*, not assumed.  Near the root,
        stride clamping collapses carriers onto ``P_sign`` itself, so
        the requirement there is the distinct-carrier count (those
        vertices enjoy direct, certain root links instead).

    Returns
    -------
    DependenceGraph
        ``r`` hashes per packet (minus clamping at the boundary).
    """
    if n < 2:
        raise DesignError(f"block needs >= 2 packets, got {n}")
    if r < 1:
        raise DesignError(f"need r >= 1, got {r}")
    strides = strides if strides is not None else _default_strides(r)
    if len(strides) != r or len(set(strides)) != r:
        raise DesignError(f"need {r} distinct strides, got {strides}")
    if any(s < 1 for s in strides):
        raise DesignError(f"strides must be positive: {strides}")
    graph = DependenceGraph(n, root=n)
    for vertex in range(1, n):
        for stride in strides:
            carrier = min(vertex + stride, n)
            if carrier != vertex and not graph.has_edge(carrier, vertex):
                graph.add_edge(carrier, vertex)
    graph.validate()
    if verify:
        for vertex in range(1, n):
            count = disjoint_path_count(graph, vertex)
            # Near the root, stride clamping collapses carriers: the
            # Menger number cannot exceed the distinct in-neighbors.
            achievable = len({min(vertex + s, n) for s in strides}
                             - {vertex})
            if count < min(r, achievable):
                raise DesignError(
                    f"vertex {vertex} has only {count} disjoint paths "
                    f"(need {min(r, achievable)}); strides {strides} "
                    f"interleave badly at this block size"
                )
    return graph
