"""Scheme-parameter optimization (the paper's motivating complaint).

"Although there are some schemes [EMSS, AC] which have improved
robustness against loss and use reasonable overheads, their
performances could vary widely from one set of parameters to another.
Besides, there is no effective way of choosing these parameters."

With the analytic evaluators in hand, choosing parameters *is*
effective: these functions sweep EMSS ``(m, d)`` and AC ``(a, b)``
spaces, discard points missing the ``q_min`` target (and optional
delay budget), and return the cheapest survivor — cost being hashes
per packet first, receiver delay second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.exceptions import AnalysisError, DesignError

__all__ = ["ParameterChoice", "optimize_emss", "optimize_ac"]


@dataclass(frozen=True)
class ParameterChoice:
    """A selected parameter point and its predicted performance.

    ``cost`` is mean hashes per packet; ``delay_slots`` the worst-case
    deterministic receiver wait implied by the parameters.
    """

    scheme: str
    parameters: Tuple[int, int]
    q_min: float
    cost: float
    delay_slots: int


def optimize_emss(n: int, p: float, q_min_target: float,
                  m_values: Iterable[int] = range(1, 7),
                  d_values: Iterable[int] = (1, 2, 4, 8, 16, 32),
                  max_delay_slots: Optional[int] = None) -> ParameterChoice:
    """Cheapest EMSS ``(m, d)`` meeting the target at ``(n, p)``.

    EMSS costs ``m`` hashes/packet and delays verification up to the
    end of the block; its *buffer*-relevant reach is ``m·d`` slots,
    used here as the delay figure of merit (Fig. 7's observation that
    delay and buffers scale with ``d``).
    """
    best: Optional[ParameterChoice] = None
    for m in sorted(set(m_values)):
        for d in sorted(set(d_values)):
            reach = m * d
            if max_delay_slots is not None and reach > max_delay_slots:
                continue
            q = emss_analysis.q_min(n, m, d, p)
            if q < q_min_target:
                continue
            candidate = ParameterChoice("emss", (m, d), q, float(m), reach)
            if best is None or (candidate.cost, candidate.delay_slots) < (
                    best.cost, best.delay_slots):
                best = candidate
        if best is not None and best.cost <= m:
            break  # larger m can only cost more
    if best is None:
        raise DesignError(
            f"no EMSS parameters meet q_min >= {q_min_target} at n={n}, p={p}"
        )
    return best


def optimize_ac(n: int, p: float, q_min_target: float,
                a_values: Iterable[int] = range(2, 11),
                b_values: Iterable[int] = range(1, 11),
                max_delay_slots: Optional[int] = None) -> ParameterChoice:
    """Cheapest AC ``(a, b)`` meeting the target at ``(n, p)``.

    Every AC packet is linked to two others (2 hashes/packet), so cost
    ties are broken by the first-level reach ``a·(b+1)`` — the span
    that drives buffers and delay.
    """
    best: Optional[ParameterChoice] = None
    for a in sorted(set(a_values)):
        for b in sorted(set(b_values)):
            reach = a * (b + 1)
            if max_delay_slots is not None and reach > max_delay_slots:
                continue
            try:
                q = ac_analysis.q_min(n, a, b, p)
            except AnalysisError:
                continue  # block too small for this (a, b)
            if q < q_min_target:
                continue
            candidate = ParameterChoice("ac", (a, b), q, 2.0, reach)
            if best is None or candidate.delay_slots < best.delay_slots:
                best = candidate
    if best is None:
        raise DesignError(
            f"no AC parameters meet q_min >= {q_min_target} at n={n}, p={p}"
        )
    return best
