"""Greedy heuristic dependence-graph construction (Sec. 5).

"A relatively straight forward but heuristic way to construct
dependence-graphs is by starting with a tree and then adding edges in
each subsequent levels until the given constraints on authentication
probabilities are all satisfied."

The builder starts from a minimal spanning structure (a balanced tree
from the root, every vertex reachable by exactly one path), then repeatedly
finds the vertex with the lowest estimated ``q_i`` and gives it a new
support edge from a well-connected vertex roughly halfway toward the
root — adding path diversity exactly where the probability is worst —
until the target is met or a budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.graph import DependenceGraph
from repro.design.constraints import DesignConstraints
from repro.exceptions import DesignError

__all__ = ["HeuristicDesignResult", "greedy_design"]


@dataclass(frozen=True)
class HeuristicDesignResult:
    """Output of :func:`greedy_design`.

    Attributes
    ----------
    graph:
        The constructed dependence-graph.
    q_min:
        Estimated ``q_min`` of the final graph.
    added_edges:
        Edges added beyond the initial spanning tree, in order.
    satisfied:
        Whether the ``q_min`` target was reached within budget.
    """

    graph: DependenceGraph
    q_min: float
    added_edges: Tuple[Tuple[int, int], ...]
    satisfied: bool


def _spanning_tree(n: int, root: int) -> DependenceGraph:
    """A balanced binary tree from the root covering all vertices.

    The paper suggests "starting with a tree"; a balanced tree keeps
    every subtree small, so later support edges rarely create cycles —
    a chain skeleton, by contrast, makes every vertex a descendant of
    all earlier ones and quickly strands the greedy step.
    """
    graph = DependenceGraph(n, root)
    ordered = [root] + [v for v in range(n, 0, -1) if v != root]
    for index in range(1, n):
        parent = ordered[(index - 1) // 2]
        graph.add_edge(parent, ordered[index])
    return graph


def _candidate_sources(graph: DependenceGraph, q: dict, target_vertex: int,
                       max_out_degree: Optional[int]) -> List[int]:
    """Vertices worth drawing a new support edge from, best first.

    Only non-descendants of the target are cycle-safe sources, so the
    descendant cone is excluded up front.  Among the rest, prefer
    high-``q`` vertices (the root, always received, first) with spare
    out-degree — the cap is what keeps the design from collapsing into
    a root star.
    """
    descendants = nx.descendants(graph.to_networkx(), target_vertex)
    candidates = [
        v for v in graph.vertices
        if v != target_vertex
        and v not in descendants
        and not graph.has_edge(v, target_vertex)
        and (max_out_degree is None or graph.out_degree(v) < max_out_degree)
    ]
    return sorted(
        candidates,
        key=lambda v: (v != graph.root, graph.out_degree(v), -q.get(v, 0.0)),
    )


def greedy_design(n: int, constraints: DesignConstraints, root: int = None,
                  max_extra_edges: Optional[int] = None
                  ) -> HeuristicDesignResult:
    """Construct a graph meeting ``constraints`` by greedy edge addition.

    Parameters
    ----------
    n:
        Block size.
    constraints:
        Target/budget set; its Monte Carlo settings drive evaluation.
    root:
        Root vertex; defaults to ``n`` (signature at block end).
    max_extra_edges:
        Hard cap on added edges (defaults to the overhead budget, or
        ``3n`` when unbudgeted).

    Returns
    -------
    HeuristicDesignResult
        ``satisfied`` reports whether the target was met; the graph is
        returned either way so callers can inspect near-misses.
    """
    if n < 2:
        raise DesignError(f"need a block of >= 2 packets, got {n}")
    root = root if root is not None else n
    graph = _spanning_tree(n, root)
    if max_extra_edges is None:
        if constraints.max_mean_hashes is not None:
            max_extra_edges = max(
                int(constraints.max_mean_hashes * n) - graph.edge_count, 0)
        else:
            max_extra_edges = 3 * n
    added: List[Tuple[int, int]] = []
    seed_step = 0
    while True:
        result = graph_monte_carlo(graph, constraints.loss_rate,
                                   trials=constraints.mc_trials,
                                   seed=constraints.mc_seed + seed_step)
        seed_step += 1
        q = result.q
        worst_vertex = min(q, key=q.get)
        if q[worst_vertex] >= constraints.q_min_target:
            return HeuristicDesignResult(graph=graph, q_min=q[worst_vertex],
                                         added_edges=tuple(added),
                                         satisfied=True)
        if len(added) >= max_extra_edges:
            return HeuristicDesignResult(graph=graph, q_min=q[worst_vertex],
                                         added_edges=tuple(added),
                                         satisfied=False)
        sources = _candidate_sources(graph, q, worst_vertex,
                                     constraints.max_out_degree)
        if not sources:
            # Every cycle-safe source is saturated: the out-degree cap
            # is exhausted around this vertex.  Report the near-miss
            # rather than raising — callers can loosen the cap.
            return HeuristicDesignResult(graph=graph, q_min=q[worst_vertex],
                                         added_edges=tuple(added),
                                         satisfied=False)
        graph.add_edge(sources[0], worst_vertex)
        added.append((sources[0], worst_vertex))
