"""Graph-design toolkit: the constructions of the paper's Section 5.

Two layers: the per-method design programs (optimizer sweeps, the DP
offset-policy search, probabilistic tuning, the greedy heuristic), and
the *design service* built on top of them — a unified
:func:`~repro.design.frontend.design_point` frontend, a precomputed
:class:`~repro.design.table.DesignTable` over the whole parameter
lattice, and the O(1) :class:`~repro.design.service.DesignService`
lookup the live control plane consults instead of running optimizers
inline (see ``docs/design_service.md``).
"""

from repro.design.constraints import ConstraintReport, DesignConstraints
from repro.design.disjoint import disjoint_paths_design
from repro.design.dp import OffsetPolicy, search_offset_policy
from repro.design.frontend import DESIGN_FAMILIES, DesignPoint, design_point
from repro.design.grid import quantize_down, quantize_up, validate_grid
from repro.design.heuristic import HeuristicDesignResult, greedy_design
from repro.design.optimizer import ParameterChoice, optimize_ac, optimize_emss
from repro.design.probabilistic import ProbabilisticDesign, tune_edge_probability
from repro.design.service import DesignCoverageError, DesignService
from repro.design.table import (
    TABLE_SCHEMA_VERSION,
    DesignTable,
    TableSpec,
    cell_key,
    validate_table_payload,
)

__all__ = [
    "ConstraintReport",
    "DesignConstraints",
    "disjoint_paths_design",
    "OffsetPolicy",
    "search_offset_policy",
    "DESIGN_FAMILIES",
    "DesignPoint",
    "design_point",
    "quantize_down",
    "quantize_up",
    "validate_grid",
    "HeuristicDesignResult",
    "greedy_design",
    "ParameterChoice",
    "optimize_ac",
    "optimize_emss",
    "ProbabilisticDesign",
    "tune_edge_probability",
    "DesignCoverageError",
    "DesignService",
    "TABLE_SCHEMA_VERSION",
    "DesignTable",
    "TableSpec",
    "cell_key",
    "validate_table_payload",
]
