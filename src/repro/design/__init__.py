"""Graph-design toolkit: the constructions of the paper's Section 5."""

from repro.design.constraints import ConstraintReport, DesignConstraints
from repro.design.disjoint import disjoint_paths_design
from repro.design.dp import OffsetPolicy, search_offset_policy
from repro.design.heuristic import HeuristicDesignResult, greedy_design
from repro.design.optimizer import ParameterChoice, optimize_ac, optimize_emss
from repro.design.probabilistic import ProbabilisticDesign, tune_edge_probability

__all__ = [
    "ConstraintReport",
    "DesignConstraints",
    "disjoint_paths_design",
    "OffsetPolicy",
    "search_offset_policy",
    "HeuristicDesignResult",
    "greedy_design",
    "ParameterChoice",
    "optimize_ac",
    "optimize_emss",
    "ProbabilisticDesign",
    "tune_edge_probability",
]
