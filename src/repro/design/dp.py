"""Offset-policy search — the paper's dynamic-programming construction.

Section 5: "We can also formulate the dependence-graph construction as
a dynamic programming problem — Given a certain number of vertices,
find the optimal policy which minimizes the total number of edges
required while satisfying the constraints that ``q_i`` is greater than
certain design minimum for all vertices.  The advantage of dynamic
programming is that it can usually give a simple policy suitable for
online constructions."

The "simple policy" of a periodic scheme *is* its offset set ``A``
(Eq. 9): every packet applies the same rule, which is exactly what an
online sender needs.  This module searches offset-set space in stages
of increasing edge count (``|A| = 1, 2, ...``) — the dynamic-programming
value iteration over policy size — keeping a beam of the
best-performing sets at each stage and extending them with every
feasible next offset.  The first stage containing a satisfying policy
is optimal in edge count by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.recurrence import solve_recurrence
from repro.exceptions import DesignError

__all__ = ["OffsetPolicy", "search_offset_policy"]


@dataclass(frozen=True)
class OffsetPolicy:
    """A periodic construction policy and its evaluated quality.

    Attributes
    ----------
    offsets:
        The offset set ``A`` — each packet stores its hash at these
        distances toward the signature.
    q_min:
        Eq. 9 ``q_min`` at the design block size and loss rate.
    edges_per_packet:
        ``|A|`` — the per-packet overhead this policy costs.
    """

    offsets: Tuple[int, ...]
    q_min: float
    edges_per_packet: int


def _evaluate(n: int, offsets: Sequence[int], p: float) -> float:
    return solve_recurrence(n, offsets, p).q_min


def search_offset_policy(n: int, p: float, q_min_target: float,
                         max_offset: int = 64, max_edges: int = 6,
                         beam_width: int = 8,
                         max_delay_slots: Optional[int] = None
                         ) -> OffsetPolicy:
    """Find a minimum-edge offset policy meeting ``q_min_target``.

    Parameters
    ----------
    n:
        Design block size.
    p:
        Channel loss rate.
    q_min_target:
        Required Eq. 9 ``q_min``.
    max_offset:
        Largest offset considered (bounds receiver delay and buffers,
        since buffers grow with ``max(A)``).
    max_edges:
        Give up beyond this ``|A|``.
    beam_width:
        Partial policies kept per stage.
    max_delay_slots:
        Optional tighter cap on ``max(A)`` (delay/buffer budget).

    Returns
    -------
    OffsetPolicy
        A satisfying policy with minimal ``|A|`` among those the beam
        explored (stage-minimality is exact; within a stage the beam
        may miss exotic optima).

    Raises
    ------
    DesignError
        If no policy within the budgets reaches the target.
    """
    if not 0.0 <= p < 1.0:
        raise DesignError(f"loss rate must be in [0, 1), got {p}")
    if not 0.0 < q_min_target <= 1.0:
        raise DesignError(f"target must be in (0, 1], got {q_min_target}")
    if max_offset < 1 or max_edges < 1 or beam_width < 1:
        raise DesignError("budgets must be >= 1")
    offset_ceiling = max_offset
    if max_delay_slots is not None:
        offset_ceiling = min(offset_ceiling, max_delay_slots)
        if offset_ceiling < 1:
            raise DesignError("delay budget leaves no feasible offset")
    candidates = range(1, min(offset_ceiling, n - 1) + 1)
    beam: List[Tuple[float, Tuple[int, ...]]] = [(0.0, ())]
    for _stage in range(max_edges):
        scored: List[Tuple[float, Tuple[int, ...]]] = []
        seen = set()
        for _, partial in beam:
            start = partial[-1] + 1 if partial else 1
            for offset in candidates:
                if offset < start:
                    continue
                extended = partial + (offset,)
                if extended in seen:
                    continue
                seen.add(extended)
                scored.append((_evaluate(n, extended, p), extended))
        if not scored:
            break
        scored.sort(key=lambda item: -item[0])
        best_q, best_offsets = scored[0]
        if best_q >= q_min_target:
            return OffsetPolicy(offsets=best_offsets, q_min=best_q,
                                edges_per_packet=len(best_offsets))
        beam = scored[:beam_width]
    raise DesignError(
        f"no offset policy with <= {max_edges} edges/packet and offsets "
        f"<= {offset_ceiling} reaches q_min >= {q_min_target} at p={p}"
    )
