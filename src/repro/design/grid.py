"""Design-grid quantization shared by controllers and the table service.

Every consumer of a precomputed design — the pool-wide
:class:`~repro.serve.adaptive.AdaptiveController`, its per-subtree
variant, and :class:`~repro.design.service.DesignService` lookups —
faces the same problem: a continuous estimate (a loss rate, a target,
a block size) must land on a *discrete* lattice of design points, and
it must land there **conservatively** — design for at least the
observed loss, at least the requested target, at most the available
delay budget.  This module is the single implementation of that
rounding, so the controller's grid semantics and the table's lookup
semantics can never drift apart.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.exceptions import DesignError

__all__ = ["validate_grid", "quantize_up", "quantize_down"]


def validate_grid(grid: Sequence[float], name: str = "grid"
                  ) -> Tuple[float, ...]:
    """Check a quantization grid (non-empty, sorted, duplicate-free).

    Returns the grid as a tuple so callers can store the validated
    form.  Raises :class:`DesignError` otherwise — a malformed grid
    silently changes which designs a consumer flies with, so it must
    never be accepted.
    """
    points = tuple(grid)
    if not points:
        raise DesignError(f"{name} must not be empty")
    if list(points) != sorted(set(points)):
        raise DesignError(
            f"{name} must be sorted and duplicate-free, got {points!r}")
    return points


def quantize_up(value: float, grid: Sequence[float],
                clamp: bool = False) -> float:
    """Smallest grid point ``>= value`` (the conservative round-up).

    ``clamp=True`` reproduces the controller's historical behaviour for
    estimates above the top of the grid: design for the harshest point
    the grid knows.  ``clamp=False`` is the table-lookup posture: a
    request above the grid is *uncovered* and must fail loudly rather
    than silently under-design, so it raises :class:`DesignError`.
    """
    for point in grid:
        if value <= point:
            return point
    if clamp:
        return grid[-1]
    raise DesignError(
        f"value {value!r} above the top of the grid {tuple(grid)!r}")


def quantize_down(value: float, grid: Sequence[float]) -> float:
    """Largest grid point ``<= value`` (conservative for budgets).

    A design built under a *smaller* delay budget always satisfies a
    larger one, so budget axes round down.  A value below the bottom of
    the grid has no satisfying point and raises :class:`DesignError`.
    """
    chosen = None
    for point in grid:
        if point <= value:
            chosen = point
        else:
            break
    if chosen is None:
        raise DesignError(
            f"value {value!r} below the bottom of the grid {tuple(grid)!r}")
    return chosen
