"""Design-constraint model for dependence-graph construction (Sec. 5).

"The design objective of the hash-chained schemes is to construct a
dependence-graph which has the minimum total number of edges and each
vertex in it is reachable by P_sign through at least a certain number
of paths each having a pre-defined maximum length."  This module turns
that sentence into a checkable object: targets on ``q_min`` (or on
path structure directly), budgets on overhead, and the zero-delay
restriction on edge direction the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.graph import DependenceGraph
from repro.core.metrics import (
    max_deterministic_delay,
    mean_hashes_per_packet,
)
from repro.exceptions import DesignError

__all__ = ["DesignConstraints", "ConstraintReport"]


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of checking one graph against a constraint set."""

    satisfied: bool
    q_min: float
    mean_hashes: float
    delay_slots: int
    violation: Optional[str] = None


@dataclass(frozen=True)
class DesignConstraints:
    """A designer's requirements for one block.

    Attributes
    ----------
    loss_rate:
        Channel loss rate ``p`` the design must survive.
    q_min_target:
        Required minimum authentication probability.
    max_mean_hashes:
        Overhead budget: mean out-degree cap (``|E|/n``).
    max_delay_slots:
        Cap on deterministic receiver delay, in packet slots;
        ``0`` enforces the paper's zero-receiver-delay regime (edges
        may only point from nearer-``P_sign`` to farther, i.e. the
        root must be the first packet and labels non-positive).
    max_out_degree:
        Cap on hashes carried by any single packet.  Without it the
        trivially optimal design is a star from ``P_sign`` (one packet
        carrying ``n-1`` hashes), which no real packet MTU allows.
    mc_trials, mc_seed:
        Monte Carlo settings for evaluating candidate graphs.
    """

    loss_rate: float
    q_min_target: float
    max_mean_hashes: Optional[float] = None
    max_delay_slots: Optional[int] = None
    max_out_degree: Optional[int] = None
    mc_trials: int = 4000
    mc_seed: int = 1234

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise DesignError(f"loss rate must be in [0, 1), got {self.loss_rate}")
        if not 0.0 < self.q_min_target <= 1.0:
            raise DesignError(
                f"q_min target must be in (0, 1], got {self.q_min_target}"
            )
        if self.max_mean_hashes is not None and self.max_mean_hashes <= 0:
            raise DesignError("overhead budget must be positive")
        if self.max_delay_slots is not None and self.max_delay_slots < 0:
            raise DesignError("delay budget must be >= 0")
        if self.max_out_degree is not None and self.max_out_degree < 1:
            raise DesignError("out-degree cap must be >= 1")
        if self.mc_trials < 100:
            raise DesignError("need >= 100 Monte Carlo trials")

    # ------------------------------------------------------------------

    def evaluate_q_min(self, graph: DependenceGraph) -> float:
        """Estimated ``q_min`` of ``graph`` at the design loss rate."""
        result = graph_monte_carlo(graph, self.loss_rate,
                                   trials=self.mc_trials, seed=self.mc_seed)
        return result.q_min

    def check(self, graph: DependenceGraph) -> ConstraintReport:
        """Full constraint check; never raises on mere violation."""
        mean_hashes = mean_hashes_per_packet(graph)
        delay = max_deterministic_delay(graph)
        if (self.max_mean_hashes is not None
                and mean_hashes > self.max_mean_hashes + 1e-9):
            return ConstraintReport(False, 0.0, mean_hashes, delay,
                                    violation="overhead budget exceeded")
        if (self.max_delay_slots is not None
                and delay > self.max_delay_slots):
            return ConstraintReport(False, 0.0, mean_hashes, delay,
                                    violation="delay budget exceeded")
        if self.max_out_degree is not None:
            worst = max(graph.out_degree(v) for v in graph.vertices)
            if worst > self.max_out_degree:
                return ConstraintReport(False, 0.0, mean_hashes, delay,
                                        violation="out-degree cap exceeded")
        q_min = self.evaluate_q_min(graph)
        if q_min < self.q_min_target:
            return ConstraintReport(False, q_min, mean_hashes, delay,
                                    violation="q_min target missed")
        return ConstraintReport(True, q_min, mean_hashes, delay)
