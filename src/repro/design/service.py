"""The design service: O(1) scheme selection for the control plane.

A :class:`DesignService` wraps a precomputed
:class:`~repro.design.table.DesignTable` behind the one call the live
controllers need: :meth:`~DesignService.lookup`.  A request is
quantized **conservatively** onto the table lattice — loss rate,
block size and target round *up*, the delay budget rounds *down* —
then answered from a dict, so adaptation costs a hash lookup instead
of an inline optimizer run.

The coverage contract is loud: a request off the top of any axis (or
for a family the table never built) raises
:class:`DesignCoverageError` rather than silently serving the nearest
design, and the caller decides whether to fall back to an inline
search (the controllers do, and count it).  A *covered* cell where the
program itself found no satisfying design answers ``None`` —
authoritative infeasibility, exactly what the inline optimizer would
have concluded.

Every lookup is counted on the live :mod:`repro.obs` registry
(``design.service.lookups`` / ``.hits`` / ``.misses``) so a soak run's
manifest shows whether its control plane actually flew on the table.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.design.frontend import DesignPoint
from repro.design.grid import quantize_down, quantize_up
from repro.design.table import DesignTable, cell_key
from repro.exceptions import DesignError
from repro.obs.registry import get_registry

__all__ = ["DesignCoverageError", "DesignService"]


class DesignCoverageError(DesignError):
    """A lookup landed outside the table lattice.

    Distinct from plain :class:`DesignError` so callers can tell "the
    table does not cover this point" (fall back to an inline search)
    apart from "the design program says this point is infeasible"
    (which no fallback will fix).
    """


class DesignService:
    """Serve precomputed designs from a table, with counted coverage."""

    def __init__(self, table: DesignTable) -> None:
        self.table = table
        spec = table.spec
        self.p_grid = spec.p_grid
        self.block_sizes = spec.block_sizes
        self.q_targets = spec.q_targets
        self.delay_budgets = spec.delay_budgets
        self.families = spec.families
        # One dict, fully materialized: feasible cells hold their
        # DesignPoint, infeasible cells hold None.  Lookup never parses.
        self._points: Dict[str, Optional[DesignPoint]] = {}
        for key, entry in table.cells.items():
            self._points[key] = (DesignPoint.from_dict(entry)
                                 if entry["feasible"] else None)
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str) -> "DesignService":
        """Open a table written by ``repro-experiments design-table
        build`` (validated: schema, lattice completeness, content
        hash)."""
        return cls(DesignTable.load(path))

    # ------------------------------------------------------------------

    def resolve_cell(self, p: float, n: int, q_target: float,
                     max_delay_slots: Optional[int] = None
                     ) -> Tuple[float, int, float, int]:
        """Quantize a request onto the lattice (without looking it up).

        Raises :class:`DesignCoverageError` when any axis falls off the
        covered range in the conservative direction — above the top for
        ``p``/``n``/``q_target``, below the bottom for the delay
        budget.
        """
        try:
            grid_p = quantize_up(p, self.p_grid)
            grid_n = int(quantize_up(n, self.block_sizes))
            grid_q = quantize_up(q_target, self.q_targets)
            if max_delay_slots is None:
                grid_delay = self.delay_budgets[-1]
            else:
                grid_delay = int(quantize_down(max_delay_slots,
                                               self.delay_budgets))
        except DesignError as exc:
            raise DesignCoverageError(
                f"design table does not cover (p={p}, n={n}, "
                f"q_target={q_target}, max_delay_slots={max_delay_slots}): "
                f"{exc}")
        return grid_p, grid_n, grid_q, grid_delay

    def lookup(self, p: float, n: int, q_target: float,
               family: str = "emss",
               max_delay_slots: Optional[int] = None
               ) -> Optional[DesignPoint]:
        """The control-plane call: one covered cell, O(1).

        Returns the cell's :class:`~repro.design.frontend.DesignPoint`,
        or ``None`` when the cell is covered but the design program
        found it infeasible.  Raises :class:`DesignCoverageError` for
        uncovered requests (off-lattice, or an unbuilt family).
        """
        registry = get_registry()
        if registry.enabled:
            registry.count("design.service.lookups")
        try:
            if family not in self.families:
                raise DesignCoverageError(
                    f"design table has no {family!r} family "
                    f"(built: {', '.join(self.families)})")
            cell = self.resolve_cell(p, n, q_target, max_delay_slots)
        except DesignCoverageError:
            self.misses += 1
            if registry.enabled:
                registry.count("design.service.misses")
            raise
        point = self._points[cell_key(family, *cell)]
        self.hits += 1
        if registry.enabled:
            registry.count("design.service.hits")
        return point

    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Manifest-ready summary: table identity plus traffic so far."""
        summary = self.table.describe()
        summary["lookup_hits"] = self.hits
        summary["lookup_misses"] = self.misses
        return summary
