"""Extension: the precomputed design-table service, end to end.

Builds a :class:`~repro.design.table.DesignTable` over the controller
grid (twice, at different worker counts, to demonstrate byte-identical
builds), then runs the adaptation staircase three ways: the classic
inline-optimizer control plane, the same session answered entirely
from the table, and an AC-family session flying on the same table.
The rows assert the properties the service is sold on — identical
transcripts with zero inline optimizer calls, and one table serving
multiple scheme families.
"""

from __future__ import annotations

import os
import tempfile

from repro.design.table import DesignTable, TableSpec
from repro.experiments.common import ExperimentResult
from repro.serve.service import ServeConfig, run_live_session

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Serve the staircase from a precomputed table and prove parity."""
    result = ExperimentResult(
        experiment_id="ext-design-service",
        title="Design-table service: O(1) selection vs inline optimizer",
    )
    blocks = 20 if fast else 40
    spec = TableSpec(families=("emss", "ac"))
    table = DesignTable.build(spec, workers=1)
    rebuilt = DesignTable.build(spec, workers=2)
    result.rows.append({
        "check": "table build determinism (workers 1 vs 2)",
        "value": table.content_hash,
        "ok": table.to_bytes() == rebuilt.to_bytes(),
    })

    def staircase(family: str, table_path: str = None) -> ServeConfig:
        return ServeConfig(
            receivers=4 if fast else 8, blocks=blocks, block_size=12,
            loss_schedule=((0, 0.05), (blocks // 2, 0.3)),
            seed=2003, design_table=table_path, scheme_family=family)

    handle = tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False)
    handle.close()
    try:
        table.save(handle.name)
        inline = run_live_session(staircase("emss"))
        served = run_live_session(staircase("emss", handle.name))
        detail = served.manifest.parameters["design_table_detail"]
        result.rows.append({
            "check": "transcripts identical (inline vs table)",
            "value": f"{len(served.transcripts)} receivers",
            "ok": served.transcripts == inline.transcripts,
        })
        result.rows.append({
            "check": "table coverage (hits / misses)",
            "value": f"{detail['lookup_hits']} / {detail['lookup_misses']}",
            "ok": detail["lookup_hits"] > 0 and detail["lookup_misses"] == 0,
        })
        ac = run_live_session(staircase("ac", handle.name))
        ac_detail = ac.manifest.parameters["design_table_detail"]
        result.rows.append({
            "check": "AC family from the same table",
            "value": ", ".join(ac.schemes_used),
            "ok": (all(spec.startswith("ac(") for spec in ac.schemes_used)
                   and ac_detail["lookup_misses"] == 0),
        })
    finally:
        os.unlink(handle.name)
    result.note(
        "the table answers every grid-point crossing of the staircase "
        "(misses = 0, so the inline optimizer never ran), and the "
        "transcripts match the inline control plane byte for byte — "
        "precomputation changes the cost of adaptation, not its "
        "decisions.  The same table serves the AC family."
    )
    return result
