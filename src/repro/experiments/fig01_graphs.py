"""Figure 1: dependence-graphs of the analyzed schemes.

The paper's Figure 1 depicts the graphs of Rohatgi's chain, the
authentication tree, EMSS and the augmented chain.  Offline, this
experiment renders each scheme's graph for a small block as ASCII and
DOT, and records the structural facts the analyses rest on (edge
counts, roots, label multisets).
"""

from __future__ import annotations

from repro.core.metrics import compute_metrics
from repro.core.render import edge_signature, to_ascii, to_dot
from repro.experiments.common import ExperimentResult
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme

__all__ = ["run"]

_BLOCK = 13


def run(fast: bool = False) -> ExperimentResult:
    """Render Figure 1's graphs for a block of 13 packets."""
    result = ExperimentResult(
        experiment_id="fig1",
        title="Dependence-graphs of Rohatgi's, EMSS and the augmented chain",
    )
    schemes = [RohatgiScheme(), EmssScheme(2, 1), AugmentedChainScheme(2, 2)]
    for scheme in schemes:
        graph = scheme.build_graph(_BLOCK)
        graph.validate()
        metrics = compute_metrics(graph)
        result.rows.append({
            "scheme": scheme.name,
            "root": graph.root,
            "edges": graph.edge_count,
            "hashes/pkt": round(metrics.mean_hashes, 3),
            "labels": " ".join(str(l) for l in sorted(set(edge_signature(graph)))),
        })
        result.note(f"{scheme.name} ascii:\n{to_ascii(graph)}")
        if not fast:
            result.note(f"{scheme.name} dot:\n{to_dot(graph, scheme.name.replace('(', '_').replace(')', '').replace(',', '_').replace('-', '_'))}")
    result.note(
        "wong-lam has no inter-packet dependences (every packet self-"
        "verifies); sign-each likewise — both omitted from the drawing "
        "as in the paper's framework."
    )
    return result
