"""Shared infrastructure for the figure/table reproductions.

Each experiment module exposes ``run(fast=False) -> ExperimentResult``.
An :class:`ExperimentResult` holds named *series* (x → y curves, the
stuff the paper plots) and/or *rows* (tabular results), can render
itself as fixed-width text, and carries free-form notes recording
paper-vs-measured observations for EXPERIMENTS.md.

``fast=True`` asks an experiment to shrink sweep resolution (not
semantics) so the pytest-benchmark harness stays snappy.

Experiments whose cost is a grid of independent Monte-Carlo points can
evaluate the grid through :func:`sweep` (re-exported from
:mod:`repro.parallel`): pass a module-level function and a list of
parameter points and the points fan out across the process pool sized
by the CLI's ``--workers`` flag, in grid order, with identical results
at any pool size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.obs.registry import get_registry
from repro.obs.spans import span
from repro.parallel.pool import sweep as _pool_sweep

__all__ = ["Series", "ExperimentResult", "format_table", "sweep"]


def sweep(fn, grid, workers=None):
    """Instrumented :func:`repro.parallel.pool.sweep`.

    Identical semantics and results; when metrics are on, the sweep is
    timed as one span and its grid size counted, so ``--profile``
    attributes an experiment's cost to its parameter sweeps.
    """
    points = list(grid)
    registry = get_registry()
    if registry.enabled:
        registry.count("sweep.runs")
        registry.count("sweep.points", len(points))
    with span("sweep"):
        return _pool_sweep(fn, points, workers)


@dataclass(frozen=True)
class Series:
    """One labeled curve: paired x and y values."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x vs {len(self.y)} y"
            )

    @property
    def y_min(self) -> float:
        return min(self.y)

    @property
    def y_max(self) -> float:
        return max(self.y)

    def as_rows(self) -> List[Dict[str, float]]:
        """Tabular view of the curve."""
        return [{"x": xv, self.label: yv} for xv, yv in zip(self.x, self.y)]


def format_table(rows: Sequence[Mapping[str, object]],
                 float_digits: int = 4) -> str:
    """Render rows as a fixed-width text table (stable column order).

    Columns are the union of keys in first-appearance order; floats are
    rounded to ``float_digits``.
    """
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(row: Mapping[str, object], column: str) -> str:
        value = row.get(column, "")
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    widths = {
        column: max(len(column), *(len(cell(row, column)) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    divider = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell(row, column).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    return "\n".join([header, divider] + body)


@dataclass
class ExperimentResult:
    """Everything one figure/table reproduction produced.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"fig8a"`` or ``"sec3-example"``.
    title:
        One-line description.
    series:
        Plotted curves keyed by label.
    rows:
        Tabular results (used by table-style experiments).
    notes:
        Paper-vs-measured observations, one string each.
    """

    experiment_id: str
    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, x: Sequence[float],
                   y: Sequence[float]) -> Series:
        """Attach a curve and return it."""
        series = Series(label=label, x=tuple(x), y=tuple(y))
        self.series[label] = series
        return series

    def note(self, text: str) -> None:
        """Record a paper-vs-measured observation."""
        self.notes.append(text)

    def render(self, float_digits: int = 4) -> str:
        """Human-readable report: title, curves as tables, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows, float_digits))
        for label, series in self.series.items():
            merged = [
                {"x": xv, label: yv} for xv, yv in zip(series.x, series.y)
            ]
            parts.append(format_table(merged, float_digits))
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def series_table(self, x_name: str = "x") -> List[Dict[str, object]]:
        """All curves merged on x into one table (assumes shared grid)."""
        if not self.series:
            return []
        labels = list(self.series)
        base = self.series[labels[0]]
        table = []
        for index, xv in enumerate(base.x):
            row: Dict[str, object] = {x_name: xv}
            for label in labels:
                series = self.series[label]
                if index < len(series.y) and series.x[index] == xv:
                    row[label] = series.y[index]
            table.append(row)
        return table
