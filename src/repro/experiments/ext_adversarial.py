"""Extension: security invariants under an actively hostile channel.

The passive experiments measure what *loss* does to verifiability;
this one measures what an *attacker* cannot do.  Every registered
scheme's wire stream crosses an adversarial channel (bit flips, forged
injections, replays, truncation, reorder jitter — the Sec. 2 threat
model made concrete) and two invariants are checked:

* **soundness** — no forged or corrupted content is ever accepted as
  verified, for any scheme, under any mix;
* **completeness** — the attack buys the adversary nothing beyond
  loss: the attacked empirical ``q_i`` tracks the scheme's own
  analytic profile evaluated at the *effective* loss rate
  ``p_eff = 1 - (1-p)(1-c)``, corruption composed onto loss.

The attack mixes come from :func:`repro.analysis.conformance.attack_mix`
(the same ones the conformance suite and CI run); ``--attack`` on the
CLI narrows the run to a subset of mixes.
"""

from __future__ import annotations

from repro.analysis.conformance import (
    ADVERSARIAL_MIXES,
    DEFAULT_SPECS,
    adversarial_conformance_report,
)
from repro.experiments.common import ExperimentResult
from repro.faults import get_default_attack
from repro.parallel import get_default_workers

__all__ = ["run"]

SEED = 2003
BLOCK = 12
LOSS_RATE = 0.1


def run(fast: bool = False) -> ExperimentResult:
    """Soundness counters and model deviation per (scheme, mix)."""
    result = ExperimentResult(
        experiment_id="ext-adversarial",
        title="Adversarial channel: soundness and effective-loss conformance",
    )
    mixes = get_default_attack() or list(ADVERSARIAL_MIXES)
    trials = 60 if fast else 500
    workers = get_default_workers()
    all_sound = True
    for name in DEFAULT_SPECS:
        for mix in mixes:
            report = adversarial_conformance_report(
                name, BLOCK, LOSS_RATE, mix, trials, seed=SEED,
                workers=workers)
            counters = report["counters"]
            all_sound = all_sound and report["sound"]
            deviation = report["max_deviation_se"]
            result.rows.append({
                "scheme": name,
                "mix": mix,
                "p_eff": report["effective_loss_rate"],
                "corrupted": counters["corrupted"],
                "injected": counters["injected"],
                "replayed": counters["replayed"],
                "undecodable": counters["undecodable"],
                "forged_rejected": counters["forged_rejected"],
                "replays_dropped": counters["replays_dropped"],
                "forged_accepted": counters["forged_accepted"],
                "policy": report["policy"],
                "max_dev_se": "—" if deviation is None else deviation,
                "passed": report["passed"],
            })
    result.note(
        "soundness holds across every scheme and mix: forged_accepted "
        "is 0 everywhere — corrupted, forged and replayed packets are "
        "counted and discarded, never trusted." if all_sound else
        "SOUNDNESS VIOLATION: at least one forged packet was accepted "
        "as verified; see the forged_accepted column."
    )
    result.note(
        "completeness: attacked q_i tracks each scheme's analytic "
        "profile at the effective loss rate p_eff = 1-(1-p)(1-c) "
        "within 3 SE (corruption behaves like loss); SAIDA and TESLA "
        "under pollution are held one-sided because their receivers "
        "salvage authentic content out of partially tampered "
        "deliveries, and TESLA under dos is exempt because reorder "
        "jitter perturbs Eq. 6's timing term independently of loss."
    )
    return result
