"""Figure 7: EMSS q_min against m (hash copies) and d (spacing).

Paper setting: block size 1000, loss rates 0.1 / 0.3 / 0.5.  Expected
shapes: ``q_min`` levels off once ``m`` exceeds a small value (2–4) —
interesting because m is exactly the per-packet overhead — and is
insensitive to ``d`` until ``m·d`` becomes a sizable fraction of the
block (paper: change significant only when the change in d exceeds
~20% of n).
"""

from __future__ import annotations

from repro.analysis import emss as analysis
from repro.experiments.common import ExperimentResult

__all__ = ["run", "BLOCK_SIZE", "LOSS_RATES"]

BLOCK_SIZE = 1000
LOSS_RATES = (0.1, 0.3, 0.5)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep q_min over m at d=1 and over d at m=2, n=1000."""
    result = ExperimentResult(
        experiment_id="fig7",
        title="EMSS q_min vs m and d, n=1000, p in {0.1, 0.3, 0.5}",
    )
    m_values = [1, 2, 4, 6] if fast else [1, 2, 3, 4, 5, 6]
    d_values = [1, 10, 100, 300] if fast else [1, 2, 5, 10, 20, 50, 100, 200, 300]
    for p in LOSS_RATES:
        m_curve = [analysis.q_min(BLOCK_SIZE, m, 1, p) for m in m_values]
        result.add_series(f"vs m (d=1), p={p:g}", m_values, m_curve)
        d_curve = [analysis.q_min(BLOCK_SIZE, 2, d, p) for d in d_values]
        result.add_series(f"vs d (m=2), p={p:g}", d_values, d_curve)
    # Shape checks.
    for p in LOSS_RATES:
        m_series = result.series[f"vs m (d=1), p={p:g}"]
        span = m_series.y[-1] - m_series.y[0]
        gain_last = m_series.y[-1] - m_series.y[-2]
        result.rows.append({
            "p": p,
            "total gain over m": span,
            "gain at last m step": gain_last,
        })
        if span > 0 and gain_last > 0.15 * span:
            result.note(f"WARNING: no level-off in m at p={p}")
    result.note(
        "q_min saturates by m≈2–4 (diminishing returns per extra hash) "
        "and barely moves with d until m*d approaches ~20% of n — the "
        "paper's Figure 7 conclusions."
    )
    return result
