"""Extension: multicast distribution trees over a real topology.

The paper's receivers each get an independent loss draw; a deployed
multicast session pushes every packet down a distribution tree, so a
single hot spine edge degrades a whole subtree at once and the
per-receiver losses stop being independent.  This experiment runs the
live serving loop over :mod:`repro.topology` graphs and measures the
two levers the tree model adds:

* **per-subtree adaptation** — on a heterogeneous spine (one router's
  uplink three times as lossy as its sibling's) a single global
  controller must split the difference, over-protecting the clean
  subtree and under-protecting the hot one.  Folding loss reports per
  subtree lets each group settle on its own EMSS design point; the
  headline number is the delivered-verified ratio (verified packets
  over packets addressed), global vs per-subtree, under a loss ramp
  0.05 → 0.3;
* **k-redundant trees** — on a dual-plane spine, a second
  edge-disjoint tree turns spine loss into an AND of two independent
  failures.  The receiver deduplicates, the channel accounts every
  suppressed copy, and the same ratio quantifies what the second
  plane buys at spine loss 0.25.

Soundness is asserted across both arms: no forged packet is ever
accepted, topology or not.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.serve.service import ServeConfig, run_live_session

__all__ = ["run"]

SEED = 7

#: One spine uplink 3x as lossy as the other — the shape where a
#: global design point is wrong for both subtrees at once.
HOT_SPINE = "spine:2:3,1"
DUAL_SPINE = "dualspine:2"


def _ratio(result, config: ServeConfig) -> float:
    """Verified packets over packets addressed (the headline metric)."""
    verified = sum(tally.verified for stats in result.stats.values()
                   for tally in stats.tallies.values())
    return verified / (config.blocks * config.block_size * config.receivers)


def run(fast: bool = False) -> ExperimentResult:
    """Tree-topology serving: per-subtree adaptation and k-redundancy."""
    result = ExperimentResult(
        experiment_id="ext-topology",
        title="Multicast trees: per-subtree adaptation and redundant paths",
    )
    blocks = 12 if fast else 24
    step = blocks // 3
    ramp = ((0, 0.05), (step, 0.15), (2 * step, 0.3))
    base = dict(receivers=8, blocks=blocks, block_size=12, seed=SEED,
                loss_schedule=ramp, topology=HOT_SPINE)
    arms = {
        "global controller": ServeConfig(**base),
        "per-subtree controller": ServeConfig(**base, subtree_adaptive=True),
    }
    ratios = {}
    forged = 0
    for label, config in arms.items():
        session = run_live_session(config)
        ratios[label] = _ratio(session, config)
        forged += session.forged_accepted
        switches = sum(1 for event in session.events if event.switched)
        result.rows.append({
            "arm": label,
            "topology": HOT_SPINE,
            "loss ramp": "0.05 -> 0.3",
            "delivered-verified ratio": round(ratios[label], 4),
            "parameter switches": switches,
        })

    k_blocks = 8 if fast else 16
    k_base = dict(receivers=8, blocks=k_blocks, block_size=12, seed=SEED,
                  loss_schedule=((0, 0.25),), topology=DUAL_SPINE)
    k_ratios = {}
    for k in (1, 2):
        config = ServeConfig(**k_base, trees=k)
        session = run_live_session(config)
        k_ratios[k] = _ratio(session, config)
        forged += session.forged_accepted
        result.rows.append({
            "arm": f"k={k} tree(s)",
            "topology": DUAL_SPINE,
            "loss ramp": "0.25 flat",
            "delivered-verified ratio": round(k_ratios[k], 4),
            "duplicates suppressed": session.duplicates_suppressed,
        })

    gain = ratios["per-subtree controller"] - ratios["global controller"]
    result.note(
        f"hot spine ({HOT_SPINE}): folding loss reports per subtree "
        f"moves the delivered-verified ratio by {gain:+.4f} over one "
        "global controller — the hot subtree gets a harder EMSS design "
        "while the clean one keeps its cheaper graph."
    )
    result.note(
        f"dual-plane spine at p=0.25: a second edge-disjoint tree "
        f"lifts the ratio from {k_ratios[1]:.4f} to {k_ratios[2]:.4f}; "
        "every duplicate copy is suppressed at the receiver and "
        "accounted, so the gain is pure delivery probability."
    )
    result.note(
        "soundness: forged_accepted totals "
        f"{forged} across all four arms."
        if forged == 0 else
        "SOUNDNESS VIOLATION: forged content verified over a topology."
    )
    return result
