"""Extension: the live serving loop under a loss ramp and attack.

The offline experiments pick scheme parameters *before* the run; the
paper's closing complaint — "there is no effective way of choosing
these parameters" — really bites when the channel changes underneath
a running stream.  This experiment exercises :mod:`repro.serve`'s
answer: a live session streams blocks to concurrent receivers while
the channel loss ramps up mid-stream (optionally with the
``pollution`` adversary riding on top), and the adaptive controller
re-designs the EMSS dependence graph from the receivers' own loss
reports.

Reported per phase (scheme × scheduled loss): empirical ``q_min``
against the controller's predicted ``q_min``, plus the adaptation
trace — which blocks switched parameters and what the pooled loss
estimate read at the time.  Soundness (``forged_accepted == 0``) is
asserted end-to-end through the wire path.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.serve.loadgen import run_loadgen
from repro.serve.service import ServeConfig

__all__ = ["run"]

SEED = 2003


def run(fast: bool = False) -> ExperimentResult:
    """Live adaptive session: loss ramp, pollution mix, q_min per phase."""
    result = ExperimentResult(
        experiment_id="ext-live",
        title="Live serving: adaptive scheme control under a loss ramp",
    )
    receivers = 4 if fast else 8
    blocks = 16 if fast else 40
    ramp_at = blocks // 2
    config = ServeConfig(
        receivers=receivers, blocks=blocks, block_size=12,
        loss_schedule=((0, 0.05), (ramp_at, 0.3)), attack="pollution",
        seed=SEED,
    )
    loadgen = run_loadgen(config)
    session = loadgen.session
    for phase in sorted(session.stats):
        stats = session.stats[phase]
        received = sum(t.received for t in stats.tallies.values())
        result.rows.append({
            "phase": phase,
            "received": received,
            "q_min": stats.q_min if received else "—",
            "mean_delay": stats.mean_delay,
            "forged_accepted": stats.forged_accepted,
        })
    switches = [event for event in session.events if event.switched]
    for event in switches:
        result.rows.append({
            "phase": f"switch@block{event.block_id}",
            "p_hat": round(event.p_hat, 4),
            "p_design": event.p_design,
            "scheme": f"emss{event.parameters}",
            "predicted_q_min": round(event.predicted_q_min, 4),
        })
    result.note(
        f"loss ramps 0.05 -> 0.3 at block {ramp_at}; the controller "
        f"re-optimized {len(switches)} time(s) from pooled receiver "
        "loss reports, trading hash overhead for robustness exactly "
        "as the offline design optimizer would at the new operating "
        "point."
    )
    result.note(
        "soundness: forged_accepted is "
        f"{session.forged_accepted} across "
        f"{receivers * blocks} receiver-blocks under the pollution "
        "mix — the live wire path inherits the strict-decoder and "
        "digest-audit guarantees of the offline harness."
        if session.forged_accepted == 0 else
        "SOUNDNESS VIOLATION: forged content verified in the live path."
    )
    return result
