"""Figure 8: q_min of four schemes vs loss rate p and block size n.

The paper compares Rohatgi's, TESLA, EMSS ``E_{2,1}`` and AC
``C_{3,3}``: Rohatgi collapses immediately; the other three stay high
and close, with TESLA ahead at large p when its disclosure delay
comfortably exceeds μ and σ.
"""

from __future__ import annotations

from repro.analysis.compare import TeslaEnvironment, sweep_block_size, sweep_loss
from repro.experiments.common import ExperimentResult
from repro.schemes.registry import paper_comparison_schemes

__all__ = ["run", "TESLA_ENV"]

#: Generous disclosure delay relative to delay/jitter, as the paper
#: assumes when TESLA "can outperform EMSS and AC".
TESLA_ENV = TeslaEnvironment(t_disclose=1.0, mu=0.2, sigma=0.1)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep q_min over p at n=1000 (8a) and over n at p=0.1 (8b)."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="q_min: Rohatgi vs TESLA vs EMSS E_{2,1} vs AC C_{3,3}",
    )
    schemes = paper_comparison_schemes()
    n_fixed = 200 if fast else 1000
    p_values = [0.05, 0.1, 0.3, 0.5] if fast else [
        0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    loss_curves = sweep_loss(schemes, n_fixed, p_values, TESLA_ENV)
    for name, values in loss_curves.items():
        result.add_series(f"vs p: {name}", p_values, values)
    n_values = [100, 400, 1000] if fast else [100, 200, 500, 1000, 2000, 5000]
    size_curves = sweep_block_size(schemes, n_values, 0.1, TESLA_ENV)
    for name, values in size_curves.items():
        result.add_series(f"vs n: {name}", n_values, values)
    # Shape checks from the paper's discussion.
    rohatgi_large_n = size_curves["rohatgi"][-1]
    emss_large_n = size_curves["emss(2,1)"][-1]
    ac_large_n = size_curves["ac(3,3)"][-1]
    result.rows.append({
        "check": "Rohatgi collapses, others robust (largest n, p=0.1)",
        "rohatgi": rohatgi_large_n,
        "emss(2,1)": emss_large_n,
        "ac(3,3)": ac_large_n,
    })
    if rohatgi_large_n > 1e-3 or emss_large_n < 0.9 or ac_large_n < 0.7:
        result.note("WARNING: robustness ordering deviates from the paper")
    tesla_high_p = loss_curves[schemes[1].name][-1]
    emss_high_p = loss_curves["emss(2,1)"][-1]
    if tesla_high_p <= emss_high_p:
        result.note("WARNING: TESLA should lead at the largest p")
    result.note(
        "Rohatgi's q_min is negligible beyond small blocks; EMSS/AC/"
        "TESLA are close and n-insensitive; TESLA leads at large p "
        "given T_disclose >> mu, sigma — Figure 8's story."
    )
    return result
