"""Figure 4: TESLA q_min vs normalized disclosure delay and loss rate.

Axes as in the paper: ``T_disclose/σ`` (how much slack the disclosure
delay leaves over jitter) and packet loss ``p``, for several relative
mean delays ``μ = α·T_disclose``.  Expected shape: robust to loss —
``q_min`` falls only linearly as ``(1-p)`` — provided ``T_disclose``
is large relative to μ and σ; for small ratios the Φ term crushes
everything.
"""

from __future__ import annotations

from repro.analysis import tesla as analysis
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Sweep q_min over (T_disclose/sigma, p) for three alphas."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="TESLA q_min vs T_disclose/sigma and loss rate p",
    )
    ratios = [0.5, 1, 2, 4, 8] if fast else [0.5, 1, 1.5, 2, 3, 4, 6, 8]
    losses = [0.0, 0.3, 0.6, 0.9] if fast else [
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    alphas = [0.2, 0.5, 0.8]
    for alpha in alphas:
        for p in losses:
            values = [analysis.q_min_normalized(p, ratio, alpha)
                      for ratio in ratios]
            result.add_series(f"alpha={alpha:g},p={p:g}", ratios, values)
    # Shape check: at generous ratio, q_min ≈ 1-p (loss-limited).
    generous = [result.series[f"alpha=0.2,p={p:g}"].y[-1] for p in losses]
    for p, value in zip(losses, generous):
        if abs(value - (1.0 - p)) > 0.01:
            result.note(f"WARNING: q_min at large ratio deviates from 1-p={1-p}")
    result.note(
        "with T_disclose >> sigma and mu, q_min -> (1-p): TESLA absorbs "
        "delay/jitter entirely and degrades only with raw loss, the "
        "paper's 'robust to packet loss if T_disclose is chosen "
        "sufficiently large' conclusion."
    )
    return result
