"""Figure 5: augmented-chain q_min against parameters a and b.

Paper setting: fixed block size 1000, loss rates 0.1 / 0.3 / 0.5.
Expected shape: ``q_min`` drops when either ``a`` or ``b`` decreases —
larger ``a`` puts more chain packets in the directly-signed boundary
region and shortens first-level paths; larger ``b`` (at fixed n)
shrinks the first level.
"""

from __future__ import annotations

from repro.analysis import augmented_chain as analysis
from repro.experiments.common import ExperimentResult

__all__ = ["run", "BLOCK_SIZE", "LOSS_RATES"]

BLOCK_SIZE = 1000
LOSS_RATES = (0.1, 0.3, 0.5)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep q_min over the (a, b) grid at n = 1000."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="AC q_min vs (a, b), n=1000, p in {0.1, 0.3, 0.5}",
    )
    a_values = [2, 4, 8] if fast else [2, 3, 4, 5, 6, 8, 10]
    b_values = [1, 3, 7] if fast else [1, 2, 3, 4, 5, 6, 8]
    for p in LOSS_RATES:
        for b in b_values:
            values = [analysis.q_min(BLOCK_SIZE, a, b, p) for a in a_values]
            result.add_series(f"p={p:g},b={b}", a_values, values)
    # Shape check: q_min non-decreasing in a at each (p, b).
    for label, series in result.series.items():
        for earlier, later in zip(series.y, series.y[1:]):
            if later < earlier - 1e-9:
                result.note(f"WARNING: q_min decreased with a in {label}")
                break
    result.note(
        "q_min is non-decreasing in both a and b at fixed n=1000, "
        "dropping when either decreases — the paper's Figure 5 "
        "behaviour.  The dependence is strong at p=0.5 (where the "
        "Eq. 10 chain recurrence decays with depth) and flattens at "
        "p<=0.3 where the recurrence saturates at its fixed point "
        "1-(p/(1-p))^2 regardless of (a, b)."
    )
    return result
