"""Extension: the Section 5 design constructions, exercised end to end.

Runs the three construction methods the paper sketches — greedy
tree-plus-edges, the dynamic-programming offset-policy search, and
probabilistic placement — against a common requirement (q_min >= 0.9
at p = 0.2) and compares the overhead each needs, alongside the tuned
EMSS/AC parameter choices from the optimizer.
"""

from __future__ import annotations

from repro.analysis.montecarlo import graph_monte_carlo
from repro.design.constraints import DesignConstraints
from repro.design.disjoint import disjoint_paths_design
from repro.design.dp import search_offset_policy
from repro.design.heuristic import greedy_design
from repro.design.optimizer import optimize_ac, optimize_emss
from repro.design.probabilistic import tune_edge_probability
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Design a block meeting q_min >= 0.9 at p = 0.2 four ways."""
    result = ExperimentResult(
        experiment_id="ext-design",
        title="Sec. 5 constructions: greedy vs DP policy vs probabilistic",
    )
    n = 60 if fast else 120
    p = 0.2
    target = 0.85
    trials = 1500 if fast else 4000

    constraints = DesignConstraints(loss_rate=p, q_min_target=target,
                                    max_out_degree=6, mc_trials=trials)
    greedy = greedy_design(n, constraints, max_extra_edges=8 * n)
    result.rows.append({
        "method": "greedy tree+edges",
        "hashes/pkt": greedy.graph.edge_count / n,
        "q_min": greedy.q_min,
        "evaluator": "exact MC",
        "satisfied": greedy.satisfied,
    })

    policy = search_offset_policy(n, p, target, max_offset=16, max_edges=4)
    result.rows.append({
        "method": f"DP offset policy A={policy.offsets}",
        "hashes/pkt": float(policy.edges_per_packet),
        "q_min": policy.q_min,
        "evaluator": "Eq. 9",
        "satisfied": policy.q_min >= target,
    })

    tuned = tune_edge_probability(n, p, target, trials=trials, seed=17)
    result.rows.append({
        "method": f"probabilistic p_x={tuned.edge_probability:.4f}",
        "hashes/pkt": tuned.mean_hashes,
        "q_min": tuned.q_min,
        "evaluator": "exact MC",
        "satisfied": tuned.q_min >= target,
    })

    emss_choice = optimize_emss(n, p, target)
    result.rows.append({
        "method": f"optimized EMSS (m,d)={emss_choice.parameters}",
        "hashes/pkt": emss_choice.cost,
        "q_min": emss_choice.q_min,
        "evaluator": "Eq. 9",
        "satisfied": True,
    })
    ac_choice = optimize_ac(n, p, target)
    result.rows.append({
        "method": f"optimized AC (a,b)={ac_choice.parameters}",
        "hashes/pkt": ac_choice.cost,
        "q_min": ac_choice.q_min,
        "evaluator": "Eq. 10",
        "satisfied": True,
    })

    # Spread strides: disjointness alone is not enough (adjacent
    # strides give short-burst-fragile chains); spreading the three
    # provably-disjoint chains makes the exact q_min excellent.
    guaranteed = disjoint_paths_design(n, 3, strides=[1, 7, 13])
    guaranteed_q = graph_monte_carlo(guaranteed, p, trials=trials,
                                     seed=23).q_min
    result.rows.append({
        "method": "disjoint-paths design (r=3, strides 1/7/13)",
        "hashes/pkt": guaranteed.edge_count / n,
        "q_min": guaranteed_q,
        "evaluator": "exact MC",
        "satisfied": guaranteed_q >= target,
    })
    result.note(
        "structured policies (DP offsets, tuned EMSS/AC) reach the "
        "target with ~2 hashes/packet; probabilistic placement needs "
        "noticeably more edges for the same q_min.  Rows differ in "
        "evaluator: 'exact MC' designs meet the target under the true "
        "joint loss distribution, 'Eq. 9/10' under the paper's "
        "independence approximation (an upper bound — see ext-gap)."
    )
    return result
