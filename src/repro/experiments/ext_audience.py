"""Extension: one multicast stream across a heterogeneous audience.

The paper's analysis fixes a single loss rate ``p``; a real multicast
audience spans orders of magnitude of path quality simultaneously,
and the sender must pick *one* scheme parameterization for everyone.
This experiment streams the same packets (authenticated once) to five
receiver profiles and compares how three scheme families distribute
quality across the audience:

* EMSS ``E_{2,1}`` — smooth degradation, bad tails on poor paths;
* the same overhead with spread offsets ``{1, 7}`` — better tails;
* SAIDA ``(n, 0.6n)`` — all-or-nothing per path: perfect below its
  cliff, dead above it.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss, GilbertElliottLoss
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.saida import SaidaScheme
from repro.simulation.multicast import ReceiverSpec, run_multicast_session

__all__ = ["run"]


def _audience(seed: int):
    return [
        ReceiverSpec("lan"),
        ReceiverSpec("dsl", loss=BernoulliLoss(0.03, seed=seed),
                     delay=GaussianDelay(0.02, 0.005, seed=seed + 1),
                     protect_signature_packets=False),
        ReceiverSpec("wifi", loss=BernoulliLoss(0.15, seed=seed + 2),
                     delay=GaussianDelay(0.05, 0.02, seed=seed + 3),
                     protect_signature_packets=False),
        ReceiverSpec("mobile",
                     loss=GilbertElliottLoss.from_rate_and_burst(
                         0.12, 6.0, seed=seed + 4),
                     protect_signature_packets=False),
        ReceiverSpec("satellite", loss=BernoulliLoss(0.3, seed=seed + 5),
                     protect_signature_packets=False),
    ]


def run(fast: bool = False) -> ExperimentResult:
    """q across five receiver profiles for three scheme families."""
    result = ExperimentResult(
        experiment_id="ext-audience",
        title="Heterogeneous multicast audience: who gets served?",
    )
    block = 32 if fast else 48
    blocks = 8 if fast else 25
    contenders = [
        EmssScheme(2, 1),
        GenericOffsetScheme((1, 7)),
        SaidaScheme(k_fraction=0.6),
    ]
    profiles = ["lan", "dsl", "wifi", "mobile", "satellite"]
    for scheme in contenders:
        outcome = run_multicast_session(scheme, block, blocks,
                                        _audience(seed=500))
        row = {"scheme": scheme.name}
        for name in profiles:
            row[name] = outcome.per_receiver[name].overall_q
        result.rows.append(row)
    by_scheme = {row["scheme"]: row for row in result.rows}
    # Shape checks: everyone serves the LAN; the erasure code covers
    # the bursty mobile path best; nobody saves the satellite path
    # above SAIDA's cliff except... nobody at this parameterization.
    for row in result.rows:
        if row["lan"] < 0.999:
            result.note(f"WARNING: {row['scheme']} failed a clean path")
    saida_name = contenders[2].name
    if by_scheme[saida_name]["mobile"] <= by_scheme["emss(2,1)"]["mobile"]:
        result.note("WARNING: erasure coding should win the bursty path")
    result.note(
        "one authentication pass serves every path, but quality "
        "diverges: chained schemes degrade per-packet with path loss, "
        "the erasure code splits the audience into fully-served (below "
        "its cliff) and unserved — the multicast design question is "
        "which failure profile the application prefers."
    )
    return result
