"""Equation 1: best/worst-case topology bounds on λ_i.

Validates the Eq. 1 bracket on graphs whose exact λ is computable by
inclusion–exclusion: the exact value must lie between the worst-case
(maximal path overlap) and best-case (vertex-disjoint paths) bounds,
and each bound must be attained by a graph with that topology.
"""

from __future__ import annotations

from repro.core.bounds import lambda_bounds
from repro.core.graph import DependenceGraph
from repro.core.paths import exact_lambda
from repro.experiments.common import ExperimentResult
from repro.schemes.emss import EmssScheme

__all__ = ["run"]


def _disjoint_paths_graph(paths: int, length: int) -> DependenceGraph:
    """Best-case topology: ``paths`` vertex-disjoint chains to a target."""
    n = paths * length + 2
    graph = DependenceGraph(n, root=1)
    target = n
    vertex = 2
    for _ in range(paths):
        previous = 1
        for _ in range(length):
            graph.add_edge(previous, vertex)
            previous = vertex
            vertex += 1
        graph.add_edge(previous, target)
    return graph


def _nested_paths_graph(length: int) -> DependenceGraph:
    """Worst-case-like topology: one chain plus shortcuts (nested paths)."""
    n = length + 2
    graph = DependenceGraph(n, root=1)
    for i in range(1, n):
        graph.add_edge(i, i + 1)
    graph.add_edge(2, n)  # a shorter path sharing vertex 2
    return graph


def run(fast: bool = False) -> ExperimentResult:
    """Check Eq. 1 containment on three topologies at several p."""
    result = ExperimentResult(
        experiment_id="eq1",
        title="Eq. 1 topology bounds vs exact lambda",
    )
    cases = [
        ("disjoint 3x2", _disjoint_paths_graph(3, 2)),
        ("nested chain", _nested_paths_graph(5)),
        ("emss(2,1) n=7", EmssScheme(2, 1).build_graph(7)),
    ]
    p_values = [0.1, 0.3] if fast else [0.05, 0.1, 0.2, 0.3, 0.5]
    for name, graph in cases:
        # Probe the vertex farthest from the root (the interesting one).
        target = graph.n if graph.root != graph.n else 1
        for p in p_values:
            bounds = lambda_bounds(graph, target, p)
            exact = exact_lambda(graph, target, p)
            contained = bounds.contains(exact, tolerance=1e-9)
            result.rows.append({
                "case": name,
                "p": p,
                "lower": bounds.lower,
                "exact": exact,
                "upper": bounds.upper,
                "paths": bounds.path_count,
                "contained": contained,
            })
            if not contained:
                result.note(f"WARNING: Eq. 1 violated for {name} at p={p}")
    result.note(
        "exact lambda always lies within [worst-case, best-case]; "
        "disjoint topologies sit on the upper bound, nested ones on "
        "the lower — Eq. 1 as stated."
    )
    return result
