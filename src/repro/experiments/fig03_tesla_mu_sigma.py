"""Figure 3: TESLA q_min against end-to-end delay μ and jitter σ.

Paper setting: block of 1000 packets, ``T_disclose = 1 s``,
``μ = α·T_disclose``.  The expected shape: ``q_min`` drops as either
``μ`` or ``σ`` increases, collapsing toward ``(1-p)/2`` as μ
approaches ``T_disclose`` (Φ at 0) and further beyond.
"""

from __future__ import annotations

from repro.analysis import tesla as analysis
from repro.experiments.common import ExperimentResult

__all__ = ["run", "T_DISCLOSE", "LOSS_RATE"]

T_DISCLOSE = 1.0
LOSS_RATE = 0.1


def run(fast: bool = False) -> ExperimentResult:
    """Sweep the (α, σ) surface of Eq. 7 at ``T_disclose = 1 s``."""
    result = ExperimentResult(
        experiment_id="fig3",
        title="TESLA q_min vs mean delay (mu = alpha*T_d) and jitter sigma",
    )
    alphas = [0.0, 0.25, 0.5, 0.75, 1.0] if fast else [
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    sigmas = [0.05, 0.2, 0.5, 1.0] if fast else [
        0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0]
    for sigma in sigmas:
        values = [analysis.q_min_alpha(LOSS_RATE, T_DISCLOSE, alpha, sigma)
                  for alpha in alphas]
        result.add_series(f"sigma={sigma:g}", alphas, values)
    for sigma in sigmas:
        series = result.series[f"sigma={sigma:g}"]
        for earlier, later in zip(series.y, series.y[1:]):
            if later > earlier + 1e-12:
                result.note(
                    f"WARNING: non-monotone in alpha at sigma={sigma}"
                )
                break
    result.note(
        "q_min decreases monotonically in mu (alpha) at every sigma, and "
        "larger sigma flattens/depresses the surface — the paper's "
        "Figure 3 shape."
    )
    return result
