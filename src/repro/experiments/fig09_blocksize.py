"""Figure 9: close-up of EMSS / AC / TESLA q_min vs block size.

At p = 0.1 and p = 0.5 the paper zooms in on the three loss-tolerant
schemes: EMSS ``E_{2,1}`` and AC ``C_{3,3}`` track each other closely
(both link every packet to two others — Fig. 7's d-insensitivity
explains why the *arrangement* barely matters), TESLA is flat in n.
"""

from __future__ import annotations

from repro.analysis.compare import TeslaEnvironment, sweep_block_size
from repro.experiments.common import ExperimentResult
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.tesla import TeslaScheme

__all__ = ["run", "TESLA_ENV"]

TESLA_ENV = TeslaEnvironment(t_disclose=1.0, mu=0.2, sigma=0.1)


def run(fast: bool = False) -> ExperimentResult:
    """Sweep n for the three robust schemes at p in {0.1, 0.5}."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="q_min vs n close-up: EMSS E_{2,1}, AC C_{3,3}, TESLA",
    )
    schemes = [EmssScheme(2, 1), AugmentedChainScheme(3, 3), TeslaScheme()]
    n_values = [100, 500, 1000] if fast else [100, 200, 500, 1000, 2000, 5000]
    for p in (0.1, 0.5):
        curves = sweep_block_size(schemes, n_values, p, TESLA_ENV)
        for name, values in curves.items():
            result.add_series(f"p={p:g}: {name}", n_values, values)
        emss_curve = curves["emss(2,1)"]
        ac_curve = curves["ac(3,3)"]
        gap = max(abs(e - a) for e, a in zip(emss_curve, ac_curve))
        result.rows.append({"p": p, "max |EMSS - AC| over n": gap})
        tesla_curve = curves[schemes[2].name]
        flatness = max(tesla_curve) - min(tesla_curve)
        result.rows.append({"p": p, "TESLA spread over n": flatness})
    result.note(
        "at p=0.1 EMSS and AC coincide to within a percent across n "
        "(both sit at the {1,2}-offset fixed point); at p=0.5 both "
        "collapse toward zero, AC a little more slowly thanks to its "
        "level-1 skip edges.  TESLA is exactly flat in n (Eq. 7 has "
        "no n) — Figure 9's picture."
    )
    return result
