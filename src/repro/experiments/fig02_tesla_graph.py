"""Figure 2: the extended dependence-graph of TESLA.

Each packet contributes a message vertex and a key vertex; the signed
bootstrap packet roots everything.  This experiment builds the graph
for a short session, validates the Definition 1 invariants, and checks
the structural count the paper's λ derivation relies on: message
``P_i`` is authenticatable by exactly the keys ``{K_j : j >= i}``.
"""

from __future__ import annotations

from repro.core.render import tesla_to_dot
from repro.core.tesla_graph import TeslaDependenceGraph
from repro.experiments.common import ExperimentResult

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Build and validate the Fig. 2 graph for n = 6, lag 1 and 3."""
    result = ExperimentResult(
        experiment_id="fig2",
        title="TESLA extended dependence-graph (message + key vertices)",
    )
    n = 6
    for lag in (1, 3):
        graph = TeslaDependenceGraph(n, lag=lag)
        graph.validate()
        result.rows.append({
            "lag": lag,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "keys for P_1": len(graph.authenticating_keys(1)),
            "keys for P_n": len(graph.authenticating_keys(n)),
        })
    if not fast:
        result.note("dot (lag=1):\n" + tesla_to_dot(TeslaDependenceGraph(4, 1)))
    result.note(
        "message P_i reachable from bootstrap through every K_j with "
        "j >= i — the structure behind λ_i = 1 − p^{n+1−i}."
    )
    return result
