"""Extension: byte-level implementation vs the graph abstraction.

The dependence-graph is a *model* of the packet stream; this
experiment closes the loop by running real authenticated packets
(hashes, signatures, MACs, key chains — actual bytes) through the
lossy channel and comparing empirical per-position ``q`` against the
graph-level Monte Carlo and, for TESLA, against Eq. 6/7.

Agreement here is the evidence that every analytic number in the other
experiments describes a system that actually exists.
"""

from __future__ import annotations

from repro.analysis import tesla as tesla_analysis
from repro.analysis.montecarlo import graph_monte_carlo
from repro.experiments.common import ExperimentResult
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaParameters
from repro.simulation.runner import (
    WireTrialConfig,
    tesla_monte_carlo,
    wire_monte_carlo,
)

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Wire-level empirical q_min vs graph MC and TESLA formulas."""
    result = ExperimentResult(
        experiment_id="ext-wire",
        title="Byte-level streams vs graph-level analysis",
    )
    p = 0.15
    n = 24 if fast else 48
    trials = 40 if fast else 150
    graph_trials = 20000
    for scheme in [RohatgiScheme(), EmssScheme(2, 1)]:
        config = WireTrialConfig(block_size=n, blocks_per_trial=1,
                                 trials=trials, loss_rate=p)
        wire = wire_monte_carlo(scheme, config)
        graph = graph_monte_carlo(scheme.build_graph(n), p,
                                  trials=graph_trials, seed=53)
        result.rows.append({
            "scheme": scheme.name,
            "wire q_min": wire.q_min,
            "graph q_min": graph.q_min,
            "wire forged": wire.forged,
        })
    # TESLA: one packet per 100 ms interval, lag 5 (T_disclose 0.5 s),
    # Gaussian delay mu=0.1 s sigma=0.05 s.
    parameters = TeslaParameters(interval=0.1, lag=5, chain_length=64,
                                 max_clock_offset=0.0)
    count = 32 if fast else 64
    tesla_trials = 30 if fast else 100
    stats = tesla_monte_carlo(parameters, count, tesla_trials,
                              loss_rate=p, delay_mean=0.1, delay_std=0.05)
    predicted = tesla_analysis.q_min(count, p, parameters.disclosure_delay,
                                     0.1, 0.05)
    result.rows.append({
        "scheme": "tesla (wire)",
        "wire q_min": stats.q_min,
        "graph q_min": predicted,
        "wire forged": 0,
    })
    result.note(
        "wire-level q_min matches the graph Monte Carlo within "
        "sampling error for the chained schemes, and the TESLA "
        "session tracks Eq. 7's (1-p)*Phi((T_d-mu)/sigma); no forged "
        "packets ever verify."
    )
    return result
