"""Per-figure reproduction experiments.

Every table and figure of the paper's evaluation, plus the extensions
DESIGN.md commits to, each as a module with ``run(fast=False)``.
:data:`ALL_EXPERIMENTS` maps experiment ids to their runners for the
CLI and the benchmark harness.
"""

from typing import Callable, Dict

from repro.experiments import (
    eq1_bounds,
    ext_adversarial,
    ext_audience,
    ext_burst_loss,
    ext_design,
    ext_design_service,
    ext_erasure,
    ext_independence_gap,
    ext_live,
    ext_psign_replication,
    ext_topology,
    ext_variance,
    ext_wire_validation,
    fig01_graphs,
    fig02_tesla_graph,
    fig03_tesla_mu_sigma,
    fig04_tesla_disclose_loss,
    fig05_ac_ab,
    fig06_ac_fixed_level1,
    fig07_emss_md,
    fig08_scheme_compare,
    fig09_blocksize,
    fig10_overhead_delay,
    sec3_example,
)
from repro.experiments.common import ExperimentResult, Series, format_table

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "Series", "format_table"]

ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig01_graphs.run,
    "fig2": fig02_tesla_graph.run,
    "sec3-example": sec3_example.run,
    "fig3": fig03_tesla_mu_sigma.run,
    "fig4": fig04_tesla_disclose_loss.run,
    "fig5": fig05_ac_ab.run,
    "fig6": fig06_ac_fixed_level1.run,
    "fig7": fig07_emss_md.run,
    "fig8": fig08_scheme_compare.run,
    "fig9": fig09_blocksize.run,
    "fig10": fig10_overhead_delay.run,
    "eq1": eq1_bounds.run,
    "ext-adversarial": ext_adversarial.run,
    "ext-audience": ext_audience.run,
    "ext-burst": ext_burst_loss.run,
    "ext-design": ext_design.run,
    "ext-design-service": ext_design_service.run,
    "ext-erasure": ext_erasure.run,
    "ext-gap": ext_independence_gap.run,
    "ext-live": ext_live.run,
    "ext-psign": ext_psign_replication.run,
    "ext-topology": ext_topology.run,
    "ext-variance": ext_variance.run,
    "ext-wire": ext_wire_validation.run,
}
