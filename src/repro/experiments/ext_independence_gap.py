"""Extension: how tight is the paper's path-independence assumption?

Eq. 8–10 treat the failure of distinct root-paths as independent
events.  Paths through a chain share most of their vertices, so
failures are strongly positively correlated and the recurrence is an
*upper bound* on the true ``q_i`` (P(A∪B) <= P(A)+P(B)−P(A)P(B) under
positive correlation).  This experiment quantifies the gap for EMSS
``E_{2,1}`` and AC ``C_{3,3}`` by comparing the recurrences against
exact Monte Carlo on the same graphs across block sizes.

The finding (recorded in EXPERIMENTS.md): the recurrence converges to
a fixed point independent of ``n`` while the exact probability decays
geometrically — for ``E_{2,1}`` at ``p = 0.1`` roughly as ``0.991^n``
(the probability of *no two consecutive losses* anywhere in the
block).  The paper's *qualitative* conclusions (scheme ordering,
parameter sensitivities) survive; its absolute ``q_min`` values for
large blocks do not.
"""

from __future__ import annotations

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.analysis import exact_chain
from repro.analysis.exact_periodic import exact_periodic_q_min
from repro.analysis.montecarlo import graph_monte_carlo
from repro.experiments.common import ExperimentResult
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Recurrence vs exact values across block sizes.

    For EMSS ``E_{2,1}`` the exact value comes from the closed Markov
    evaluation (:mod:`repro.analysis.exact_chain`) — no sampling error
    at all — cross-checked by Monte Carlo; AC has no such closed form,
    so exact Monte Carlo stands in.
    """
    result = ExperimentResult(
        experiment_id="ext-gap",
        title="Eq. 8/10 independence assumption vs exact evaluation",
    )
    p = 0.1
    sizes = [50, 200] if fast else [50, 100, 200, 400, 800]
    trials = 3000 if fast else 12000
    emss = EmssScheme(2, 1)
    ac = AugmentedChainScheme(3, 3)
    for n in sizes:
        emss_rec = emss_analysis.q_min(n, 2, 1, p)
        emss_exact = exact_chain.exact_q_min(n, 2, p)
        emss_mc = graph_monte_carlo(emss.build_graph(n), p,
                                    trials=trials, seed=41).q_min
        ac_rec = ac_analysis.q_min(n, 3, 3, p)
        ac_mc = graph_monte_carlo(ac.build_graph(n), p,
                                  trials=trials, seed=43).q_min
        spread_exact = exact_periodic_q_min(n, [1, 7], p)
        result.rows.append({
            "n": n,
            "EMSS Eq.8": emss_rec,
            "EMSS exact": emss_exact,
            "EMSS exact MC": emss_mc,
            "spread{1,7} exact": spread_exact,
            "AC Eq.10": ac_rec,
            "AC exact MC": ac_mc,
        })
        if emss_rec + 1e-9 < emss_exact:
            result.note(f"WARNING: Eq.8 below exact at n={n}")
        if abs(emss_mc - emss_exact) > 0.05:
            result.note(f"WARNING: MC disagrees with closed form at n={n}")
    rate = exact_chain.asymptotic_decay_rate(2, p)
    result.note(
        f"the recurrences upper-bound the exact values (positive path "
        f"correlation); the exact E_21 q_min decays as ~{rate:.4f}^n "
        f"(largest transient eigenvalue of the run-length chain) while "
        f"the recurrence sits at its fixed point.  AC's skip edges slow "
        f"the true decay substantially — a real robustness difference "
        f"the independence approximation erases."
    )
    result.note(
        "the spread{1,7} column (exact transfer-matrix, same 2 hashes/"
        "packet as E_21) shows the same effect within EMSS itself: "
        "spreading the two copies apart dramatically slows the exact "
        "decay even under iid loss, while Eq. 9 — which is literally "
        "invariant in the spacing d — predicts no difference at all."
    )
    return result
