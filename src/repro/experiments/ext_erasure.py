"""Extension: erasure-coded authentication (SAIDA) vs hash chaining.

A contemporaneous alternative the paper does not cover: spread the
block's authentication blob across packets with an (n, k) erasure code
instead of chaining hashes.  This experiment contrasts the two design
families on the axes the paper cares about:

* **iid loss sweep** — SAIDA's closed-form ``q`` is a cliff at
  ``p ≈ 1 − k/n``: near-perfect below, near-zero above, while the
  chained schemes decay smoothly;
* **burst sensitivity** — the code counts erasures, so at a fixed
  *realized* loss count SAIDA is literally indifferent to burstiness;
  under Gilbert–Elliott at a fixed *mean* rate only the count variance
  matters (slightly more sub-threshold blocks);
* **overhead/delay** — one blob share per packet
  (~``(l_sig + n·l_hash)/k``) against ~2 hashes + amortized signature.
"""

from __future__ import annotations

from repro.analysis import saida as saida_analysis
from repro.analysis.exact_chain import exact_q_min
from repro.analysis.montecarlo import graph_monte_carlo_model
from repro.experiments.common import ExperimentResult
from repro.network.loss import GilbertElliottLoss
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.saida import SaidaScheme

__all__ = ["run"]


def _saida_q_under_model(n: int, k: int, model, trials: int) -> float:
    """Empirical SAIDA q under an arbitrary loss model.

    A packet verifies iff it arrives and the block collects >= k
    packets in total — directly computable from loss patterns.
    """
    model.reset()
    received_total = 0
    verified_total = 0
    for _ in range(trials):
        pattern = [not model.is_lost() for _ in range(n)]
        count = sum(pattern)
        received_total += count
        if count >= k:
            verified_total += count
    return verified_total / received_total if received_total else 0.0


def run(fast: bool = False) -> ExperimentResult:
    """SAIDA vs EMSS/AC across loss rates and burst lengths."""
    result = ExperimentResult(
        experiment_id="ext-erasure",
        title="Erasure-coded authentication (SAIDA) vs hash chaining",
    )
    n = 60 if fast else 120
    trials = 1500 if fast else 5000
    saida = SaidaScheme(k_fraction=0.6)
    k = saida.threshold(n)
    cliff = saida_analysis.loss_cliff(n, k)

    # ---- iid sweep: closed forms --------------------------------------
    p_values = [0.1, 0.3, 0.5] if fast else [0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
    saida_curve = [saida_analysis.q_min(n, k, p) for p in p_values]
    emss_curve = [exact_q_min(n, 2, p) for p in p_values]
    result.add_series("saida (exact)", p_values, saida_curve)
    result.add_series("emss(2,1) (exact)", p_values, emss_curve)
    for p, q in zip(p_values, saida_curve):
        if p < cliff - 0.15 and q < 0.99:
            result.note(f"WARNING: SAIDA should be ~1 below its cliff (p={p})")
        if p > cliff + 0.15 and q > 0.01:
            result.note(f"WARNING: SAIDA should be ~0 above its cliff (p={p})")

    # ---- burst sensitivity at mean rate 0.2 (cliff at 0.4) -----------
    rate = 0.2
    bursts = [2, 8] if fast else [2, 4, 8, 16]
    saida_burst, emss_burst, ac_burst = [], [], []
    emss_graph = EmssScheme(2, 1).build_graph(n)
    ac_graph = AugmentedChainScheme(3, 3).build_graph(n)
    for burst in bursts:
        model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=13)
        saida_burst.append(_saida_q_under_model(n, k, model, trials))
        model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=13)
        emss_burst.append(graph_monte_carlo_model(
            emss_graph, model, trials=max(trials // 3, 400)).q_min)
        model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=13)
        ac_burst.append(graph_monte_carlo_model(
            ac_graph, model, trials=max(trials // 3, 400)).q_min)
    result.add_series("saida vs burst", bursts, saida_burst)
    result.add_series("emss(2,1) vs burst", bursts, emss_burst)
    result.add_series("ac(3,3) vs burst", bursts, ac_burst)

    # ---- cost table ----------------------------------------------------
    for scheme in (saida, EmssScheme(2, 1), AugmentedChainScheme(3, 3)):
        metrics = scheme.metrics(n, l_sign=128, l_hash=16)
        result.rows.append({
            "scheme": scheme.name,
            "bytes/pkt": metrics.overhead_bytes,
            "delay (slots)": metrics.delay_slots,
        })
    result.note(
        f"SAIDA({n},{k}) holds q ~ 1 for every mean loss below its "
        f"cliff at {cliff:.2f} regardless of burstiness — erasure codes "
        "count losses, not patterns — then collapses outright; hash "
        "chains degrade smoothly but burst-sensitively.  SAIDA pays "
        "more bytes per packet (the blob share) and a k-packet decode "
        "delay; its per-packet q variance is exactly zero."
    )
    return result
