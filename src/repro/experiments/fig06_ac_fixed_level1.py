"""Figure 6: AC q_min vs b with the first level held constant.

"if the number of packets in the first level is kept constant (i.e. n
varies with b), increasing b has little effect on q_min ... q_min is
relatively insensitive to the variation of b if b is larger than a
certain value.  Because of this, AC provides an efficient way to
insert new packets without degrading the performance of the scheme."

We hold the number of first-level chain packets fixed and let
``n = chain·(b+1) + 1`` grow with ``b``.
"""

from __future__ import annotations

from repro.analysis import augmented_chain as analysis
from repro.experiments.common import ExperimentResult
from repro.schemes.augmented_chain import AugmentedChainScheme

__all__ = ["run", "CHAIN_PACKETS"]

CHAIN_PACKETS = 100


def run(fast: bool = False) -> ExperimentResult:
    """Sweep b with 100 first-level packets; n grows as chain*(b+1)+1."""
    result = ExperimentResult(
        experiment_id="fig6",
        title="AC q_min vs b at fixed first-level size (n varies with b)",
    )
    a = 3
    b_values = [1, 2, 4, 8] if fast else [1, 2, 3, 4, 5, 6, 8, 10, 12]
    for p in (0.1, 0.3, 0.5):
        values = []
        for b in b_values:
            n = AugmentedChainScheme.block_size_for_chain(CHAIN_PACKETS, b)
            values.append(analysis.q_min(n, a, b, p))
        result.add_series(f"p={p:g}", b_values, values)
    # Shape check: flat beyond small b — relative spread of the tail.
    for label, series in result.series.items():
        tail = series.y[2:] if len(series.y) > 2 else series.y
        spread = max(tail) - min(tail)
        result.rows.append({"series": label, "tail spread": spread})
        if spread > 0.02:
            result.note(f"WARNING: {label} tail varies by {spread:.4f}")
    result.note(
        "with the first level fixed, q_min is insensitive to b beyond "
        "small values — inserted packets are essentially free, the "
        "paper's Figure 6 observation."
    )
    return result
