"""Figure 10: overhead and delay comparison across schemes.

One row per scheme with the paper's cost metrics: hashes/packet,
bytes/packet (``l_sign = 128``, ``l_hash = 16``), deterministic
receiver delay and both buffer sizes.  Expected shape: the
hash-chained schemes (Rohatgi, EMSS, AC) carry similar small
overheads; sign-each and Wong–Lam pay a signature (plus a Merkle path)
on every packet; TESLA pays a MAC + key per packet; Rohatgi uniquely
combines low overhead with zero delay, and EMSS/AC/TESLA all buffer at
the receiver.
"""

from __future__ import annotations

from repro.analysis.compare import overhead_delay_table
from repro.experiments.common import ExperimentResult
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.sign_each import SignEachScheme
from repro.schemes.tesla import TeslaScheme
from repro.schemes.wong_lam import WongLamScheme

__all__ = ["run", "BLOCK_SIZE", "L_SIGN", "L_HASH"]

BLOCK_SIZE = 128
L_SIGN = 128
L_HASH = 16


def run(fast: bool = False) -> ExperimentResult:
    """Tabulate overhead/delay for all six schemes at n = 128."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Overhead and delay for different schemes (n=128)",
    )
    schemes = [
        RohatgiScheme(),
        WongLamScheme(),
        EmssScheme(2, 1),
        AugmentedChainScheme(3, 3),
        TeslaScheme(),
        SignEachScheme(),
    ]
    result.rows = overhead_delay_table(schemes, BLOCK_SIZE,
                                       l_sign=L_SIGN, l_hash=L_HASH)
    by_name = {row["scheme"]: row for row in result.rows}
    chained = [by_name["rohatgi"], by_name["emss(2,1)"], by_name["ac(3,3)"]]
    heavy = [by_name["wong-lam"], by_name["sign-each"]]
    if max(r["bytes/pkt"] for r in chained) >= min(r["bytes/pkt"] for r in heavy):
        result.note("WARNING: chained schemes should be cheaper per packet")
    if by_name["rohatgi"]["delay (slots)"] != 0:
        result.note("WARNING: Rohatgi must have zero receiver delay")
    if by_name["emss(2,1)"]["delay (slots)"] == 0:
        result.note("WARNING: EMSS must buffer until the signature packet")
    result.note(
        "hash-chained schemes carry ~1–2 hashes/packet plus one "
        "amortized signature; Wong–Lam and sign-each pay l_sign (plus "
        "log2(n) hashes) on every packet; EMSS/AC/TESLA need receiver "
        "buffering, Rohatgi and the per-packet schemes do not — the "
        "paper's Figure 10 comparison."
    )
    return result
