"""Extension: what does the "P_sign always received" assumption cost?

Every analysis in the paper conditions on the signature packet
arriving, noting it "can be easily achieved by sending it multiple
times".  This ablation removes the modeling shortcut: signature
packets go through the same lossy channel as everything else, sent
``c`` times, and we measure the empirical ``q_min`` as ``c`` grows —
alongside the analytic prediction

    ``q_i(c) = (1 − p^c) · q_i(protected)``

(the root survives iff any copy does; its loss voids the block) and
the overhead each extra copy adds (Eq. 3's ``sign_copies`` term).
"""

from __future__ import annotations

from repro.analysis import exact_chain
from repro.core.metrics import overhead_bytes_per_packet
from repro.crypto.signatures import HmacStubSigner
from repro.experiments.common import ExperimentResult
from repro.network.channel import Channel
from repro.network.loss import BernoulliLoss
from repro.schemes.emss import EmssScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import (
    StreamSender,
    make_payloads,
    replicate_signature_packets,
)

__all__ = ["run"]


def _measure(scheme, block, trials, p, copies, seed):
    """Empirical q_min with c unprotected signature transmissions."""
    signer = HmacStubSigner(key=b"psign-ablation")
    received = {}
    verified = {}
    for trial in range(trials):
        sender = StreamSender(scheme, signer, block)
        packets = replicate_signature_packets(
            sender.send_block(make_payloads(block)), copies)
        channel = Channel(loss=BernoulliLoss(p, seed=seed + trial),
                          protect_signature_packets=False)
        receiver = ChainReceiver(signer)
        delivered = set()
        for delivery in channel.transmit(packets):
            receiver.receive(delivery.packet, delivery.arrival_time)
            delivered.add(delivery.packet.seq)
        for seq in delivered:
            received[seq] = received.get(seq, 0) + 1
            if receiver.outcomes[seq].verified:
                verified[seq] = verified.get(seq, 0) + 1
    profile = {seq: verified.get(seq, 0) / count
               for seq, count in received.items()}
    return min(profile.values())


def run(fast: bool = False) -> ExperimentResult:
    """Sweep signature copies c = 1..4 at p in {0.1, 0.3}."""
    result = ExperimentResult(
        experiment_id="ext-psign",
        title="Ablating the 'P_sign always received' assumption",
    )
    block = 24 if fast else 48
    trials = 150 if fast else 600
    copies_sweep = [1, 2, 3, 4]
    scheme = EmssScheme(2, 1)
    graph = scheme.build_graph(block)
    for p in (0.1, 0.3):
        protected = exact_chain.exact_q_min(block, 2, p)
        empirical = []
        predicted = []
        for copies in copies_sweep:
            q = _measure(scheme, block, trials, p, copies, seed=900)
            empirical.append(q)
            predicted.append((1 - p ** copies) * protected)
            result.rows.append({
                "p": p,
                "copies": copies,
                "q_min empirical": q,
                "q_min predicted": predicted[-1],
                "bytes/pkt": overhead_bytes_per_packet(
                    graph, 128, 16, sign_copies=copies),
            })
        result.add_series(f"empirical p={p:g}", copies_sweep, empirical)
        result.add_series(f"predicted p={p:g}", copies_sweep, predicted)
        for q, prediction in zip(empirical, predicted):
            if abs(q - prediction) > 0.12:
                result.note(
                    f"WARNING: ablation deviates from (1-p^c)*q model at "
                    f"p={p} ({q:.3f} vs {prediction:.3f})"
                )
    result.note(
        "two transmissions already recover most of the protected-root "
        "q_min at p=0.1 (loss of the root voids the whole block, so the "
        "penalty is the factor 1 - p^c); each extra copy costs one "
        "amortized signature in Eq. 3.  The paper's assumption is thus "
        "cheap to realize but not free — exactly as it claims."
    )
    return result
