"""Extension: bursty (Gilbert–Elliott) loss — the paper's future work.

The paper's conclusion names "other loss models like the m-state
Markov model" as future work; the augmented chain was *designed* for
burst loss.  This experiment runs EMSS ``E_{2,1}``, EMSS with spread
offsets, and AC ``C_{3,3}`` under Gilbert–Elliott loss at matched mean
rates and several burst lengths, via Monte Carlo on the true graphs.

Expected shape: at a fixed mean loss rate, longer bursts hurt schemes
whose hash copies sit close together (``E_{2,1}``: a 2-burst severs
both copies) far more than schemes with spread copies; burstiness at
the same mean rate *helps* once the spread exceeds the burst length
(losses concentrate in fewer, survivable clusters).
"""

from __future__ import annotations

from repro.analysis.exact_chain_markov import gilbert_elliott_q_min
from repro.analysis.montecarlo import graph_monte_carlo, graph_monte_carlo_model
from repro.experiments.common import ExperimentResult
from repro.network.loss import GilbertElliottLoss
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """q_min under burst loss at mean rate 0.1, bursts 1..16 packets."""
    result = ExperimentResult(
        experiment_id="ext-burst",
        title="Burst (Gilbert-Elliott) loss vs iid at equal mean rate",
    )
    n = 120 if fast else 240
    trials = 400 if fast else 1500
    rate = 0.1
    bursts = [2, 8] if fast else [2, 4, 8, 16]
    schemes = [
        EmssScheme(2, 1),
        GenericOffsetScheme((1, 7)),
        AugmentedChainScheme(3, 3),
    ]
    for scheme in schemes:
        graph = scheme.build_graph(n)
        iid = graph_monte_carlo(graph, rate, trials=max(trials * 4, 2000),
                                seed=5).q_min
        xs, ys = [1.0], [iid]
        for burst in bursts:
            model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=5)
            mc = graph_monte_carlo_model(graph, model, trials=trials)
            xs.append(float(burst))
            ys.append(mc.q_min)
        result.add_series(scheme.name, xs, ys)
        result.rows.append({
            "scheme": scheme.name,
            "iid q_min": iid,
            f"burst={bursts[-1]} q_min": ys[-1],
        })
    # E_{2,1} admits an exact Markov-loss analysis (the paper's future
    # work solved in closed form); cross-check it against the MC curve.
    emss_series = result.series["emss(2,1)"]
    exact_curve = [
        gilbert_elliott_q_min(n, 2, rate, max(burst, 1.0001))
        for burst in emss_series.x
    ]
    result.add_series("emss(2,1) exact analytic", list(emss_series.x),
                      exact_curve)
    for mc_value, exact_value in zip(emss_series.y[1:], exact_curve[1:]):
        if abs(mc_value - exact_value) > 0.08:
            result.note(
                f"WARNING: exact Markov analysis disagrees with MC "
                f"({mc_value:.3f} vs {exact_value:.3f})"
            )
    result.note(
        "same mean loss, different burstiness: adjacent-copy EMSS "
        "E_{2,1} is crushed as soon as bursts reach its 2-packet "
        "spread (both hash copies sit inside one burst) while "
        "spread-offset and augmented-chain constructions degrade far "
        "more gracefully — the design rationale behind AC, quantified "
        "under the paper's named future-work loss model.  (At very "
        "long bursts q_min partially recovers for every scheme: the "
        "same mean loss concentrates into fewer, rarer events.)"
    )
    return result
