"""Extension: variance of q_i across packets, and the paper's remedy.

Section 3 observes that authentication probability "may vary widely
from packet to packet" and prescribes giving far-from-``P_sign``
packets more dispersed hash copies.  This experiment measures the
per-packet ``q_i`` dispersion (exact Monte Carlo) for:

* Rohatgi's chain — the worst case (geometric collapse with distance),
* uniform EMSS ``E_{2,1}``,
* the augmented chain ``C_{3,3}``,
* a *tapered* construction (1 copy near the signature, 3 spread copies
  far from it) — the paper's prescription made concrete.

Expected shape: the tapered graph buys a flatter profile (lower
variance and higher minimum) than uniform EMSS at comparable mean
overhead.
"""

from __future__ import annotations

from repro.analysis.montecarlo import graph_monte_carlo
from repro.analysis.variance import build_tapered_graph, profile_stats
from repro.experiments.common import ExperimentResult, sweep
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme

__all__ = ["run"]


def _candidate_point(task):
    """One grid point (runs in a pool worker): exact MC on one graph."""
    name, graph, p, trials = task
    return name, graph_monte_carlo(graph, p, trials=trials, seed=71)


def run(fast: bool = False) -> ExperimentResult:
    """Profile dispersion for four constructions at p = 0.15."""
    result = ExperimentResult(
        experiment_id="ext-variance",
        title="Per-packet q_i dispersion and the tapered-copies remedy",
    )
    n = 80 if fast else 160
    p = 0.15
    trials = 4000 if fast else 20000
    candidates = [
        ("rohatgi", RohatgiScheme().build_graph(n)),
        ("emss(2,1)", EmssScheme(2, 1).build_graph(n)),
        ("ac(3,3)", AugmentedChainScheme(3, 3).build_graph(n)),
        ("tapered 2->4", build_tapered_graph(n, 2, 4, taper_start=0.4)),
    ]
    grid = [(name, graph, p, trials) for name, graph in candidates]
    estimates = dict(sweep(_candidate_point, grid))
    stats_by_name = {}
    for name, graph in candidates:
        stats = profile_stats(list(estimates[name].q.values()))
        stats_by_name[name] = stats
        cv = stats.std / stats.mean if stats.mean > 0 else float("inf")
        result.rows.append({
            "construction": name,
            "hashes/pkt": graph.edge_count / graph.n,
            "mean q": stats.mean,
            "std of q": stats.std,
            "rel. dispersion": cv,
            "q_min": stats.minimum,
        })
    def relative(name):
        stats = stats_by_name[name]
        return stats.std / stats.mean if stats.mean > 0 else float("inf")

    if relative("rohatgi") <= relative("emss(2,1)"):
        result.note("WARNING: Rohatgi should have the widest dispersion")
    tapered = stats_by_name["tapered 2->4"]
    uniform = stats_by_name["emss(2,1)"]
    if tapered.minimum < uniform.minimum:
        result.note("WARNING: tapering should raise the worst packet")
    result.note(
        "Rohatgi's q_i collapses geometrically with distance (huge "
        "spread); uniform redundancy narrows it; concentrating spread "
        "copies on far packets — the paper's Sec. 3 prescription — "
        "flattens the profile further at similar overhead."
    )
    return result
