"""Full-report generation: every experiment, one markdown document.

``repro-experiments --report out.md`` regenerates an
EXPERIMENTS.md-style document from live runs — the reproducibility
loop closed: the checked-in EXPERIMENTS.md was produced by the same
code paths, so a fresh report should tell the same story (absolute
Monte Carlo digits may wiggle within sampling error).
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, TextIO, Union

from repro.experiments.common import ExperimentResult, format_table

__all__ = ["render_report", "write_report"]


def _section(result: ExperimentResult) -> str:
    parts = [f"## `{result.experiment_id}` — {result.title}", ""]
    if result.rows:
        parts.append("```")
        parts.append(format_table(result.rows))
        parts.append("```")
        parts.append("")
    if result.series:
        parts.append("```")
        merged = result.series_table("x")
        if merged and len(merged[0]) > 1:
            parts.append(format_table(merged))
        else:
            for label, series in result.series.items():
                parts.append(f"{label}:")
                parts.append("  x: " + " ".join(f"{x:g}" for x in series.x))
                parts.append("  y: " + " ".join(f"{y:.4f}" for y in series.y))
        parts.append("```")
        parts.append("")
    if result.notes:
        for note in result.notes:
            if "\n" in note:
                continue  # skip multi-line dumps (graph renderings)
            parts.append(f"> {note}")
        parts.append("")
    return "\n".join(parts)


def render_report(experiments: Dict[str, Callable[..., ExperimentResult]],
                  fast: bool = False,
                  only: Optional[List[str]] = None,
                  timestamp: Optional[str] = None) -> str:
    """Run experiments and render one markdown report.

    Parameters
    ----------
    experiments:
        Mapping of id → runner (usually
        :data:`repro.experiments.ALL_EXPERIMENTS`).
    fast:
        Reduced sweep resolution.
    only:
        Optional subset of experiment ids, in the order given.
    timestamp:
        Override the header timestamp (testing hook).
    """
    ids = list(experiments) if only is None else only
    unknown = [i for i in ids if i not in experiments]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    stamp = timestamp or datetime.now(timezone.utc).strftime(
        "%Y-%m-%d %H:%M UTC")
    mode = "fast" if fast else "full"
    header = [
        "# Reproduction report",
        "",
        f"Generated {stamp} ({mode} resolution) by `repro-experiments"
        f" --report`.  Compare against the checked-in EXPERIMENTS.md;",
        "Monte Carlo digits may differ within sampling error, analytic",
        "values must match exactly.",
        "",
    ]
    sections = [_section(experiments[eid](fast=fast)) for eid in ids]
    warning_count = sum(
        section.count("WARNING") for section in sections)
    footer = [
        "---",
        f"{len(ids)} experiments; "
        + ("no shape warnings." if warning_count == 0
           else f"{warning_count} WARNING notes — investigate!"),
        "",
    ]
    return "\n".join(header) + "\n" + "\n".join(sections) + "\n".join(footer)


def write_report(path_or_handle: Union[str, TextIO],
                 experiments: Dict[str, Callable[..., ExperimentResult]],
                 fast: bool = False,
                 only: Optional[List[str]] = None) -> None:
    """Render and write the report to a path or open text handle."""
    text = render_report(experiments, fast=fast, only=only)
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path_or_handle.write(text)
