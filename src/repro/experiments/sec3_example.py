"""Section 3 worked example: full metric suite for Rohatgi's chain.

The paper walks through its framework on Rohatgi's scheme: closed-form
``q_i`` and ``q_min``, ``n-1`` edges (one hash per packet), zero
deterministic delay, one hash buffer, no message buffer.  This
experiment checks every one of those against the graph machinery plus
exact path analysis and Monte Carlo.
"""

from __future__ import annotations

from repro.analysis import rohatgi as analysis
from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.metrics import compute_metrics
from repro.core.paths import exact_lambda
from repro.experiments.common import ExperimentResult
from repro.schemes.rohatgi import RohatgiScheme

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Closed form vs exact paths vs Monte Carlo for Rohatgi's scheme."""
    result = ExperimentResult(
        experiment_id="sec3-example",
        title="Rohatgi worked example: q, overhead, delay, buffers",
    )
    n = 12 if fast else 24
    trials = 4000 if fast else 20000
    scheme = RohatgiScheme()
    graph = scheme.build_graph(n)
    metrics = compute_metrics(graph, l_sign=128, l_hash=16)
    result.rows.append({
        "n": n,
        "edges": graph.edge_count,
        "hashes/pkt": round(metrics.mean_hashes, 4),
        "delay slots": metrics.delay_slots,
        "msg buffer": metrics.message_buffer,
        "hash buffer": metrics.hash_buffer,
    })
    for p in (0.05, 0.1, 0.3):
        mc = graph_monte_carlo(graph, p, trials=trials, seed=31)
        closed = analysis.q_min(n, p)
        exact = exact_lambda(graph, n, p)
        result.rows.append({
            "p": p,
            "q_min closed": closed,
            "q_min exact-paths": exact,
            "q_min monte-carlo": mc.q.get(n, 0.0),
        })
    result.note(
        "paper: q_min = (1-p)^{n-2}, n-1 edges, zero delay, 1 hash "
        "buffer, 0 message buffer — all reproduced; the three q_min "
        "columns agree to Monte Carlo error."
    )
    return result
