"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A dependence-graph is structurally invalid.

    Raised when a graph violates Definition 1 of the paper: cyclic
    dependence relations, vertices unreachable from the signed root,
    malformed labels, or a missing root vertex.
    """


class SchemeParameterError(ReproError, ValueError):
    """A scheme was instantiated with out-of-range parameters.

    For example an EMSS scheme with ``m < 1`` or an augmented chain with
    ``a < 2``.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed.

    This covers key-generation failures, malformed keys, and signing
    errors.  Verification *mismatches* are not errors — verification
    APIs return ``False`` — but structurally invalid inputs (e.g. a
    signature of the wrong length) raise :class:`VerificationError`.
    """


class VerificationError(CryptoError):
    """Authentication data was structurally malformed.

    Distinct from a verification returning ``False``: this means the
    input could not even be parsed as a signature/MAC of the expected
    shape.
    """


class SimulationError(ReproError):
    """The packet-level simulator was driven into an invalid state."""


class DesignError(ReproError):
    """A graph-design request is infeasible.

    Raised by the Section 5 construction toolkit when the constraint set
    (path counts, path lengths, overhead budget) cannot be satisfied.
    """


class AnalysisError(ReproError):
    """An analytic evaluation was requested for unsupported inputs."""
