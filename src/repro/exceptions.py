"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A dependence-graph is structurally invalid.

    Raised when a graph violates Definition 1 of the paper: cyclic
    dependence relations, vertices unreachable from the signed root,
    malformed labels, or a missing root vertex.
    """


class SchemeParameterError(ReproError, ValueError):
    """A scheme was instantiated with out-of-range parameters.

    For example an EMSS scheme with ``m < 1`` or an augmented chain with
    ``a < 2``.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed.

    This covers key-generation failures, malformed keys, and signing
    errors.  Verification *mismatches* are not errors — verification
    APIs return ``False`` — but structurally invalid inputs (e.g. a
    signature of the wrong length) raise :class:`VerificationError`.
    """


class VerificationError(CryptoError):
    """Authentication data was structurally malformed.

    Distinct from a verification returning ``False``: this means the
    input could not even be parsed as a signature/MAC of the expected
    shape.
    """


class SimulationError(ReproError):
    """The packet-level simulator was driven into an invalid state."""


class PacketFormatError(SimulationError, ValueError):
    """A packet was constructed with fields the wire format cannot carry.

    Oversized blobs, sequence numbers beyond the 32-bit wire fields,
    non-finite timestamps — anything that would silently mis-encode or
    blow up inside ``struct`` is rejected here with a clear message.
    """


class WireDecodeError(SimulationError):
    """A wire buffer could not be decoded into a :class:`~repro.packets.Packet`.

    Base of the strict decode taxonomy.  Every subtype is also a
    :class:`SimulationError`, so pre-existing callers that catch the
    broad class keep working; adversarial receivers catch this class to
    count-and-discard corrupted buffers.
    """


class TruncatedPacketError(WireDecodeError):
    """The buffer ends before a declared field does."""


class HeaderFormatError(WireDecodeError):
    """A header field is malformed.

    Nonzero reserved bits, an out-of-range signature flag, a non-finite
    send time, or a header/body sequence mismatch.
    """


class OverlongBlobError(WireDecodeError):
    """A declared length exceeds the wire format's hard caps.

    The caps bound decode work *before* any allocation or loop, so an
    adversarial length field cannot drive CPU or memory exhaustion.
    """


class TrailingBytesError(WireDecodeError):
    """Bytes remain after the last declared field.

    Rejecting them makes the encoding canonical: a successful decode
    re-encodes to exactly the input buffer.
    """


class DesignError(ReproError):
    """A graph-design request is infeasible.

    Raised by the Section 5 construction toolkit when the constraint set
    (path counts, path lengths, overhead budget) cannot be satisfied.
    """


class AnalysisError(ReproError):
    """An analytic evaluation was requested for unsupported inputs."""
