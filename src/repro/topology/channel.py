"""`Channel` adapter: topology-correlated loss behind the existing API.

:class:`TopologyChannel` is a plain
:class:`~repro.network.channel.Channel` whose loss model is a
:class:`~repro.topology.linkloss.PathLoss` — transmit semantics,
protected signature packets, arrival-ordered delivery and the
ground-truth estimator are all inherited, so every consumer of the
`Channel` interface (:mod:`repro.simulation`, :mod:`repro.faults`,
the serve sender) works unchanged.

:func:`topology_channel_factory` is the topology twin of
:func:`repro.serve.sender.default_channel_factory`: same
``(receiver_index, block_id, loss_rate) -> Channel`` signature, same
attack-plan seed derivation, but all channels of a session share one
:class:`~repro.topology.linkloss.EdgeLossBank`, which is where the
cross-receiver correlation lives.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.faults import AdversarialChannel, AttackPlan
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay, DelayModel
from repro.network.loss import LossEstimator
from repro.topology.graph import Topology
from repro.topology.linkloss import EdgeLossBank, PathLoss
from repro.topology.trees import DistTree, union_paths

__all__ = ["TopologyChannel", "topology_channel_factory"]

# Attack-plan seed derivation — identical to default_channel_factory.
_STRIDE_RECEIVER = 7919
_STRIDE_BLOCK = 104729
_ATTACK_OFFSET = 15485863


class TopologyChannel(Channel):
    """One receiver's view of the distribution tree(s), as a Channel.

    Everything is standard :class:`~repro.network.channel.Channel`
    behaviour; the only additions are introspection handles — which
    leaf this channel serves and how many redundant-path duplicate
    copies its :class:`~repro.topology.linkloss.PathLoss` suppressed.
    """

    def __init__(self, loss: PathLoss, leaf: str,
                 delay: Optional[DelayModel] = None,
                 protect_signature_packets: bool = True,
                 estimator: Optional[LossEstimator] = None) -> None:
        if not isinstance(loss, PathLoss):
            raise SimulationError("TopologyChannel requires a PathLoss")
        super().__init__(loss=loss,
                         delay=delay if delay is not None
                         else ConstantDelay(0.0),
                         protect_signature_packets=protect_signature_packets,
                         estimator=estimator)
        self.leaf = leaf

    @property
    def duplicates_suppressed(self) -> int:
        """Redundant-path copies deduplicated at this receiver."""
        return self.loss.duplicates_suppressed


def topology_channel_factory(seed: int, topology: Topology,
                             trees: Sequence[DistTree],
                             attack_plan_factory: Optional[
                                 Callable[[], AttackPlan]] = None,
                             edge_model: str = "bernoulli",
                             mean_burst: float = 4.0
                             ) -> Callable[[int, int, float], Channel]:
    """Per-(receiver, block) channels over a shared edge-loss bank.

    Drop-in replacement for
    :func:`repro.serve.sender.default_channel_factory`: the returned
    factory has the same signature and the same attack-plan seed
    derivation (so a star session under attack is byte-identical to
    the independent-channel session), but all receivers consult one
    :class:`~repro.topology.linkloss.EdgeLossBank`, giving correlated
    delivery wherever root→leaf paths share edges.

    ``receiver_index`` indexes ``topology.leaves`` — the factory is
    only valid for the leaf ordering the topology was built with.
    The shared bank is exposed as the ``bank`` attribute of the
    returned factory for observability and tests.
    """
    if not trees:
        raise SimulationError("need at least one distribution tree")
    for tree in trees:
        if tree.topology is not topology:
            raise SimulationError("tree built for a different topology")
    bank = EdgeLossBank(topology, seed, model=edge_model,
                        mean_burst=mean_burst)
    paths_by_leaf: Dict[str, Tuple[Tuple[int, ...], ...]] = {
        leaf: union_paths(trees, leaf) for leaf in topology.leaves
    }

    def build(receiver_index: int, block_id: int, loss_rate: float):
        try:
            leaf = topology.leaves[receiver_index]
        except IndexError:
            raise SimulationError(
                f"receiver index {receiver_index} outside topology "
                f"({len(topology.leaves)} leaves)")
        loss = PathLoss(bank, block_id, paths_by_leaf[leaf], loss_rate)
        channel = TopologyChannel(loss, leaf)
        if attack_plan_factory is None:
            return channel
        plan = attack_plan_factory()
        cell_seed = (seed + _STRIDE_RECEIVER * (receiver_index + 1)
                     + _STRIDE_BLOCK * (block_id + 1))
        plan.reseed(cell_seed + _ATTACK_OFFSET)
        return AdversarialChannel(channel, plan)

    build.bank = bank
    build.paths_by_leaf = paths_by_leaf
    return build
