"""Multicast distribution trees over a :class:`~repro.topology.graph.Topology`.

A distribution tree is the set of edges packets actually traverse: the
root pushes one copy down the tree and routers replicate at branch
points, so a leaf receives a packet iff *every* edge on its root→leaf
path is up at that instant.  :class:`DistTree` stores exactly what the
loss layer needs — per-leaf tuples of edge indices — plus the edge set
for redundancy accounting.

Two constructions are provided, both deterministic:

* :func:`shortest_path_tree` — union of weighted shortest root→leaf
  paths (Dijkstra); the classic source-based multicast tree;
* :func:`steiner_tree` — networkx's Steiner-approximation over
  ``{root} ∪ leaves``, which can share more edges on graphs with
  useful intermediate nodes.

:func:`redundant_trees` builds ``k`` edge-disjoint-*biased* trees by
re-running the chosen construction with used edges penalized (the
technique of the multicast-redundancy exemplar in SNIPPETS.md):
perfect disjointness is impossible whenever a leaf has one incident
edge, so instead of failing we multiply the weight of every used edge
by a large penalty and let the next round route around the previous
trees wherever the graph allows.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx
from networkx.algorithms.approximation import steiner_tree as _nx_steiner

from repro.exceptions import SimulationError
from repro.topology.graph import Topology

__all__ = [
    "DistTree",
    "shortest_path_tree",
    "steiner_tree",
    "build_tree",
    "redundant_trees",
    "TREE_ALGORITHMS",
]

#: Algorithms accepted by :func:`build_tree` / :func:`redundant_trees`.
TREE_ALGORITHMS = ("shortest-path", "steiner")

#: Weight multiplier applied to edges already used by an earlier tree
#: when building the next redundant tree.  Large enough that any
#: all-fresh detour beats a single reused edge on canonical graphs.
_REDUNDANCY_PENALTY = 1000.0


class DistTree:
    """One distribution tree: per-leaf root→leaf paths as edge indices.

    ``paths[leaf]`` is the tuple of edge indices on the root→leaf
    path, in root-to-leaf order.  ``edges`` is the union of all path
    edges — the tree's footprint, used to measure redundancy between
    trees.  Instances are immutable in practice; treat them as values.
    """

    def __init__(self, topology: Topology,
                 paths: Dict[str, Tuple[int, ...]]) -> None:
        missing = [leaf for leaf in topology.leaves if leaf not in paths]
        if missing:
            raise SimulationError(f"tree misses leaves: {missing}")
        self.topology = topology
        self.paths = {leaf: tuple(paths[leaf]) for leaf in topology.leaves}
        self.edges: FrozenSet[int] = frozenset(
            index for path in self.paths.values() for index in path)

    def path(self, leaf: str) -> Tuple[int, ...]:
        """Edge indices on the root→leaf path."""
        try:
            return self.paths[leaf]
        except KeyError:
            raise SimulationError(f"{leaf!r} is not a leaf of this tree")

    def describe(self) -> Dict[str, object]:
        """Manifest-ready summary."""
        depths = [len(path) for path in self.paths.values()]
        return {
            "edges": len(self.edges),
            "max_depth": max(depths),
            "min_depth": min(depths),
        }

    def __repr__(self) -> str:
        return (f"<DistTree edges={len(self.edges)} "
                f"leaves={len(self.paths)}>")


def _single_source_paths(topology: Topology, graph: nx.Graph,
                         missing_hint: str) -> Dict[str, Tuple[int, ...]]:
    """Root→leaf edge-index paths from one single-source Dijkstra run.

    A single run shares one predecessor structure across every leaf,
    so the union of the returned paths is a *tree* by construction —
    per-leaf queries could tie-break equal-cost paths differently and
    union into a cycle.
    """
    _, node_paths = nx.single_source_dijkstra(graph, topology.root,
                                              weight="weight")
    paths: Dict[str, Tuple[int, ...]] = {}
    for leaf in topology.leaves:
        nodes = node_paths.get(leaf)
        if nodes is None:
            raise SimulationError(f"{missing_hint} {leaf!r}")
        paths[leaf] = tuple(topology.edge_index(u, v)
                            for u, v in zip(nodes, nodes[1:]))
    return paths


def _paths_from_subgraph(topology: Topology,
                         subgraph: nx.Graph) -> Dict[str, Tuple[int, ...]]:
    """Root→leaf edge-index paths through ``subgraph``."""
    if topology.root not in subgraph:
        raise SimulationError("tree subgraph does not contain the root")
    return _single_source_paths(topology, subgraph,
                                "tree subgraph does not reach leaf")


def shortest_path_tree(topology: Topology,
                       graph: nx.Graph = None) -> DistTree:
    """Union of weighted shortest root→leaf paths (source-based tree)."""
    work = topology.graph if graph is None else graph
    return DistTree(topology,
                    _single_source_paths(topology, work,
                                         "no path from root to leaf"))


def steiner_tree(topology: Topology, graph: nx.Graph = None) -> DistTree:
    """Steiner-approximation tree over ``{root} ∪ leaves``."""
    work = topology.graph if graph is None else graph
    terminals = [topology.root] + list(topology.leaves)
    sub = _nx_steiner(work, terminals, weight="weight")
    return DistTree(topology, _paths_from_subgraph(topology, sub))


_BUILDERS = {
    "shortest-path": shortest_path_tree,
    "steiner": steiner_tree,
}


def build_tree(topology: Topology,
               algorithm: str = "shortest-path",
               graph: nx.Graph = None) -> DistTree:
    """Build one tree with the named algorithm."""
    try:
        builder = _BUILDERS[algorithm]
    except KeyError:
        raise SimulationError(
            f"unknown tree algorithm {algorithm!r} "
            f"(known: {', '.join(TREE_ALGORITHMS)})")
    return builder(topology, graph)


def redundant_trees(topology: Topology, k: int,
                    algorithm: str = "shortest-path") -> List[DistTree]:
    """``k`` edge-disjoint-biased trees via used-edge weight penalties.

    Tree 0 is the plain construction; each later tree is built on a
    copy of the graph where every edge already used by an earlier tree
    has its weight multiplied by a large penalty, so the construction
    routes around prior trees wherever an alternative exists.  Shared
    edges are allowed (a single-homed leaf forces its last hop into
    every tree); full disjointness emerges only where the graph
    provides it, e.g. the two planes of a ``dualspine`` topology.
    """
    if k < 1:
        raise SimulationError(f"need k >= 1 trees, got {k}")
    work = topology.graph.copy()
    trees: List[DistTree] = []
    for _ in range(k):
        tree = build_tree(topology, algorithm, graph=work)
        trees.append(tree)
        for index in tree.edges:
            u, v, _scale = topology._index_table()[index]
            work.edges[u, v]["weight"] *= _REDUNDANCY_PENALTY
    return trees


def union_paths(trees: Sequence[DistTree],
                leaf: str) -> Tuple[Tuple[int, ...], ...]:
    """Distinct root→leaf paths across ``trees``, first-seen order.

    Two trees that route a leaf identically contribute one path; the
    loss layer ORs over whatever remains.
    """
    seen: List[Tuple[int, ...]] = []
    for tree in trees:
        path = tree.path(leaf)
        if path not in seen:
            seen.append(path)
    return tuple(seen)
