"""Topology-aware multicast: graphs, trees, correlated link loss.

The paper models loss per *receiver*; this package moves it to the
*link*.  A :class:`~repro.topology.graph.Topology` describes the
network, :mod:`repro.topology.trees` builds (k-redundant) multicast
distribution trees over it, :mod:`repro.topology.linkloss` draws each
edge's fate once per packet and ANDs root→leaf paths (OR across
redundant trees), and :class:`~repro.topology.channel.TopologyChannel`
packages one leaf's view behind the ordinary `Channel` interface so
simulation, fault injection and the serve layer run unchanged.
:mod:`repro.topology.conformance` supplies the statistical harness
that holds the construction to the analytic models.
"""

from repro.topology.channel import TopologyChannel, topology_channel_factory
from repro.topology.conformance import (
    parallel_topology_trials,
    path_loss_rate,
    run_topology_trials,
    sibling_delivery_correlation,
    topology_adversarial_stats,
    topology_conformance_deviations,
    topology_wire_stats,
)
from repro.topology.graph import (
    TOPOLOGY_SPECS,
    Topology,
    dualspine_topology,
    make_topology,
    spine_topology,
    star_topology,
)
from repro.topology.linkloss import (
    EDGE_LOSS_MODELS,
    EdgeLossBank,
    PathLoss,
    delivery_probability,
)
from repro.topology.trees import (
    TREE_ALGORITHMS,
    DistTree,
    build_tree,
    redundant_trees,
    shortest_path_tree,
    steiner_tree,
    union_paths,
)

__all__ = [
    "Topology",
    "star_topology",
    "spine_topology",
    "dualspine_topology",
    "make_topology",
    "TOPOLOGY_SPECS",
    "DistTree",
    "build_tree",
    "shortest_path_tree",
    "steiner_tree",
    "redundant_trees",
    "union_paths",
    "TREE_ALGORITHMS",
    "EdgeLossBank",
    "PathLoss",
    "delivery_probability",
    "EDGE_LOSS_MODELS",
    "TopologyChannel",
    "topology_channel_factory",
    "path_loss_rate",
    "topology_wire_stats",
    "run_topology_trials",
    "parallel_topology_trials",
    "topology_adversarial_stats",
    "topology_conformance_deviations",
    "sibling_delivery_correlation",
]
