"""Statistical conformance of topology-induced loss.

Two questions the test suite asks of the correlated-loss machinery,
answered here with the same 3-SE methodology the independent-channel
conformance suite uses (:mod:`repro.analysis.conformance`):

* **marginals** — on a star topology every root→leaf path is a single
  private edge, so the induced per-receiver loss *is* the paper's
  independent Bernoulli model and the wire-level ``q_i`` must match
  the same analytic profiles.  :func:`topology_wire_stats` runs any
  registered scheme's wire trials through a
  :class:`~repro.topology.channel.TopologyChannel` (fresh edge bank
  per trial, same family dispatch as
  :func:`repro.analysis.conformance.wire_q_stats`), and
  :func:`topology_conformance_deviations` compares against
  :func:`~repro.analysis.conformance.analytic_q_profile` evaluated at
  the leaf's *path* loss rate;
* **correlation** — sibling leaves behind a shared spine edge must be
  positively correlated, by exactly the closed-form edge product:
  with shared up-probability ``s`` and private path up-probabilities
  ``l_a, l_b``, ``Cov(D_a, D_b) = l_a·l_b·s(1-s)``.
  :func:`sibling_delivery_correlation` measures the empirical
  correlation from bank draws and reports the deviation from the
  closed form in Fisher-z standard errors.

Trial sharding follows :mod:`repro.parallel.wire`: per-trial bank
seeds depend only on the *global* trial index, so any contiguous
partition merges back to the serial result bit-for-bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.conformance import (
    ConformanceEnvironment,
    analytic_q_profile,
    deviation_rows,
)
from repro.crypto.signatures import HmacStubSigner, Signer
from repro.exceptions import SimulationError
from repro.network.delay import ConstantDelay, DelayModel, GaussianDelay
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import chunk_sizes, resolve_chunks
from repro.schemes.base import Scheme
from repro.schemes.rohatgi_online import OnlineChainReceiver, OnlineRohatgiScheme
from repro.schemes.saida import SaidaScheme
from repro.schemes.tesla import TeslaScheme
from repro.simulation.sender import make_payloads
from repro.simulation.session import (
    run_chain_session,
    run_individual_session,
    run_saida_session,
    run_tesla_session,
)
from repro.simulation.stats import SimulationStats
from repro.topology.channel import TopologyChannel
from repro.topology.graph import Topology
from repro.topology.linkloss import EdgeLossBank, PathLoss, delivery_probability
from repro.topology.trees import DistTree, union_paths

__all__ = [
    "path_loss_rate",
    "topology_wire_stats",
    "run_topology_trials",
    "parallel_topology_trials",
    "topology_adversarial_stats",
    "topology_conformance_deviations",
    "sibling_delivery_correlation",
]

#: Per-trial bank-seed stride.  Deliberately much larger than the
#: per-edge/per-block strides inside the bank so (trial, edge) seed
#: pairs never collide across neighbouring trials.
_TRIAL_STRIDE = 32452843

#: Delay-seed stride for TESLA trials — same as run_tesla_trials.
_DELAY_STRIDE = 1299709


def _conformance_signer() -> Signer:
    return HmacStubSigner(key=b"topology-conformance", signature_size=128)


def path_loss_rate(topology: Topology, trees: Sequence[DistTree],
                   leaf: str, base_rate: float) -> float:
    """Marginal drop probability of ``leaf`` under the tree set.

    The rate the independent-channel analytic profile must be
    evaluated at for this leaf: ``1 - P(some path fully up)`` with
    per-edge rates scaled by ``loss_scale``.
    """
    paths = union_paths(trees, leaf)
    rates = {
        edge: min(1.0, base_rate * topology.scale_of_index(edge))
        for path in paths for edge in path
    }
    return 1.0 - delivery_probability(paths, rates)


def run_topology_trials(scheme: Scheme, topology: Topology,
                        paths: Sequence[Sequence[int]], leaf: str,
                        block_size: int, base_rate: float,
                        first_trial: int, trial_count: int, seed: int = 7,
                        edge_model: str = "bernoulli",
                        env: Optional[ConformanceEnvironment] = None
                        ) -> SimulationStats:
    """Trials ``first_trial .. first_trial + trial_count - 1`` for one leaf.

    Trial ``t`` builds a fresh :class:`EdgeLossBank` seeded from the
    global index (``seed + t * stride``), so edge draws are
    independent across trials and any contiguous sharding of the trial
    range merges to the serial result exactly.  Dispatch per scheme
    family mirrors :func:`repro.analysis.conformance.wire_q_stats`.
    """
    if trial_count < 0:
        raise SimulationError(f"trial count must be >= 0, got {trial_count}")
    if first_trial < 0:
        raise SimulationError(f"first trial must be >= 0, got {first_trial}")
    env = env if env is not None else ConformanceEnvironment()
    signer = _conformance_signer()
    stats = SimulationStats()
    online_packets = online_keypairs = None
    if isinstance(scheme, OnlineRohatgiScheme):
        online_packets = scheme.make_block(make_payloads(block_size), signer)
        online_keypairs = scheme._last_keypairs
    for trial in range(first_trial, first_trial + trial_count):
        bank = EdgeLossBank(topology, seed + trial * _TRIAL_STRIDE,
                            model=edge_model)
        loss = PathLoss(bank, 0, paths, base_rate)
        delay: Optional[DelayModel] = None
        if isinstance(scheme, TeslaScheme) and (env.delay_mean > 0
                                                or env.delay_std > 0):
            delay = GaussianDelay(env.delay_mean, env.delay_std,
                                  seed=seed + trial * _DELAY_STRIDE)
        channel = TopologyChannel(loss, leaf, delay=delay)
        if isinstance(scheme, TeslaScheme):
            run_tesla_session(scheme.parameters, block_size, channel,
                              stats=stats)
        elif isinstance(scheme, SaidaScheme):
            run_saida_session(scheme, block_size, 1, channel, signer=signer,
                              stats=stats)
        elif isinstance(scheme, OnlineRohatgiScheme):
            deliveries = channel.transmit(online_packets)
            receiver = OnlineChainReceiver(signer, online_keypairs)
            for delivery in deliveries:
                receiver.receive(delivery.packet)
            delivered = {d.packet.seq for d in deliveries}
            for packet in online_packets:
                received = packet.seq in delivered
                verified = received and bool(
                    receiver.verified.get(packet.seq))
                stats.record(packet.seq, received, verified)
            stats.sent += channel.sent
            stats.dropped += channel.dropped
        elif scheme.individually_verifiable:
            run_individual_session(scheme, block_size, 1, channel,
                                   signer=signer, stats=stats)
        else:
            run_chain_session(scheme, block_size, 1, channel, signer=signer,
                              stats=stats)
    return stats


def _topology_chunk(task) -> SimulationStats:
    (scheme, topology, paths, leaf, block_size, base_rate, first_trial,
     trial_count, seed, edge_model, env) = task
    return run_topology_trials(scheme, topology, paths, leaf, block_size,
                               base_rate, first_trial, trial_count,
                               seed=seed, edge_model=edge_model, env=env)


def parallel_topology_trials(scheme: Scheme, topology: Topology,
                             trees: Sequence[DistTree], leaf: str,
                             block_size: int, base_rate: float, trials: int,
                             seed: int = 7, edge_model: str = "bernoulli",
                             workers: Optional[int] = None,
                             chunks: Optional[int] = None,
                             env: Optional[ConformanceEnvironment] = None
                             ) -> SimulationStats:
    """Sharded :func:`run_topology_trials` — serial result, any workers."""
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    paths = union_paths(trees, leaf)
    chunks = resolve_chunks(trials, chunks)
    sizes = chunk_sizes(trials, chunks)
    tasks = []
    first_trial = 0
    for size in sizes:
        tasks.append((scheme, topology, paths, leaf, block_size, base_rate,
                      first_trial, size, seed, edge_model, env))
        first_trial += size
    shards = run_tasks(_topology_chunk, tasks, workers)
    return SimulationStats.merge_all(shards)


def topology_wire_stats(scheme: Scheme, topology: Topology,
                        trees: Sequence[DistTree], leaf: str,
                        block_size: int, base_rate: float, trials: int,
                        seed: int = 7, edge_model: str = "bernoulli",
                        env: Optional[ConformanceEnvironment] = None
                        ) -> SimulationStats:
    """Empirical wire statistics for one leaf over ``trials`` blocks."""
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    paths = union_paths(trees, leaf)
    return run_topology_trials(scheme, topology, paths, leaf, block_size,
                               base_rate, 0, trials, seed=seed,
                               edge_model=edge_model, env=env)


def topology_adversarial_stats(scheme: Scheme, topology: Topology,
                               trees: Sequence[DistTree], leaf: str,
                               block_size: int, base_rate: float,
                               plan, trials: int, seed: int = 7,
                               edge_model: str = "bernoulli",
                               env: Optional[ConformanceEnvironment] = None,
                               signer: Optional[Signer] = None
                               ) -> SimulationStats:
    """Attacked wire statistics for one leaf over correlated link loss.

    Reuses the full adversarial trial machinery of
    :func:`repro.simulation.adversarial.run_adversarial_trials` —
    defensive decoding, soundness audit, fault counters, the standard
    attack-plan reseed schedule — and only swaps the inner channel for
    a per-trial :class:`TopologyChannel` (fresh
    :class:`~repro.topology.linkloss.EdgeLossBank` each trial, same
    per-trial seed discipline as the passive runner).  The soundness
    invariant is unchanged: ``stats.forged_accepted`` must stay 0.
    """
    from repro.simulation.adversarial import run_adversarial_trials

    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    env = env if env is not None else ConformanceEnvironment()
    paths = union_paths(trees, leaf)

    def factory(trial: int) -> TopologyChannel:
        bank = EdgeLossBank(topology, seed + trial * _TRIAL_STRIDE,
                            model=edge_model)
        loss = PathLoss(bank, 0, paths, base_rate)
        delay: Optional[DelayModel] = None
        if isinstance(scheme, TeslaScheme) and (env.delay_mean > 0
                                                or env.delay_std > 0):
            delay = GaussianDelay(env.delay_mean, env.delay_std,
                                  seed=seed + trial * _DELAY_STRIDE)
        return TopologyChannel(loss, leaf, delay=delay)

    return run_adversarial_trials(scheme, block_size, base_rate, plan,
                                  0, trials, seed=seed,
                                  delay_mean=env.delay_mean,
                                  delay_std=env.delay_std, signer=signer,
                                  channel_factory=factory)


def topology_conformance_deviations(scheme: Scheme, topology: Topology,
                                    trees: Sequence[DistTree], leaf: str,
                                    block_size: int, base_rate: float,
                                    trials: int, seed: int = 7,
                                    env: Optional[ConformanceEnvironment]
                                    = None) -> List[dict]:
    """Per-position rows: topology wire ``q_i`` vs the analytic model.

    The analytic side is the *independent-channel* profile evaluated
    at the leaf's marginal path loss rate — correct because one leaf's
    delivery process is i.i.d. Bernoulli across slots (every edge
    draws fresh per slot), so from a single receiver's viewpoint a
    topology is indistinguishable from an independent channel at the
    path rate.  Correlation only shows up *across* receivers, which
    :func:`sibling_delivery_correlation` covers.
    """
    stats = topology_wire_stats(scheme, topology, trees, leaf, block_size,
                                base_rate, trials, seed=seed, env=env)
    marginal = path_loss_rate(topology, trees, leaf, base_rate)
    analytic = analytic_q_profile(scheme, block_size, marginal, env=env)
    return deviation_rows(stats, analytic,
                          f"{scheme.name}@{topology.name}/{leaf}")


def sibling_delivery_correlation(topology: Topology,
                                 trees: Sequence[DistTree],
                                 leaf_a: str, leaf_b: str,
                                 base_rate: float, packets: int,
                                 seed: int = 7) -> Dict[str, float]:
    """Measured vs closed-form delivery correlation of two leaves.

    Draws ``packets`` slots from one shared bank (block 0) and scores
    the per-slot delivery indicators of both leaves against the
    closed form: with shared-edge up-probability ``s`` and private
    path up-probabilities ``l_a``, ``l_b``,

    ``P(D_a ∧ D_b) = s · l_a · l_b``  ⇒
    ``Cov = l_a · l_b · s (1 - s)``,

    normalized by the Bernoulli variances.  The deviation is reported
    in Fisher-z standard errors (``SE_z = 1/sqrt(N - 3)``), the right
    scale for a correlation estimate; the conformance tests threshold
    it at 3.
    """
    if packets < 8:
        raise SimulationError(f"need >= 8 packets, got {packets}")
    paths_a = union_paths(trees, leaf_a)
    paths_b = union_paths(trees, leaf_b)
    if len(paths_a) != 1 or len(paths_b) != 1:
        raise SimulationError(
            "closed-form sibling correlation is defined for single-tree "
            "(k = 1) paths")
    path_a, path_b = set(paths_a[0]), set(paths_b[0])

    def up_product(edges) -> float:
        product = 1.0
        for edge in edges:
            product *= 1.0 - min(1.0,
                                 base_rate * topology.scale_of_index(edge))
        return product

    shared = path_a & path_b
    s = up_product(shared)
    l_a = up_product(path_a - shared)
    l_b = up_product(path_b - shared)
    p_a, p_b = s * l_a, s * l_b
    cov = l_a * l_b * s * (1.0 - s)
    var_a, var_b = p_a * (1.0 - p_a), p_b * (1.0 - p_b)
    if var_a <= 0.0 or var_b <= 0.0:
        raise SimulationError(
            "degenerate delivery probability; correlation undefined")
    predicted = cov / math.sqrt(var_a * var_b)

    bank = EdgeLossBank(topology, seed)
    loss_a = PathLoss(bank, 0, paths_a, base_rate)
    loss_b = PathLoss(bank, 0, paths_b, base_rate)
    draws_a = [not loss_a.is_lost() for _ in range(packets)]
    draws_b = [not loss_b.is_lost() for _ in range(packets)]
    mean_a = sum(draws_a) / packets
    mean_b = sum(draws_b) / packets
    cov_hat = sum((a - mean_a) * (b - mean_b)
                  for a, b in zip(draws_a, draws_b)) / packets
    var_hat_a = mean_a * (1.0 - mean_a)
    var_hat_b = mean_b * (1.0 - mean_b)
    if var_hat_a <= 0.0 or var_hat_b <= 0.0:
        raise SimulationError(
            f"degenerate sample (means {mean_a}, {mean_b}); "
            f"raise packets or lower the loss rate")
    measured = cov_hat / math.sqrt(var_hat_a * var_hat_b)

    # Fisher z-transform: atanh(r) is ~normal with SE 1/sqrt(N-3).
    clamp = 1.0 - 1e-12
    z_measured = math.atanh(max(-clamp, min(clamp, measured)))
    z_predicted = math.atanh(max(-clamp, min(clamp, predicted)))
    se_z = 1.0 / math.sqrt(packets - 3)
    return {
        "leaf_a": leaf_a,
        "leaf_b": leaf_b,
        "packets": packets,
        "shared_edges": len(shared),
        "measured": measured,
        "predicted": predicted,
        "deviation_se": abs(z_measured - z_predicted) / se_z,
        "delivery_a": mean_a,
        "delivery_b": mean_b,
    }
