"""Network topologies: the graphs multicast distribution runs over.

The paper's channel model gives every receiver an independent loss
draw; a real multicast deployment pushes packets down a *distribution
tree* whose edges are shared by whole subtrees, so one lossy link
degrades every receiver behind it at once.  :class:`Topology` is the
substrate for that model: a networkx graph with one distinguished
``root`` (the sender), the session's receivers as leaves, and two
per-edge attributes —

* ``index`` — a stable integer identity assigned at construction, the
  key every per-(edge, block) RNG seed derives from.  Leaf edges of
  the canonical builders are indexed by receiver order, which is what
  makes a star topology's edge draws *bit-identical* to the
  independent per-receiver channels of
  :func:`repro.serve.sender.default_channel_factory`;
* ``loss_scale`` — a multiplier applied to the session's scheduled
  loss rate on this edge (clamped to ``[0, 1]``), so one spec string
  can describe heterogeneous links (a hot spine over clean last-hop
  edges).

Canonical builders cover the shapes the serve layer and the test
suites exercise: ``star`` (independent last hops — the differential
baseline), ``spine`` (a 2-level shared-spine tree whose sibling
leaves have correlated delivery) and ``dualspine`` (two parallel
aggregation planes, the smallest shape where k-redundant trees are
genuinely edge-disjoint).  :func:`make_topology` parses the
``--topology`` CLI spec grammar.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import SimulationError

__all__ = [
    "Topology",
    "star_topology",
    "spine_topology",
    "dualspine_topology",
    "make_topology",
    "TOPOLOGY_SPECS",
]

#: Spec grammar accepted by :func:`make_topology` (CLI ``--topology``).
TOPOLOGY_SPECS = ("star", "spine:<groups>[:scale,...]",
                  "dualspine:<groups>")


class Topology:
    """A rooted network graph with indexed, loss-scaled edges.

    Parameters
    ----------
    graph:
        Undirected networkx graph.  Every edge must carry an ``index``
        attribute (unique, dense from 0) and may carry ``loss_scale``
        (default 1.0) and ``weight`` (default 1.0, used by tree
        construction).
    root:
        The sender's node.
    leaves:
        Receiver identities in canonical order; each must be a node.
    name:
        Spec-like label recorded in manifests.
    """

    def __init__(self, graph: nx.Graph, root: str,
                 leaves: Sequence[str], name: str = "custom") -> None:
        if root not in graph:
            raise SimulationError(f"root {root!r} not in graph")
        if not leaves:
            raise SimulationError("need at least one leaf")
        for leaf in leaves:
            if leaf not in graph:
                raise SimulationError(f"leaf {leaf!r} not in graph")
            if leaf == root:
                raise SimulationError("root cannot be a leaf")
        if len(set(leaves)) != len(leaves):
            raise SimulationError("leaf names must be unique")
        if not nx.is_connected(graph):
            raise SimulationError("topology graph must be connected")
        indices = sorted(data.get("index", -1)
                         for _, _, data in graph.edges(data=True))
        if indices != list(range(graph.number_of_edges())):
            raise SimulationError(
                "every edge needs a unique dense 'index' attribute")
        for u, v, data in graph.edges(data=True):
            scale = data.setdefault("loss_scale", 1.0)
            if scale < 0.0:
                raise SimulationError(
                    f"loss_scale must be >= 0 on edge {u}-{v}, got {scale}")
            data.setdefault("weight", 1.0)
        self.graph = graph
        self.root = root
        self.leaves = list(leaves)
        self.name = name

    # -- edge identity -------------------------------------------------

    def edge_index(self, u: str, v: str) -> int:
        """Stable integer identity of edge ``u-v`` (order-insensitive)."""
        return self.graph.edges[u, v]["index"]

    def edge_scale(self, u: str, v: str) -> float:
        """Loss multiplier of edge ``u-v``."""
        return self.graph.edges[u, v]["loss_scale"]

    def scale_of_index(self, index: int) -> float:
        """Loss multiplier looked up by edge index."""
        return self._index_table()[index][2]

    def _index_table(self) -> Dict[int, Tuple[str, str, float]]:
        cached = getattr(self, "_edges_by_index", None)
        if cached is None:
            cached = {
                data["index"]: (u, v, data["loss_scale"])
                for u, v, data in self.graph.edges(data=True)
            }
            self._edges_by_index = cached
        return cached

    @property
    def edge_count(self) -> int:
        """Edges in the graph."""
        return self.graph.number_of_edges()

    # -- structure queries ---------------------------------------------

    def subtree_of(self, leaf: str) -> str:
        """The root's child this leaf sits behind (its adaptation group).

        The first hop of the shortest root→leaf path; for a star the
        leaf itself, for a spine the leaf's aggregation router.  This
        is the label per-subtree loss reports and the subtree-adaptive
        controller key on.
        """
        if leaf not in self.leaves:
            raise SimulationError(f"{leaf!r} is not a leaf")
        path = nx.shortest_path(self.graph, self.root, leaf, weight="weight")
        return path[1]

    def subtree_groups(self) -> Dict[str, List[str]]:
        """Group label -> leaves behind it, leaves in canonical order."""
        groups: Dict[str, List[str]] = {}
        for leaf in self.leaves:
            groups.setdefault(self.subtree_of(leaf), []).append(leaf)
        return groups

    def describe(self) -> Dict[str, object]:
        """Manifest-ready summary."""
        return {
            "name": self.name,
            "nodes": self.graph.number_of_nodes(),
            "edges": self.edge_count,
            "root": self.root,
            "leaves": len(self.leaves),
            "subtrees": len(self.subtree_groups()),
        }

    def __repr__(self) -> str:
        return (f"<Topology {self.name!r} nodes={self.graph.number_of_nodes()}"
                f" edges={self.edge_count} leaves={len(self.leaves)}>")


def _new_graph() -> Tuple[nx.Graph, List[int]]:
    """Fresh graph plus a single-cell edge-index counter."""
    return nx.Graph(), [0]


def _add_edge(graph: nx.Graph, counter: List[int], u: str, v: str,
              loss_scale: float = 1.0, weight: float = 1.0) -> None:
    graph.add_edge(u, v, index=counter[0], loss_scale=loss_scale,
                   weight=weight)
    counter[0] += 1


def star_topology(leaves: Sequence[str], root: str = "root") -> Topology:
    """Every receiver on its own last-hop edge — independent links.

    Edge ``i`` connects the root to ``leaves[i]``, so per-(edge, block)
    seeds coincide with the independent per-(receiver, block) channel
    seeds and a star session is byte-identical to the non-topology
    serve path.
    """
    graph, counter = _new_graph()
    graph.add_node(root)
    for leaf in leaves:
        _add_edge(graph, counter, root, leaf)
    return Topology(graph, root, leaves, name="star")


def spine_topology(leaves: Sequence[str], groups: int,
                   root: str = "root",
                   spine_scales: Optional[Sequence[float]] = None,
                   leaf_scale: float = 1.0) -> Topology:
    """A 2-level shared-spine tree: root → router_j → leaves.

    Leaves are assigned to routers contiguously (``ceil(n/groups)``
    per router).  ``spine_scales`` sets a per-router loss multiplier
    on the root→router edge (default 1.0 everywhere) — the knob that
    makes one subtree hot while its siblings stay clean, which is the
    scenario where per-subtree adaptation beats a global controller.
    Sibling leaves share their router's spine edge, so their delivery
    indicators are positively correlated by construction.
    """
    if groups < 1:
        raise SimulationError(f"need >= 1 spine group, got {groups}")
    if groups > len(leaves):
        raise SimulationError(
            f"more spine groups ({groups}) than leaves ({len(leaves)})")
    if spine_scales is not None and len(spine_scales) != groups:
        raise SimulationError(
            f"need one spine scale per group, got {len(spine_scales)}")
    graph, counter = _new_graph()
    graph.add_node(root)
    per_group = -(-len(leaves) // groups)  # ceil
    routers = [f"s{j:02d}" for j in range(groups)]
    for j, router in enumerate(routers):
        scale = spine_scales[j] if spine_scales is not None else 1.0
        _add_edge(graph, counter, root, router, loss_scale=scale)
    for i, leaf in enumerate(leaves):
        router = routers[min(i // per_group, groups - 1)]
        _add_edge(graph, counter, router, leaf, loss_scale=leaf_scale)
    return Topology(graph, root, leaves, name=f"spine:{groups}")


def dualspine_topology(leaves: Sequence[str], groups: int,
                       root: str = "root",
                       leaf_scale: float = 1.0) -> Topology:
    """Two parallel aggregation planes over the same routers.

    The root reaches every router through plane A *and* plane B
    (``root—pA—router_j`` and ``root—pB—router_j``), so two multicast
    trees can be edge-disjoint everywhere except the unavoidable
    last-hop edges — the smallest shape where ``k = 2`` redundant
    trees buy real delivery probability.  Plane B's edges carry a
    slightly higher weight so deterministic tree construction prefers
    plane A until the redundancy penalty pushes it off.
    """
    if groups < 1:
        raise SimulationError(f"need >= 1 spine group, got {groups}")
    if groups > len(leaves):
        raise SimulationError(
            f"more spine groups ({groups}) than leaves ({len(leaves)})")
    graph, counter = _new_graph()
    graph.add_node(root)
    per_group = -(-len(leaves) // groups)
    routers = [f"s{j:02d}" for j in range(groups)]
    _add_edge(graph, counter, root, "pA", weight=1.0)
    _add_edge(graph, counter, root, "pB", weight=1.001)
    for router in routers:
        _add_edge(graph, counter, "pA", router, weight=1.0)
        _add_edge(graph, counter, "pB", router, weight=1.001)
    for i, leaf in enumerate(leaves):
        router = routers[min(i // per_group, groups - 1)]
        _add_edge(graph, counter, router, leaf, loss_scale=leaf_scale)
    return Topology(graph, root, leaves, name=f"dualspine:{groups}")


def make_topology(spec: str, leaves: Sequence[str]) -> Topology:
    """Build a canonical topology from a ``--topology`` spec string.

    Grammar: ``star`` | ``spine:<groups>[:scale,...]`` |
    ``dualspine:<groups>``.  The optional scale list gives one
    ``loss_scale`` per spine edge (``spine:2:3,1`` makes subtree 0's
    spine three times as lossy as the schedule) — the heterogeneous
    shape where per-subtree adaptation pays off.
    """
    text = spec.strip().lower()
    if text == "star":
        return star_topology(leaves)
    if text.startswith("spine:"):
        parts = text.split(":")
        try:
            groups = int(parts[1])
        except (IndexError, ValueError):
            raise SimulationError(
                f"bad group count in topology spec {spec!r}")
        spine_scales: Optional[Tuple[float, ...]] = None
        if len(parts) == 3:
            try:
                spine_scales = tuple(float(scale)
                                     for scale in parts[2].split(","))
            except ValueError:
                raise SimulationError(
                    f"bad spine scale list in topology spec {spec!r}")
        elif len(parts) > 3:
            raise SimulationError(f"unknown topology spec {spec!r}")
        topology = spine_topology(leaves, groups, spine_scales=spine_scales)
        topology.name = text
        return topology
    if text.startswith("dualspine:"):
        try:
            groups = int(text[len("dualspine:"):])
        except ValueError:
            raise SimulationError(
                f"bad group count in topology spec {spec!r}")
        return dualspine_topology(leaves, groups)
    raise SimulationError(
        f"unknown topology spec {spec!r} "
        f"(known: {', '.join(TOPOLOGY_SPECS)})")
