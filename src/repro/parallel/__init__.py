"""Process-pool execution engine with deterministic seed trees.

Monte-Carlo estimation dominates every figure reproduction and
parameter sweep in this repository; this package shards those trials
(and whole experiment grids) across worker processes without giving up
reproducibility: a run's chunk layout depends only on its trial count,
each chunk draws from its own ``SeedSequence.spawn`` child, and shard
results merge through exact integer-count folds — so the answer is
bit-for-bit identical whether it ran on 1 worker or 64.

Entry points
------------
* :func:`parallel_graph_monte_carlo` — sharded vectorized graph
  estimator (the fast path for large sweeps).
* :func:`parallel_wire_monte_carlo` / :func:`parallel_tesla_monte_carlo`
  — sharded byte-level sessions, identical to the serial drivers.
* :func:`parallel_multicast` — heterogeneous audiences, one receiver
  per worker.
* :func:`parallel_adversarial_trials` — sharded attacked sessions
  (every scheme family) with exact soundness-counter folds.
* :func:`sweep` — map any picklable function over a parameter grid.
* :func:`set_default_workers` — process-wide pool size (the CLI's
  ``--workers`` flag; ``REPRO_WORKERS`` in the environment also works).
"""

from repro.parallel.montecarlo import parallel_graph_monte_carlo
from repro.parallel.pool import (
    get_default_workers,
    resolve_workers,
    run_tasks,
    set_default_workers,
    sweep,
)
from repro.parallel.seeds import (
    DEFAULT_CHUNKS,
    chunk_sizes,
    resolve_chunks,
    spawn_seed_tree,
)
from repro.parallel.wire import (
    parallel_adversarial_trials,
    parallel_multicast,
    parallel_tesla_monte_carlo,
    parallel_wire_monte_carlo,
)

__all__ = [
    "parallel_graph_monte_carlo",
    "parallel_wire_monte_carlo",
    "parallel_tesla_monte_carlo",
    "parallel_adversarial_trials",
    "parallel_multicast",
    "sweep",
    "run_tasks",
    "set_default_workers",
    "get_default_workers",
    "resolve_workers",
    "spawn_seed_tree",
    "chunk_sizes",
    "resolve_chunks",
    "DEFAULT_CHUNKS",
]
