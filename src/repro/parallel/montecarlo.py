"""Sharded graph-level Monte Carlo with deterministic seed trees.

``parallel_graph_monte_carlo`` splits a run's trials into chunks whose
layout depends only on the trial count, gives chunk ``c`` the ``c``-th
child of ``SeedSequence(seed)``, fans the chunks out over a process
pool, and folds the shard results with the exact
:meth:`~repro.analysis.montecarlo.McResult.merge` — so the estimate is
bit-for-bit identical for any worker count, including the in-process
``workers=1`` fallback.

Note the canonical random stream of a sharded run differs from a plain
single-chunk :func:`~repro.analysis.montecarlo.graph_monte_carlo` call
with the same integer seed (the seed tree interposes one spawn level);
what is guaranteed is that *every* execution of the sharded run agrees.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.montecarlo import McResult, graph_monte_carlo
from repro.core.graph import DependenceGraph
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import chunk_sizes, resolve_chunks, spawn_seed_tree

__all__ = ["parallel_graph_monte_carlo"]


def _graph_chunk(task) -> McResult:
    """Run one shard (executes inside a pool worker)."""
    graph, p, trials, seed, root_always_received = task
    return graph_monte_carlo(graph, p, trials=trials, seed=seed,
                             root_always_received=root_always_received)


def parallel_graph_monte_carlo(graph: DependenceGraph, p: float,
                               trials: int = 10_000, seed=None,
                               workers: Optional[int] = None,
                               chunks: Optional[int] = None,
                               root_always_received: bool = True) -> McResult:
    """Sharded, reproducible version of :func:`graph_monte_carlo`.

    Parameters
    ----------
    graph, p, trials, root_always_received:
        As in :func:`~repro.analysis.montecarlo.graph_monte_carlo`.
    seed:
        Root of the run's seed tree (int, ``None`` or a
        :class:`~numpy.random.SeedSequence`).  The same seed yields the
        same result for every ``workers`` value.
    workers:
        Pool size; defaults to the CLI/env/CPU-count resolution chain
        (:func:`repro.parallel.pool.resolve_workers`).  ``1`` runs the
        identical chunk jobs in-process.
    chunks:
        Number of shards; defaults to ``min(trials, 16)``.  Part of the
        deterministic stream definition — change it and you choose a
        different (but equally reproducible) random stream.
    """
    chunks = resolve_chunks(trials, chunks)
    sizes = chunk_sizes(trials, chunks)
    seeds = spawn_seed_tree(seed, chunks)
    tasks = [(graph, p, size, chunk_seed, root_always_received)
             for size, chunk_seed in zip(sizes, seeds)]
    shards = run_tasks(_graph_chunk, tasks, workers)
    return McResult.merge_all(shards)
