"""Process-pool plumbing shared by every parallel estimator.

Workers are plain ``concurrent.futures.ProcessPoolExecutor`` processes;
``run_tasks`` preserves submission order, and ``workers=1`` (or a
single task) bypasses the pool entirely and runs the same jobs in the
calling process — the serial fallback the determinism tests compare
against.

The default worker count resolves, in order: an explicit argument, the
process-wide default set by :func:`set_default_workers` (the CLI's
``--workers`` flag lands here), the ``REPRO_WORKERS`` environment
variable (how CI pins pool size), then ``os.cpu_count()``.

When a live metrics registry is installed (:mod:`repro.obs`), each
task runs under a fresh *shard registry* — inside the worker process —
and ships its snapshot back with the result; ``run_tasks`` folds the
snapshots into the caller's registry in task order.  Because the
registry's merge is exact (integer sums), per-shard counters always
sum to precisely the serial run's totals, and because the fold touches
no RNG, results stay bit-for-bit identical with metrics on or off.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.exceptions import AnalysisError
from repro.obs.registry import MetricsRegistry, get_registry, use_registry

__all__ = ["set_default_workers", "get_default_workers", "resolve_workers",
           "run_tasks", "sweep"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default pool size (``None`` = autodetect)."""
    if workers is not None and workers < 1:
        raise AnalysisError(f"workers must be >= 1, got {workers}")
    global _default_workers
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    """The process-wide default pool size, if one was set."""
    return _default_workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an effective worker count (always >= 1)."""
    if workers is None:
        workers = _default_workers
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise AnalysisError(
                    f"REPRO_WORKERS must be an integer, got {env!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise AnalysisError(f"workers must be >= 1, got {workers}")
    return workers


class _ShardJob:
    """Picklable wrapper running one task under a fresh shard registry.

    The worker (or the in-process fallback) executes ``fn`` with a
    private :class:`MetricsRegistry` installed and no trace sink (a
    forked sink handle shared across processes would interleave), then
    returns ``(result, snapshot)``.  Workers never mutate the parent's
    registry — on fork they inherit a reference, which this wrapper
    shadows for the duration of the task.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, task: _T):
        from repro.obs.spans import set_trace_sink

        shard = MetricsRegistry()
        sink = set_trace_sink(None)
        try:
            with use_registry(shard):
                result = self.fn(task)
        finally:
            set_trace_sink(sink)
        return result, shard.snapshot()


def run_tasks(fn: Callable[[_T], _R], tasks: Sequence[_T],
              workers: Optional[int] = None) -> List[_R]:
    """Apply ``fn`` to every task, in order, possibly across processes.

    ``fn`` and the tasks must be picklable (module-level function,
    plain-data arguments).  Results come back in task order regardless
    of completion order, so deterministic merges can simply fold the
    returned list left to right.
    """
    workers = resolve_workers(workers)
    registry = get_registry()
    if not registry.enabled:
        if workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            return list(pool.map(fn, tasks))
    # Instrumented path: identical jobs, plus a metrics snapshot per
    # shard folded back in task order.  The serial fallback runs the
    # same _ShardJob wrapper so counter totals match any pool size.
    from repro.obs.spans import span

    job = _ShardJob(fn)
    registry.count("pool.batches")
    registry.count("pool.tasks", len(tasks))
    with span("pool.run_tasks"):
        if workers == 1 or len(tasks) <= 1:
            pairs = [job(task) for task in tasks]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(tasks))) as pool:
                pairs = list(pool.map(job, tasks))
    results: List[_R] = []
    for result, snapshot in pairs:
        registry.merge_snapshot(snapshot)
        results.append(result)
    return results


def sweep(fn: Callable[[_T], _R], grid: Iterable[_T],
          workers: Optional[int] = None) -> List[_R]:
    """Map ``fn`` over a parameter grid, fanning out across the pool.

    The experiment-sweep counterpart of :func:`run_tasks`: ``grid`` is
    any iterable of parameter points (tuples, dataclasses, dicts — as
    long as they pickle) and the returned list is in grid order.  With
    ``workers=1`` this is exactly ``[fn(point) for point in grid]``.
    """
    return run_tasks(fn, list(grid), workers)
