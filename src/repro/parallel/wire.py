"""Sharded wire-level Monte Carlo and multicast fan-out.

Wire-level trials already key each trial's channel RNG off the trial's
*global* index (see :mod:`repro.simulation.runner`), so sharding is a
partition of ``range(trials)`` into contiguous ranges; merging the
per-range :class:`~repro.simulation.stats.SimulationStats` in range
order reproduces the serial accumulator exactly — same tallies, same
delay sequence, same buffer peaks.

``parallel_multicast`` fans a heterogeneous audience out one receiver
per task: the sender's packetization is deterministic (fixed payloads,
stub signer), so every worker re-derives the identical packet stream
and each receiver's statistics match the serial session bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import SimulationError
from repro.faults.plan import AttackPlan
from repro.network.delay import DelayModel
from repro.network.loss import LossModel
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import chunk_sizes, resolve_chunks
from repro.schemes.base import Scheme
from repro.schemes.tesla import TeslaParameters
from repro.simulation.adversarial import run_adversarial_trials
from repro.simulation.multicast import (
    MulticastResult,
    ReceiverSpec,
    run_multicast_session,
)
from repro.simulation.runner import (
    WireTrialConfig,
    run_tesla_trials,
    run_wire_trials,
)
from repro.simulation.stats import SimulationStats

__all__ = ["parallel_wire_monte_carlo", "parallel_tesla_monte_carlo",
           "parallel_adversarial_trials", "parallel_multicast"]


def _wire_chunk(task) -> SimulationStats:
    scheme, config, first_trial, trial_count, loss, delay, attack = task
    return run_wire_trials(scheme, config, first_trial, trial_count,
                           loss=loss, delay=delay, attack=attack)


def parallel_wire_monte_carlo(scheme: Scheme, config: WireTrialConfig,
                              workers: Optional[int] = None,
                              chunks: Optional[int] = None,
                              loss: Optional[LossModel] = None,
                              delay: Optional[DelayModel] = None,
                              attack: Optional[AttackPlan] = None
                              ) -> SimulationStats:
    """Sharded :func:`~repro.simulation.runner.wire_monte_carlo`.

    Output is identical to the serial driver for any worker count:
    trial ``t`` sees the same channel randomness wherever it runs
    (custom ``loss``/``delay`` models are pickled to each worker and
    ``reset()`` per trial, exactly as the serial loop resets them).
    ``attack`` plans likewise ship to each worker and are reseeded from
    the global trial index, so attacked runs stay bit-for-bit identical
    across worker counts.
    """
    if config.trials < 1:
        raise SimulationError(f"need >= 1 trial, got {config.trials}")
    chunks = resolve_chunks(config.trials, chunks)
    sizes = chunk_sizes(config.trials, chunks)
    tasks = []
    first_trial = 0
    for size in sizes:
        tasks.append((scheme, config, first_trial, size, loss, delay, attack))
        first_trial += size
    shards = run_tasks(_wire_chunk, tasks, workers)
    return SimulationStats.merge_all(shards)


def _adversarial_chunk(task) -> SimulationStats:
    (scheme, block_size, loss_rate, plan, first_trial, trial_count, seed,
     delay_mean, delay_std, signer) = task
    return run_adversarial_trials(scheme, block_size, loss_rate, plan,
                                  first_trial, trial_count, seed=seed,
                                  delay_mean=delay_mean,
                                  delay_std=delay_std, signer=signer)


def parallel_adversarial_trials(scheme: Scheme, block_size: int,
                                loss_rate: float, plan: AttackPlan,
                                trials: int, seed: int = 7,
                                delay_mean: float = 0.0,
                                delay_std: float = 0.0,
                                workers: Optional[int] = None,
                                chunks: Optional[int] = None,
                                signer=None) -> SimulationStats:
    """Sharded :func:`~repro.simulation.adversarial.run_adversarial_trials`.

    Every scheme family is covered; the attack plan is pickled to each
    worker and reseeded per trial off the global index, so soundness
    counters and ``q_i`` tallies merge to the serial result exactly.
    A custom ``signer`` must be picklable and a pure function of its
    inputs (e.g. :class:`~repro.crypto.batch.StreamBatchSigner`) for
    the shard-invariance guarantee to hold.
    """
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    chunks = resolve_chunks(trials, chunks)
    sizes = chunk_sizes(trials, chunks)
    tasks = []
    first_trial = 0
    for size in sizes:
        tasks.append((scheme, block_size, loss_rate, plan, first_trial,
                      size, seed, delay_mean, delay_std, signer))
        first_trial += size
    shards = run_tasks(_adversarial_chunk, tasks, workers)
    return SimulationStats.merge_all(shards)


def _tesla_chunk(task) -> SimulationStats:
    (parameters, packet_count, first_trial, trial_count, loss_rate,
     delay_mean, delay_std, clock_offset, seed) = task
    return run_tesla_trials(parameters, packet_count, first_trial,
                            trial_count, loss_rate, delay_mean=delay_mean,
                            delay_std=delay_std, clock_offset=clock_offset,
                            seed=seed)


def parallel_tesla_monte_carlo(parameters: TeslaParameters,
                               packet_count: int, trials: int,
                               loss_rate: float, delay_mean: float = 0.0,
                               delay_std: float = 0.0,
                               clock_offset: float = 0.0, seed: int = 11,
                               workers: Optional[int] = None,
                               chunks: Optional[int] = None
                               ) -> SimulationStats:
    """Sharded :func:`~repro.simulation.runner.tesla_monte_carlo`."""
    if trials < 1:
        raise SimulationError(f"need >= 1 trial, got {trials}")
    chunks = resolve_chunks(trials, chunks)
    sizes = chunk_sizes(trials, chunks)
    tasks = []
    first_trial = 0
    for size in sizes:
        tasks.append((parameters, packet_count, first_trial, size, loss_rate,
                      delay_mean, delay_std, clock_offset, seed))
        first_trial += size
    shards = run_tasks(_tesla_chunk, tasks, workers)
    return SimulationStats.merge_all(shards)


def _multicast_chunk(task) -> MulticastResult:
    scheme, block_size, blocks, specs, t_transmit, payload_size = task
    return run_multicast_session(scheme, block_size, blocks, specs,
                                 t_transmit=t_transmit,
                                 payload_size=payload_size)


def parallel_multicast(scheme: Scheme, block_size: int, blocks: int,
                       receivers: Sequence[ReceiverSpec],
                       workers: Optional[int] = None,
                       t_transmit: float = 0.01,
                       payload_size: int = 32) -> MulticastResult:
    """Fan a multicast audience out across the pool, one receiver each.

    Each worker replays the (deterministic) sender for its receiver and
    verifies that receiver's deliveries; per-receiver statistics are
    identical to :func:`~repro.simulation.multicast.run_multicast_session`
    over the full audience.
    """
    if not receivers:
        raise SimulationError("need at least one receiver")
    names = [spec.name for spec in receivers]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate receiver names: {names}")
    tasks = [(scheme, block_size, blocks, [spec], t_transmit, payload_size)
             for spec in receivers]
    shards = run_tasks(_multicast_chunk, tasks, workers)
    result = MulticastResult(packets_sent=shards[0].packets_sent)
    for shard in shards:
        result.per_receiver.update(shard.per_receiver)
    return result
