"""Deterministic seed trees and trial chunking.

The parallel engine's reproducibility contract rests on two rules:

* a run's randomness comes from a **seed tree** —
  ``numpy.random.SeedSequence(seed).spawn(chunks)`` — so chunk ``c``
  always sees the same independent stream, and
* the **chunk layout depends only on the trial count**, never on the
  worker count, so any pool size replays the identical set of
  (chunk, seed) jobs.

Together they make every run bit-for-bit identical for 1, 2, or 64
workers: the pool only changes *where* a chunk executes, not *what* it
computes.
"""

from __future__ import annotations

from typing import List, Optional, Union

from numpy.random import SeedSequence

from repro.exceptions import AnalysisError

__all__ = ["DEFAULT_CHUNKS", "spawn_seed_tree", "chunk_sizes",
           "resolve_chunks"]

#: Default number of shards a run is split into.  Fixed (rather than
#: derived from ``os.cpu_count()``) so the chunk layout — and therefore
#: the result — is identical across machines; 16 slots keep pools of up
#: to 16 workers busy while leaving each chunk large enough for the
#: vectorized estimator to stay efficient.
DEFAULT_CHUNKS = 16

SeedLike = Union[None, int, SeedSequence]


def spawn_seed_tree(seed: SeedLike, count: int) -> List[SeedSequence]:
    """Spawn ``count`` independent child seed sequences from ``seed``.

    ``seed`` may be an int, ``None`` (fresh OS entropy — reproducible
    within the run, not across runs) or an existing
    :class:`~numpy.random.SeedSequence` node of a larger tree.
    """
    if count < 1:
        raise AnalysisError(f"need >= 1 seed, got {count}")
    root = seed if isinstance(seed, SeedSequence) else SeedSequence(seed)
    return root.spawn(count)


def chunk_sizes(total: int, chunks: int) -> List[int]:
    """Near-equal deterministic split of ``total`` trials into ``chunks``.

    The first ``total % chunks`` chunks carry one extra trial; every
    chunk is non-empty.
    """
    if total < 1:
        raise AnalysisError(f"need >= 1 trial, got {total}")
    if not 1 <= chunks <= total:
        raise AnalysisError(
            f"chunks must be in [1, {total}], got {chunks}")
    base, extra = divmod(total, chunks)
    return [base + 1 if index < extra else base for index in range(chunks)]


def resolve_chunks(total: int, chunks: Optional[int] = None) -> int:
    """Apply the default chunk policy (``min(total, DEFAULT_CHUNKS)``)."""
    if chunks is None:
        return min(total, DEFAULT_CHUNKS)
    if not 1 <= chunks <= total:
        raise AnalysisError(
            f"chunks must be in [1, {total}], got {chunks}")
    return chunks
