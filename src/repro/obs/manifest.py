"""Structured run manifests: what ran, with what, for how long.

A :class:`RunManifest` is the machine-readable receipt of one
experiment or sweep: the scheme/experiment identity and parameters,
the seed root and worker count that make the run reproducible, wall
and CPU time, the trial counters the instrumentation collected, and
the git SHA of the tree that produced it.  The CLI emits one manifest
per experiment into the ``--metrics-out`` file; CI round-trips that
file through :func:`validate_metrics_file` so schema drift fails the
build instead of silently corrupting the benchmark trajectory.
"""

from __future__ import annotations

import datetime
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import AnalysisError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "MANIFEST_VERSION",
    "METRICS_FILE_VERSION",
    "RunManifest",
    "git_sha",
    "validate_metrics_payload",
    "validate_metrics_file",
]

MANIFEST_VERSION = 1
METRICS_FILE_VERSION = 1

_REQUIRED_FIELDS = {
    "manifest_version": int,
    "kind": str,
    "name": str,
    "parameters": dict,
    "workers": int,
    "wall_time_s": float,
    "cpu_time_s": float,
    "trial_counts": dict,
    "started_at": str,
}


def git_sha(root: Optional[str] = None) -> Optional[str]:
    """Short git SHA of the working tree, or ``None`` outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or os.getcwd(), capture_output=True, text=True,
            timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


@dataclass
class RunManifest:
    """One run's provenance record.

    Attributes
    ----------
    kind:
        What produced it: ``"experiment"``, ``"sweep"``, ``"bench"``...
    name:
        Experiment id or scheme spec, e.g. ``"fig9"`` or ``"emss(2,1)"``.
    parameters:
        Free-form run parameters (loss rates, block sizes, flags).
    seed_root:
        Root of the deterministic seed tree, when the run had one.
    workers:
        Resolved process-pool size the run executed with.
    wall_time_s, cpu_time_s:
        Elapsed wall-clock and process CPU time.
    trial_counts:
        Name → count of the work executed (wire trials, MC trials,
        pool tasks) — lifted from the metrics registry's counters.
    git_sha:
        Short SHA of the producing tree (``None`` outside a checkout).
    started_at:
        ISO-8601 UTC timestamp of run start.
    """

    kind: str
    name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    seed_root: Optional[int] = None
    workers: int = 1
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    trial_counts: Dict[str, int] = field(default_factory=dict)
    git_sha: Optional[str] = None
    started_at: str = ""
    manifest_version: int = MANIFEST_VERSION

    @classmethod
    def start(cls, kind: str, name: str,
              parameters: Optional[Dict[str, Any]] = None,
              seed_root: Optional[int] = None,
              workers: int = 1) -> "_ManifestClock":
        """Begin timing a run; call ``finish(registry)`` to seal it."""
        return _ManifestClock(cls(
            kind=kind, name=name, parameters=dict(parameters or {}),
            seed_root=seed_root, workers=workers, git_sha=git_sha(),
            started_at=datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
        ))

    def to_dict(self) -> dict:
        return {
            "manifest_version": self.manifest_version,
            "kind": self.kind,
            "name": self.name,
            "parameters": self.parameters,
            "seed_root": self.seed_root,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "trial_counts": self.trial_counts,
            "git_sha": self.git_sha,
            "started_at": self.started_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild and validate a manifest from :meth:`to_dict` output."""
        validate_manifest_payload(payload)
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            parameters=dict(payload["parameters"]),
            seed_root=payload.get("seed_root"),
            workers=int(payload["workers"]),
            wall_time_s=float(payload["wall_time_s"]),
            cpu_time_s=float(payload["cpu_time_s"]),
            trial_counts={str(k): int(v)
                          for k, v in payload["trial_counts"].items()},
            git_sha=payload.get("git_sha"),
            started_at=payload["started_at"],
            manifest_version=int(payload["manifest_version"]),
        )


class _ManifestClock:
    """Pairs a manifest with its wall/CPU clocks until ``finish``."""

    def __init__(self, manifest: RunManifest) -> None:
        self.manifest = manifest
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()

    def finish(self, registry: Optional[MetricsRegistry] = None
               ) -> RunManifest:
        """Stamp elapsed times and lift trial counters from ``registry``."""
        self.manifest.wall_time_s = time.perf_counter() - self._wall_start
        self.manifest.cpu_time_s = time.process_time() - self._cpu_start
        if registry is not None:
            self.manifest.trial_counts = {
                name: value for name, value in sorted(registry.counters.items())
                if name.endswith((".trials", ".tasks", ".points",
                                  ".runs", ".sessions", ".lookups"))
            }
        return self.manifest


def validate_manifest_payload(payload: dict) -> None:
    """Raise :class:`AnalysisError` unless ``payload`` is a valid manifest."""
    if not isinstance(payload, dict):
        raise AnalysisError(f"manifest must be a dict, got {type(payload)!r}")
    for name, expected in _REQUIRED_FIELDS.items():
        if name not in payload:
            raise AnalysisError(f"manifest missing required field {name!r}")
        value = payload[name]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise AnalysisError(
                    f"manifest field {name!r} must be a number, "
                    f"got {type(value).__name__}")
        elif not isinstance(value, expected) or isinstance(value, bool):
            raise AnalysisError(
                f"manifest field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}")
    if payload["manifest_version"] != MANIFEST_VERSION:
        raise AnalysisError(
            f"unsupported manifest version {payload['manifest_version']!r}")
    for key, value in payload["trial_counts"].items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise AnalysisError(
                f"trial_counts entries must be str -> int, got "
                f"{key!r} -> {value!r}")
    seed_root = payload.get("seed_root")
    if seed_root is not None and not isinstance(seed_root, int):
        raise AnalysisError("manifest seed_root must be an int or null")


def validate_metrics_payload(payload: dict) -> int:
    """Validate a ``--metrics-out`` file payload; returns the run count.

    The file is ``{"format": 1, "runs": [{"manifest": ..., "metrics":
    ...}, ...]}``; each manifest must round-trip through
    :meth:`RunManifest.from_dict` and each metrics snapshot through
    :meth:`MetricsRegistry.from_snapshot`.
    """
    if not isinstance(payload, dict):
        raise AnalysisError("metrics file must hold a JSON object")
    if payload.get("format") != METRICS_FILE_VERSION:
        raise AnalysisError(
            f"unsupported metrics file format {payload.get('format')!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise AnalysisError("metrics file must carry a non-empty 'runs' list")
    for entry in runs:
        if not isinstance(entry, dict):
            raise AnalysisError("each run entry must be a JSON object")
        manifest = RunManifest.from_dict(entry.get("manifest", {}))
        round_tripped = RunManifest.from_dict(manifest.to_dict())
        if round_tripped.to_dict() != manifest.to_dict():
            raise AnalysisError("manifest does not round-trip")
        if "metrics" in entry and entry["metrics"] is not None:
            MetricsRegistry.from_snapshot(entry["metrics"])
    return len(runs)


def validate_metrics_file(path: str) -> int:
    """Load ``path`` and validate it; returns the number of runs inside."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return validate_metrics_payload(payload)
