"""Fixed-interval gauge sampling on the session's virtual clock.

Block-level aggregates answer "how did the run go"; operators of a
live stream want "how is it going *now*": buffered packets per
receiver, the loss estimate the controller is about to act on, the
scheme parameters currently in force.  :class:`TimeseriesSampler`
records those gauges on a fixed **virtual-time** grid — tick ``k``
fires the first time the clock reaches ``k * interval_s`` — so the
sample schedule, like everything else in a serve session, is a pure
function of the config and the emitted file is byte-identical across
runs.

Rows are plain dicts written as sorted-key JSON lines (one line per
receiver per tick, plus one ``_controller`` row carrying the adaptive
state).  The sampler buffers in memory and flushes on ``close`` — the
same crash-safe discipline as the lifecycle tracer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import AnalysisError
from repro.obs.sinks import TraceSink

__all__ = ["TimeseriesSampler", "validate_timeseries_file",
           "CONTROLLER_ROW", "HEALTH_ROW"]

#: Reserved "receiver" id for the controller-state row of each tick.
CONTROLLER_ROW = "_controller"

#: Reserved "receiver" id for the health-monitor row of each tick
#: (present only when a session runs with the health plane enabled).
HEALTH_ROW = "_health"


class TimeseriesSampler:
    """Per-receiver gauges on a fixed virtual-time grid.

    Parameters
    ----------
    interval_s:
        Virtual seconds between ticks; the serving loop asks
        :meth:`due` after each block barrier and records one row-set
        when a tick boundary has been crossed (stamped with the last
        crossed tick, so the grid stays exact even when a single
        block spans several intervals).
    sink:
        A path, text stream or :class:`~repro.obs.sinks.TraceSink` the
        rows are written to on :meth:`flush`/:meth:`close`; ``None``
        keeps them in memory only.
    """

    def __init__(self, interval_s: float = 0.05,
                 sink: Union[None, str, TraceSink] = None) -> None:
        if interval_s <= 0:
            raise AnalysisError(
                f"timeseries interval must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        if sink is None or isinstance(sink, TraceSink):
            self._sink: Optional[TraceSink] = sink
        else:
            self._sink = TraceSink(sink)
        self._tick = 1  # next grid index to fire
        self.samples: List[dict] = []
        self._flushed = 0

    def due(self, now: float) -> bool:
        """Whether the clock has crossed the next tick boundary."""
        return now >= self._tick * self.interval_s

    def record(self, now: float, rows: Sequence[Dict[str, object]]) -> bool:
        """Record ``rows`` if a tick is due; returns whether it fired.

        Each row must carry an ``"r"`` receiver id; the sampler stamps
        the quantized tick time as ``"t"`` (grid index times interval,
        never the raw clock reading — byte-stable across runs).
        """
        if not self.due(now):
            return False
        while (self._tick + 1) * self.interval_s <= now:
            self._tick += 1
        tick_time = self._tick * self.interval_s
        self._tick += 1
        for row in rows:
            if "r" not in row:
                raise AnalysisError("timeseries row missing receiver id 'r'")
            stamped = {"t": tick_time}
            stamped.update(row)
            self.samples.append(stamped)
        return True

    # -- output --------------------------------------------------------

    def flush(self) -> int:
        """Write unflushed rows to the sink; returns the count written."""
        pending = self.samples[self._flushed:]
        if self._sink is not None:
            for row in pending:
                self._sink.write(row)
        self._flushed = len(self.samples)
        return len(pending)

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        self.flush()
        if self._sink is not None:
            self._sink.close()

    def __enter__(self) -> "TimeseriesSampler":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def last_gauges(self) -> Dict[str, Dict[str, object]]:
        """Latest row per receiver id (for end-of-run snapshots)."""
        latest: Dict[str, Dict[str, object]] = {}
        for row in self.samples:
            latest[str(row["r"])] = row
        return latest


def validate_timeseries_file(path: str) -> int:
    """Validate a timeseries JSON-lines file; returns the row count.

    Rows must be JSON objects with ``t`` (non-decreasing) and ``r``;
    every other field must be a JSON number or string.
    """
    count = 0
    last_t = float("-inf")
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                raise AnalysisError(
                    f"{path}:{line_no}: not valid JSON: {exc}")
            if not isinstance(row, dict) or "t" not in row or "r" not in row:
                raise AnalysisError(
                    f"{path}:{line_no}: timeseries rows need 't' and 'r'")
            t = row["t"]
            if not isinstance(t, (int, float)) or isinstance(t, bool):
                raise AnalysisError(f"{path}:{line_no}: 't' must be a number")
            if t < last_t:
                raise AnalysisError(
                    f"{path}:{line_no}: tick time went backwards "
                    f"({t} < {last_t})")
            last_t = t
            for name, value in row.items():
                if name in ("r", "scheme"):
                    continue
                if isinstance(value, bool) or not isinstance(
                        value, (int, float, str)):
                    raise AnalysisError(
                        f"{path}:{line_no}: gauge {name!r} must be a "
                        f"number or string, got {type(value).__name__}")
            count += 1
    return count
