"""Metrics registry: counters, timers and fixed-bucket histograms.

Every quantity is stored as an **integer** — event counts, bucket
counts, timer totals in nanoseconds — so :meth:`MetricsRegistry.merge`
is *exact*: associative, commutative, with the empty registry as
identity.  That is the same algebra as
:meth:`~repro.analysis.montecarlo.McResult.merge`, and for the same
reason: per-shard metrics collected inside pool workers must fold to
the identical totals regardless of how trials were split or in what
order shards are combined (the property suite asserts all three laws).

Instrumentation must cost nothing when nobody is looking, so the
module keeps a process-wide *current registry* that defaults to the
:data:`NULL_REGISTRY` — a singleton whose operations are no-ops and
whose ``enabled`` attribute lets hot paths skip even argument
construction::

    reg = get_registry()
    if reg.enabled:
        reg.count("mc.trials", trials)

Swap a live registry in with :func:`set_registry` or scope one with
:func:`use_registry`; both are what the CLI's ``--metrics-out`` /
``--profile`` flags do under the hood.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import AnalysisError

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "metrics_enabled",
]

SNAPSHOT_VERSION = 1


class Histogram:
    """Fixed-bucket histogram of non-negative observation counts.

    Parameters
    ----------
    bounds:
        Strictly increasing upper bounds; an observation ``v`` lands in
        the first bucket with ``v <= bound``, or in the overflow bucket
        beyond the last bound.  Bounds are part of the histogram's
        identity: merging histograms with different bounds is an error,
        never a silent re-bucketing.
    """

    __slots__ = ("bounds", "counts", "overflow")

    def __init__(self, bounds: Sequence[float],
                 counts: Optional[Sequence[int]] = None,
                 overflow: int = 0) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise AnalysisError("histogram needs >= 1 bucket bound")
        if any(b >= a for b, a in zip(cleaned, cleaned[1:])):
            raise AnalysisError(f"bounds must strictly increase: {cleaned}")
        self.bounds: Tuple[float, ...] = cleaned
        self.counts: List[int] = (list(counts) if counts is not None
                                  else [0] * len(cleaned))
        if len(self.counts) != len(cleaned):
            raise AnalysisError(
                f"{len(cleaned)} bounds vs {len(self.counts)} counts")
        self.overflow = int(overflow)

    def observe(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += count
                return
        self.overflow += count

    @property
    def total(self) -> int:
        """Total observations across all buckets (conserved by merge)."""
        return sum(self.counts) + self.overflow

    def merge(self, other: "Histogram") -> "Histogram":
        """Exact merge: bucket-wise integer sums (same bounds required)."""
        if self.bounds != other.bounds:
            raise AnalysisError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}")
        return Histogram(self.bounds,
                         [a + b for a, b in zip(self.counts, other.counts)],
                         self.overflow + other.overflow)

    def as_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "overflow": self.overflow}

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        return cls(payload["bounds"], payload["counts"],
                   payload.get("overflow", 0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.bounds == other.bounds and self.counts == other.counts
                and self.overflow == other.overflow)

    def __repr__(self) -> str:
        return f"<Histogram total={self.total} bounds={self.bounds}>"


class MetricsRegistry:
    """Accumulator for one process's (or one shard's) metrics.

    Three metric families, all integer-valued:

    * **counters** — monotone event counts (``count``);
    * **timers** — cumulative elapsed nanoseconds plus an invocation
      count (``add_time``; the span machinery in
      :mod:`repro.obs.spans` is the usual writer);
    * **histograms** — fixed-bucket distributions (``observe``).

    A registry is cheap to create and safe to mutate from one thread;
    cross-process aggregation goes through :meth:`snapshot` (plain
    picklable dict) and :meth:`merge`.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, Tuple[int, int]] = {}  # name -> (ns, calls)
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- writers -------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name`` by ``delta``."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def add_time(self, name: str, elapsed_ns: int, calls: int = 1) -> None:
        """Add one (or more) timed invocations to timer ``name``."""
        total, count = self.timers.get(name, (0, 0))
        self.timers[name] = (total + int(elapsed_ns), count + calls)

    def observe(self, name: str, value: float,
                bounds: Sequence[float]) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(bounds)
            self.histograms[name] = histogram
        histogram.observe(value)

    # -- readers -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never written)."""
        return self.counters.get(name, 0)

    def timer_seconds(self, name: str) -> float:
        """Cumulative seconds recorded under timer ``name``."""
        return self.timers.get(name, (0, 0))[0] / 1e9

    def timer_calls(self, name: str) -> int:
        """Invocation count of timer ``name``."""
        return self.timers.get(name, (0, 0))[1]

    @property
    def empty(self) -> bool:
        return not (self.counters or self.timers or self.histograms)

    # -- algebra -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Exact merge into a new registry (inputs untouched).

        Integer sums throughout, so the operation is associative and
        commutative with the empty registry as identity — shard metrics
        fold to the same totals in any order.
        """
        if not isinstance(other, MetricsRegistry):
            raise AnalysisError(
                f"cannot merge MetricsRegistry with {type(other)!r}")
        merged = MetricsRegistry()
        for source in (self, other):
            for name, value in source.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + value
            for name, (total, calls) in source.timers.items():
                base_total, base_calls = merged.timers.get(name, (0, 0))
                merged.timers[name] = (base_total + total, base_calls + calls)
            for name, histogram in source.histograms.items():
                existing = merged.histograms.get(name)
                merged.histograms[name] = (
                    histogram.merge(Histogram(histogram.bounds))
                    if existing is None else existing.merge(histogram))
        return merged

    def merge_snapshot(self, payload: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry in place.

        The in-place counterpart of :meth:`merge`, used by the pool to
        absorb worker shard metrics as they come back (in task order).
        """
        other = MetricsRegistry.from_snapshot(payload)
        with self._lock:
            for name, value in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (total, calls) in other.timers.items():
                base_total, base_calls = self.timers.get(name, (0, 0))
                self.timers[name] = (base_total + total, base_calls + calls)
            for name, histogram in other.histograms.items():
                existing = self.histograms.get(name)
                self.histograms[name] = (histogram if existing is None
                                         else existing.merge(histogram))

    @staticmethod
    def merge_all(registries: Iterable["MetricsRegistry"]
                  ) -> "MetricsRegistry":
        """Fold :meth:`merge` over registries (empty iterable is fine)."""
        merged = MetricsRegistry()
        for registry in registries:
            merged = merged.merge(registry)
        return merged

    # -- serialization -------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view: picklable, JSON-serializable, mergeable."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": dict(self.counters),
            "timers": {name: [total, calls]
                       for name, (total, calls) in self.timers.items()},
            "histograms": {name: histogram.as_dict()
                           for name, histogram in self.histograms.items()},
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict."""
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise AnalysisError(
                f"unsupported metrics snapshot version {version!r}")
        registry = cls()
        registry.counters = {str(k): int(v)
                             for k, v in payload.get("counters", {}).items()}
        registry.timers = {
            str(k): (int(v[0]), int(v[1]))
            for k, v in payload.get("timers", {}).items()
        }
        registry.histograms = {
            str(k): Histogram.from_dict(v)
            for k, v in payload.get("histograms", {}).items()
        }
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return (self.counters == other.counters
                and self.timers == other.timers
                and self.histograms == other.histograms)

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self.counters)} "
                f"timers={len(self.timers)} "
                f"histograms={len(self.histograms)}>")


class NullRegistry(MetricsRegistry):
    """The disabled fast path: every write is a no-op.

    Call sites guard on ``registry.enabled`` so a disabled run pays one
    attribute read per instrumentation point; even unguarded writes are
    harmless (and allocation-free) here.
    """

    enabled = False

    def count(self, name: str, delta: int = 1) -> None:  # noqa: D102
        pass

    def add_time(self, name: str, elapsed_ns: int, calls: int = 1) -> None:  # noqa: D102,E501
        pass

    def observe(self, name: str, value: float,
                bounds: Sequence[float]) -> None:  # noqa: D102
        pass

    def merge_snapshot(self, payload: dict) -> None:  # noqa: D102
        pass


#: Process-wide disabled singleton; ``get_registry()`` returns it until
#: someone installs a live registry.
NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently installed registry (the null singleton by default)."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` process-wide (``None`` restores the null one).

    Returns the previously installed registry so callers can restore it.
    """
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]):
    """Scope ``registry`` as the current one for the ``with`` body.

    Used by pool workers to collect a shard's metrics into a private
    registry without touching (or double-counting into) whatever the
    process-global registry happens to be.
    """
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def metrics_enabled() -> bool:
    """True when a live (non-null) registry is installed."""
    return _current.enabled
