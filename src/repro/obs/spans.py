"""Lightweight span timing with an optional JSON-lines trace sink.

A *span* is a named, possibly nested, timed region::

    with span("sweep"):
        with span("mc.graph"):
            ...

Each span's elapsed time lands in the current registry's timer of the
same name (cumulative nanoseconds + call count), so per-phase totals
merge across shards exactly like every other metric.  When a trace
sink is installed (:func:`set_trace_sink`, the CLI's ``--trace-out``),
every span additionally emits a ``begin`` and an ``end`` JSON-lines
record carrying the span name, nesting depth and monotonic timestamps
— always balanced, even when the body raises (the property suite
asserts this).

When no live registry *and* no sink is installed, :func:`span` returns
a shared no-op context manager: the disabled cost is one global read
and one ``with`` block, nothing else.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.obs.registry import get_registry
from repro.obs.sinks import TraceSink

__all__ = ["span", "set_trace_sink", "get_trace_sink", "profile_report"]

_state = threading.local()


def _stack() -> List[str]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


_trace_sink: Optional[TraceSink] = None


def set_trace_sink(sink: Optional[TraceSink]) -> Optional[TraceSink]:
    """Install (or with ``None`` remove) the process-wide trace sink.

    Returns the previous sink.  Pool workers run with the sink cleared
    (see :mod:`repro.parallel.pool`): a forked file handle shared by
    many processes would interleave garbage.
    """
    global _trace_sink
    previous = _trace_sink
    _trace_sink = sink
    return previous


def get_trace_sink() -> Optional[TraceSink]:
    """The currently installed trace sink, if any."""
    return _trace_sink


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timed region; records to the registry and the sink."""

    __slots__ = ("name", "_start_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        stack = _stack()
        sink = _trace_sink
        if sink is not None:
            sink.write({"event": "begin", "span": self.name,
                        "depth": len(stack),
                        "t_ns": time.perf_counter_ns()})
        stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter_ns() - self._start_ns
        stack = _stack()
        stack.pop()
        get_registry().add_time(self.name, elapsed)
        sink = _trace_sink
        if sink is not None:
            sink.write({"event": "end", "span": self.name,
                        "depth": len(stack),
                        "t_ns": time.perf_counter_ns(),
                        "elapsed_ns": elapsed})
        return False


def span(name: str):
    """Context manager timing a named region into the current registry.

    Returns a shared null object when metrics are disabled and no
    trace sink is installed, so instrumented code needs no guard of
    its own::

        with span("wire.trials"):
            ...
    """
    if not get_registry().enabled and _trace_sink is None:
        return _NULL_SPAN
    return _Span(name)


def profile_report(registry=None, top: int = 10) -> str:
    """Top-``top`` spans by cumulative time, as a fixed-width table.

    ``registry`` defaults to the currently installed one.  Timers that
    never fired are absent; an un-instrumented run reports that rather
    than an empty table.
    """
    registry = registry if registry is not None else get_registry()
    if not registry.timers:
        return "(no spans recorded)"
    rows = sorted(registry.timers.items(),
                  key=lambda item: item[1][0], reverse=True)[:top]
    name_width = max(len("span"), *(len(name) for name, _ in rows))
    lines = [f"{'span'.ljust(name_width)}  {'total':>10}  {'calls':>8}  "
             f"{'mean':>10}",
             f"{'-' * name_width}  {'-' * 10}  {'-' * 8}  {'-' * 10}"]
    for name, (total_ns, calls) in rows:
        total_s = total_ns / 1e9
        mean_s = total_s / calls if calls else 0.0
        lines.append(f"{name.ljust(name_width)}  {total_s:>9.4f}s  "
                     f"{calls:>8}  {mean_s * 1e3:>8.3f}ms")
    return "\n".join(lines)
